//! LTAM facade crate: re-exports the full public API of the workspace.
pub use ltam_core as core;
pub use ltam_engine as engine;
pub use ltam_geo as geo;
pub use ltam_graph as graph;
pub use ltam_obs as obs;
pub use ltam_serve as serve;
pub use ltam_sim as sim;
pub use ltam_situate as situate;
pub use ltam_store as store;
pub use ltam_time as time;
