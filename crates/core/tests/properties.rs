//! Property-based tests for the LTAM core: Algorithm 1 against oracles,
//! route-authorization invariants, conflict-resolution laws.

use ltam_core::conflict::{detect_conflicts, resolve_conflicts, ResolutionStrategy};
use ltam_core::db::AuthorizationDb;
use ltam_core::duration::authorize_route;
use ltam_core::inaccessible::{find_inaccessible, find_inaccessible_naive, AuthsByLocation};
use ltam_core::model::{Authorization, EntryLimit};
use ltam_core::subject::SubjectId;
use ltam_graph::{route, EffectiveGraph, LocationId, LocationModel};
use ltam_time::{Interval, IntervalSet, Time};
use proptest::prelude::*;

const ALICE: SubjectId = SubjectId(0);

/// A connected random location graph: spanning tree plus extra chords.
fn arb_graph() -> impl Strategy<Value = (LocationModel, EffectiveGraph)> {
    (
        2usize..10,
        prop::collection::vec(any::<u32>(), 0..12),
        any::<u64>(),
    )
        .prop_map(|(n, chords, seed)| {
            let mut m = LocationModel::new("G");
            let ids: Vec<LocationId> = (0..n)
                .map(|i| m.add_primitive(m.root(), format!("n{i}")).unwrap())
                .collect();
            // Spanning tree: attach each node to a pseudo-random predecessor.
            let mut s = seed | 1;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for i in 1..n {
                let p = (next() as usize) % i;
                m.add_edge(ids[i], ids[p]).unwrap();
            }
            for c in chords {
                let a = (c as usize) % n;
                let b = (c as usize / n) % n;
                if a != b {
                    m.add_edge(ids[a], ids[b]).unwrap();
                }
            }
            m.set_entry(ids[0]).unwrap();
            m.validate().unwrap();
            let g = EffectiveGraph::build(&m);
            (m, g)
        })
}

/// Random Definition-4-valid authorization for a location.
fn arb_auth(l: LocationId) -> impl Strategy<Value = Authorization> {
    (0u64..60, 0u64..40, 0u64..30, 0u64..40, 1u32..4).prop_map(
        move |(tis, elen, dstart, dlen, n)| {
            let tie = tis + elen;
            let tos = tis + dstart.min(elen); // tos >= tis
            let toe = tie + dlen; // toe >= tie
            Authorization::new(
                Interval::lit(tis, tie),
                Interval::lit(tos.min(toe), toe),
                ALICE,
                l,
                EntryLimit::Finite(n),
            )
            .unwrap()
        },
    )
}

fn arb_instance() -> impl Strategy<Value = (LocationModel, EffectiveGraph, AuthsByLocation)> {
    arb_graph().prop_flat_map(|(m, g)| {
        let locs: Vec<LocationId> = g.locations().collect();
        let per_loc: Vec<BoxedStrategy<Vec<Authorization>>> = locs
            .iter()
            .map(|&l| prop::collection::vec(arb_auth(l), 0..3).boxed())
            .collect();
        per_loc.prop_map(move |auth_vecs| {
            let mut auths = AuthsByLocation::new();
            for (l, v) in locs.iter().zip(auth_vecs) {
                if !v.is_empty() {
                    auths.insert(*l, v);
                }
            }
            (m.clone(), g.clone(), auths)
        })
    })
}

/// Graph reachability from the entries (ignoring time windows).
fn unreachable(g: &EffectiveGraph) -> Vec<LocationId> {
    let mut seen: Vec<LocationId> = g.global_entries().to_vec();
    let mut stack = seen.clone();
    while let Some(l) = stack.pop() {
        for &nb in g.neighbors(l) {
            if !seen.contains(&nb) {
                seen.push(nb);
                stack.push(nb);
            }
        }
    }
    g.locations().filter(|l| !seen.contains(l)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unconstrained_windows_reduce_to_graph_reachability((_, g) in arb_graph()) {
        let mut auths = AuthsByLocation::new();
        for l in g.locations() {
            auths.insert(
                l,
                vec![Authorization::new(
                    Interval::ALL,
                    Interval::ALL,
                    ALICE,
                    l,
                    EntryLimit::Unbounded,
                )
                .unwrap()],
            );
        }
        let report = find_inaccessible(&g, &auths);
        prop_assert_eq!(report.inaccessible, unreachable(&g));
    }

    #[test]
    fn fixpoint_accessibility_dominates_simple_routes(
        (_, g, auths) in arb_instance()
    ) {
        // Anything reachable by an authorized simple route must be reachable
        // per Algorithm 1 (the fixpoint also admits walks, so it can only
        // find more).
        let fix = find_inaccessible(&g, &auths);
        let naive = find_inaccessible_naive(&g, &auths, g.len(), 20_000);
        for l in &fix.inaccessible {
            prop_assert!(
                naive.contains(l),
                "{} accessible via simple route but fixpoint says inaccessible", l
            );
        }
    }

    #[test]
    fn adding_authorizations_is_monotone((_, g, auths) in arb_instance(), extra in any::<u64>()) {
        let before = find_inaccessible(&g, &auths);
        let mut more = auths.clone();
        let locs: Vec<LocationId> = g.locations().collect();
        let target = locs[(extra as usize) % locs.len()];
        more.entry(target).or_default().push(
            Authorization::new(
                Interval::ALL,
                Interval::ALL,
                ALICE,
                target,
                EntryLimit::Unbounded,
            )
            .unwrap(),
        );
        let after = find_inaccessible(&g, &more);
        // Granting more can only shrink the inaccessible set.
        for l in &after.inaccessible {
            prop_assert!(before.inaccessible.contains(l));
        }
    }

    #[test]
    fn grant_times_subset_of_entry_windows((_, g, auths) in arb_instance()) {
        // T^g of a location can never exceed the union of its own entry
        // windows (Algorithm 1 line 21 intersects with [tis, tie]).
        let report = find_inaccessible(&g, &auths);
        for (l, tg) in &report.grant_times {
            let own: IntervalSet = auths
                .get(l)
                .map(|v| v.iter().map(|a| a.entry_window()).collect())
                .unwrap_or_default();
            prop_assert_eq!(tg.intersect(&own), tg.clone(), "T^g exceeds entry windows at {}", l);
        }
    }

    #[test]
    fn authorized_route_has_nonempty_departure((_, g, auths) in arb_instance(), pick in any::<u64>()) {
        // For every shortest route between entry and some location, if the
        // route authorizes, its departure set is non-empty (Definition 4
        // guarantees leavability).
        let locs: Vec<LocationId> = g.locations().collect();
        let target = locs[(pick as usize) % locs.len()];
        let entry = g.global_entries()[0];
        if let Some(r) = route::shortest_route(&g, entry, target) {
            let res = authorize_route(r.locations(), Interval::ALL, |l| {
                auths.get(&l).map(Vec::as_slice).unwrap_or(&[])
            });
            if let Ok(ra) = res {
                prop_assert!(!ra.grant.is_empty());
                prop_assert!(!ra.departure.is_empty());
                prop_assert_eq!(ra.hop_grants.len(), r.len());
            }
        }
    }

    #[test]
    fn resolution_reaches_quiescence(
        entries in prop::collection::vec((0u64..30, 0u64..10, 0u64..10, 1u32..3), 1..8),
        strategy in prop::sample::select(vec![
            ResolutionStrategy::Merge,
            ResolutionStrategy::PreferFirst,
            ResolutionStrategy::PreferExplicit,
        ]),
    ) {
        let mut db = AuthorizationDb::new();
        for (start, elen, dlen, n) in entries {
            let entry = Interval::lit(start, start + elen);
            let exit = Interval::lit(start, start + elen + dlen);
            db.insert(
                Authorization::new(entry, exit, ALICE, LocationId(0), EntryLimit::Finite(n))
                    .unwrap(),
            );
        }
        let _ = resolve_conflicts(&mut db, strategy);
        prop_assert!(detect_conflicts(&db).is_empty());
    }

    #[test]
    fn merge_preserves_entry_coverage(
        entries in prop::collection::vec((0u64..30, 0u64..10, 0u64..10, 1u32..3), 1..8),
    ) {
        let mut db = AuthorizationDb::new();
        let mut coverage = IntervalSet::empty();
        for (start, elen, dlen, n) in entries {
            let entry = Interval::lit(start, start + elen);
            coverage.insert(entry);
            let exit = Interval::lit(start, start + elen + dlen);
            db.insert(
                Authorization::new(entry, exit, ALICE, LocationId(0), EntryLimit::Finite(n))
                    .unwrap(),
            );
        }
        resolve_conflicts(&mut db, ResolutionStrategy::Merge);
        let after: IntervalSet = db.iter().map(|(_, a, _)| a.entry_window()).collect();
        prop_assert_eq!(after, coverage);
    }

    #[test]
    fn decision_grant_implies_window_and_budget(
        (_, _, auths) in arb_instance(),
        t in 0u64..120,
    ) {
        use ltam_core::decision::{check_access, AccessRequest, Decision};
        use ltam_core::ledger::UsageLedger;
        let mut db = AuthorizationDb::new();
        for v in auths.values() {
            for a in v {
                db.insert(*a);
            }
        }
        let ledger = UsageLedger::new();
        for (l, v) in &auths {
            let req = AccessRequest { time: Time(t), subject: ALICE, location: *l };
            let d = check_access(&db, &ledger, &req);
            let any_window = v.iter().any(|a| a.admits_entry_at(Time(t)));
            match d {
                Decision::Granted { auth } => {
                    let a = db.get(auth).unwrap();
                    prop_assert!(a.admits_entry_at(Time(t)));
                    prop_assert_eq!(a.location(), *l);
                }
                Decision::Denied { .. } => prop_assert!(!any_window || v.is_empty()),
                // `check_access` judges the base model alone; overrides
                // exist only under a declared situation (ltam-situate).
                Decision::GrantedOverride { .. } => {
                    prop_assert!(false, "base check_access issued an override grant")
                }
            }
        }
    }

    #[test]
    fn invalid_serde_rejected(tis in 5u64..50, gap in 1u64..5) {
        // Deserializing an authorization violating Definition 4 must fail.
        let json = format!(
            r#"{{"entry_window":{{"start":{tis},"end":{{"At":{end}}}}},
                 "exit_window":{{"start":{bad},"end":{{"At":{end}}}}},
                 "subject":0,"location":1,"limit":"Unbounded"}}"#,
            tis = tis,
            end = tis + 10,
            bad = tis - gap,
        );
        let r: Result<Authorization, _> = serde_json::from_str(&json);
        prop_assert!(r.is_err());
    }
}
