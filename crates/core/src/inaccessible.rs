//! Finding inaccessible locations — §6, Definitions 8–9, Algorithm 1.
//!
//! Algorithm 1 associates with each location `l` an *overall grant time*
//! `T^g` and an *overall departure time* `T^d` (interval sets). Entry
//! locations are seeded from their own authorizations; every other location
//! receives windows propagated from its neighbors' departure times, until a
//! fixpoint. Locations whose `T^g` is still null are inaccessible.
//!
//! The fixpoint is order-independent; to regenerate Table 2 *row-for-row*
//! the worklist processes each round's flagged locations with non-entry
//! locations first (id order within each class), which reproduces the
//! paper's `Update B, Update D, Update C, Update A` sequence. An optional
//! [`Trace`] captures the per-step snapshots the table prints.
//!
//! [`find_inaccessible_naive`] is the §6 definition applied directly:
//! enumerate candidate routes from every entry and check the
//! grant/departure chain of each. It is exponential and considers only
//! simple (cycle-free) routes, whereas the fixpoint propagates windows
//! along arbitrary walks (Table 2's final `Update A` *is* the walk
//! `A → D → A`); it therefore under-approximates accessibility in rare
//! window configurations, and serves as (a) the ablation baseline and
//! (b) a one-directional differential-testing oracle.

use crate::duration::{departure_set, grant_set};
use crate::model::Authorization;
use ltam_graph::{route, EffectiveGraph, LocationId, LocationModel};
use ltam_time::{Interval, IntervalSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-location authorizations of one subject, as Algorithm 1 consumes them
/// (see [`crate::db::AuthorizationDb::per_location_for_subject`]).
pub type AuthsByLocation = BTreeMap<LocationId, Vec<Authorization>>;

/// Snapshot of one location's algorithm state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocationState {
    /// The location.
    pub location: LocationId,
    /// The boolean re-examination flag.
    pub flag: bool,
    /// Overall grant time `T^g`.
    pub grant: IntervalSet,
    /// Overall departure time `T^d`.
    pub departure: IntervalSet,
}

/// One row of the Table 2 trace: a labelled full-state snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRow {
    /// `Initiation` or `Update <location>`.
    pub label: String,
    /// State of every location after this step, in id order.
    pub states: Vec<LocationState>,
}

/// The full execution trace (Table 2).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Rows in execution order.
    pub rows: Vec<TraceRow>,
}

/// Result of the inaccessible-location analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InaccessibleReport {
    /// Locations with null overall grant time, in id order (Definition 9's
    /// answer set).
    pub inaccessible: Vec<LocationId>,
    /// Final `T^g` per location.
    pub grant_times: BTreeMap<LocationId, IntervalSet>,
    /// Final `T^d` per location.
    pub departure_times: BTreeMap<LocationId, IntervalSet>,
    /// Number of worklist rounds until fixpoint.
    pub rounds: usize,
    /// Number of per-location updates performed.
    pub updates: usize,
}

impl InaccessibleReport {
    /// True if `l` ended with a null grant time.
    pub fn is_inaccessible(&self, l: LocationId) -> bool {
        self.inaccessible.binary_search(&l).is_ok()
    }
}

struct State {
    grant: BTreeMap<LocationId, IntervalSet>,
    departure: BTreeMap<LocationId, IntervalSet>,
    flag: BTreeMap<LocationId, bool>,
}

impl State {
    fn snapshot(&self, label: &str) -> TraceRow {
        TraceRow {
            label: label.to_string(),
            states: self
                .grant
                .keys()
                .map(|&l| LocationState {
                    location: l,
                    flag: self.flag[&l],
                    grant: self.grant[&l].clone(),
                    departure: self.departure[&l].clone(),
                })
                .collect(),
        }
    }
}

/// Algorithm 1 without trace capture.
pub fn find_inaccessible(graph: &EffectiveGraph, auths: &AuthsByLocation) -> InaccessibleReport {
    run(graph, auths, None)
}

/// Algorithm 1 with a full Table 2 trace.
pub fn find_inaccessible_traced(
    graph: &EffectiveGraph,
    auths: &AuthsByLocation,
) -> (InaccessibleReport, Trace) {
    let mut trace = Trace::default();
    let report = run(graph, auths, Some(&mut trace));
    (report, trace)
}

fn run(
    graph: &EffectiveGraph,
    auths: &AuthsByLocation,
    mut trace: Option<&mut Trace>,
) -> InaccessibleReport {
    const EMPTY: &[Authorization] = &[];
    let auths_of =
        |l: LocationId| -> &[Authorization] { auths.get(&l).map(Vec::as_slice).unwrap_or(EMPTY) };

    // Line 1: initialise T^g, T^d to null and flags to false.
    let mut st = State {
        grant: graph
            .locations()
            .map(|l| (l, IntervalSet::empty()))
            .collect(),
        departure: graph
            .locations()
            .map(|l| (l, IntervalSet::empty()))
            .collect(),
        flag: graph.locations().map(|l| (l, false)).collect(),
    };
    if let Some(t) = trace.as_deref_mut() {
        t.rows.push(st.snapshot("Initiation"));
    }

    let mut updates = 0usize;
    // Lines 2–13: seed entry locations from their own authorizations under
    // the full access request duration [0, ∞).
    let entries: Vec<LocationId> = graph.global_entries().to_vec();
    for &le in &entries {
        for a in auths_of(le) {
            st.grant
                .get_mut(&le)
                .expect("entry in graph")
                .insert(a.entry_window());
            st.departure
                .get_mut(&le)
                .expect("entry in graph")
                .insert(a.exit_window());
        }
        if !st.departure[&le].is_empty() {
            for &nb in graph.neighbors(le) {
                *st.flag.get_mut(&nb).expect("neighbor in graph") = true;
            }
        }
        updates += 1;
        if let Some(t) = trace.as_deref_mut() {
            t.rows.push(st.snapshot(&format!("Update {le}")));
        }
    }

    // Lines 14–34: propagate to a fixpoint. Rounds snapshot the flagged
    // set; within a round, non-entry locations go first (Table 2 order).
    let is_entry = |l: LocationId| entries.contains(&l);
    let mut rounds = 0usize;
    loop {
        let mut round: Vec<LocationId> = st
            .flag
            .iter()
            .filter(|&(_, &f)| f)
            .map(|(&l, _)| l)
            .collect();
        if round.is_empty() {
            break;
        }
        rounds += 1;
        round.sort_by_key(|&l| (is_entry(l), l));
        for l in round {
            *st.flag.get_mut(&l).expect("flagged location in graph") = false;
            let old_departure = st.departure[&l].clone();
            // Line 18: T := union of the departure times of all neighbors.
            let mut windows = IntervalSet::empty();
            for &nb in graph.neighbors(l) {
                windows.union_in_place(&st.departure[&nb]);
            }
            // Lines 19–27: accumulate grant and departure durations.
            let local = auths_of(l);
            let new_grant = grant_set(local, &windows);
            let new_departure = departure_set(local, &windows);
            st.grant
                .get_mut(&l)
                .expect("location in graph")
                .union_in_place(&new_grant);
            st.departure
                .get_mut(&l)
                .expect("location in graph")
                .union_in_place(&new_departure);
            // Lines 28–32: re-flag neighbors if T^d changed.
            if st.departure[&l] != old_departure {
                for &nb in graph.neighbors(l) {
                    *st.flag.get_mut(&nb).expect("neighbor in graph") = true;
                }
            }
            updates += 1;
            if let Some(t) = trace.as_deref_mut() {
                t.rows.push(st.snapshot(&format!("Update {l}")));
            }
        }
    }

    // Line 35: the locations with null T^g.
    let inaccessible: Vec<LocationId> = st
        .grant
        .iter()
        .filter(|(_, g)| g.is_empty())
        .map(|(&l, _)| l)
        .collect();
    InaccessibleReport {
        inaccessible,
        grant_times: st.grant,
        departure_times: st.departure,
        rounds,
        updates,
    }
}

/// The naive §6 baseline: a location is accessible iff some bounded simple
/// route from some entry location is authorized under `[0, ∞)`.
///
/// `max_len`/`max_routes` bound the enumeration per (entry, target) pair;
/// pass `graph.len()` and a generous route budget for exact simple-route
/// semantics on small graphs.
pub fn find_inaccessible_naive(
    graph: &EffectiveGraph,
    auths: &AuthsByLocation,
    max_len: usize,
    max_routes: usize,
) -> Vec<LocationId> {
    const EMPTY: &[Authorization] = &[];
    let mut inaccessible = Vec::new();
    for target in graph.locations() {
        let mut reachable = false;
        'entries: for &e in graph.global_entries() {
            for r in route::all_routes(graph, e, target, max_len, max_routes) {
                let ok = crate::duration::authorize_route(r.locations(), Interval::ALL, |l| {
                    auths.get(&l).map(Vec::as_slice).unwrap_or(EMPTY)
                });
                if ok.is_ok() {
                    reachable = true;
                    break 'entries;
                }
            }
        }
        if !reachable {
            inaccessible.push(target);
        }
    }
    inaccessible
}

/// Per-composite local analysis (Lemma 1).
///
/// For every composite location, runs Algorithm 1 on the composite's
/// restricted graph with its own entry primitives as entries. Lemma 1:
/// any location inaccessible *locally* is inaccessible from every entry of
/// the containing multilevel graph, so these sets soundly under-approximate
/// the global result and can prune work.
pub fn locally_inaccessible(
    model: &LocationModel,
    graph: &EffectiveGraph,
    auths: &AuthsByLocation,
) -> BTreeMap<LocationId, Vec<LocationId>> {
    let mut out = BTreeMap::new();
    for c in model.ids() {
        if model.kind(c) != ltam_graph::LocationKind::Composite || c == model.root() {
            continue;
        }
        let local = graph.restrict_to(model, c);
        let report = find_inaccessible(&local, auths);
        out.insert(c, report.inaccessible);
    }
    out
}

/// Result of the multilevel analysis: inaccessible primitives plus the
/// composites that are entirely inaccessible (Definition 8 covers composite
/// locations too).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultilevelReport {
    /// Inaccessible primitive locations.
    pub primitives: Vec<LocationId>,
    /// Composites all of whose primitives are inaccessible.
    pub composites: Vec<LocationId>,
}

/// Run the exact flat analysis, then roll results up the hierarchy.
pub fn find_inaccessible_multilevel(
    model: &LocationModel,
    graph: &EffectiveGraph,
    auths: &AuthsByLocation,
) -> MultilevelReport {
    let report = find_inaccessible(graph, auths);
    let mut composites = Vec::new();
    for c in model.ids() {
        if model.kind(c) != ltam_graph::LocationKind::Composite || c == model.root() {
            continue;
        }
        let members = model.primitives_under(c);
        if !members.is_empty() && members.iter().all(|&p| report.is_inaccessible(p)) {
            composites.push(c);
        }
    }
    MultilevelReport {
        primitives: report.inaccessible,
        composites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EntryLimit;
    use crate::subject::SubjectId;
    use ltam_graph::examples::fig4_cycle;

    const ALICE: SubjectId = SubjectId(0);

    fn auth(l: LocationId, entry: (u64, u64), exit: (u64, u64)) -> Authorization {
        Authorization::new(
            Interval::lit(entry.0, entry.1),
            Interval::lit(exit.0, exit.1),
            ALICE,
            l,
            EntryLimit::Finite(1),
        )
        .unwrap()
    }

    /// Table 1's authorization set on the Fig. 4 graph.
    fn table1(f: &ltam_graph::examples::Fig4) -> AuthsByLocation {
        let mut m = AuthsByLocation::new();
        m.insert(f.a, vec![auth(f.a, (2, 35), (20, 50))]);
        m.insert(f.b, vec![auth(f.b, (40, 60), (55, 80))]);
        m.insert(f.c, vec![auth(f.c, (38, 45), (70, 90))]);
        m.insert(f.d, vec![auth(f.d, (5, 25), (10, 30))]);
        m
    }

    #[test]
    fn table2_final_state_and_result() {
        let f = fig4_cycle();
        let g = EffectiveGraph::build(&f.model);
        let auths = table1(&f);
        let report = find_inaccessible(&g, &auths);
        // Result: C is the only inaccessible location.
        assert_eq!(report.inaccessible, vec![f.c]);
        // Final durations match Table 2's last row.
        assert_eq!(
            report.grant_times[&f.a],
            IntervalSet::of(Interval::lit(2, 35))
        );
        assert_eq!(
            report.departure_times[&f.a],
            IntervalSet::of(Interval::lit(20, 50))
        );
        assert_eq!(
            report.grant_times[&f.b],
            IntervalSet::of(Interval::lit(40, 50))
        );
        assert_eq!(
            report.departure_times[&f.b],
            IntervalSet::of(Interval::lit(55, 80))
        );
        assert!(report.grant_times[&f.c].is_empty());
        assert!(report.departure_times[&f.c].is_empty());
        assert_eq!(
            report.grant_times[&f.d],
            IntervalSet::of(Interval::lit(20, 25))
        );
        assert_eq!(
            report.departure_times[&f.d],
            IntervalSet::of(Interval::lit(20, 30))
        );
    }

    #[test]
    fn table2_trace_row_sequence() {
        let f = fig4_cycle();
        let g = EffectiveGraph::build(&f.model);
        let (_, trace) = find_inaccessible_traced(&g, &table1(&f));
        let labels: Vec<&str> = trace.rows.iter().map(|r| r.label.as_str()).collect();
        // Initiation, Update A (entry seeding), Update B, Update D,
        // Update C, Update A — exactly Table 2.
        assert_eq!(
            labels,
            vec![
                "Initiation",
                &format!("Update {}", f.a),
                &format!("Update {}", f.b),
                &format!("Update {}", f.d),
                &format!("Update {}", f.c),
                &format!("Update {}", f.a),
            ]
        );
        // Row "Update A" (seed): T^g_A=[2,35], T^d_A=[20,50], B/D flagged.
        let seed = &trace.rows[1];
        let state = |row: &TraceRow, l: LocationId| -> LocationState {
            row.states.iter().find(|s| s.location == l).unwrap().clone()
        };
        assert_eq!(
            state(seed, f.a).grant,
            IntervalSet::of(Interval::lit(2, 35))
        );
        assert!(state(seed, f.b).flag);
        assert!(state(seed, f.d).flag);
        assert!(!state(seed, f.c).flag);
        // Row "Update B": T^g_B=[40,50], T^d_B=[55,80]; A, C flagged.
        let rb = &trace.rows[2];
        assert_eq!(state(rb, f.b).grant, IntervalSet::of(Interval::lit(40, 50)));
        assert_eq!(
            state(rb, f.b).departure,
            IntervalSet::of(Interval::lit(55, 80))
        );
        assert!(state(rb, f.a).flag);
        assert!(state(rb, f.c).flag);
        // Row "Update D": T^g_D=[20,25], T^d_D=[20,30].
        let rd = &trace.rows[3];
        assert_eq!(state(rd, f.d).grant, IntervalSet::of(Interval::lit(20, 25)));
        assert_eq!(
            state(rd, f.d).departure,
            IntervalSet::of(Interval::lit(20, 30))
        );
        // Row "Update C": both null, flag cleared.
        let rc = &trace.rows[4];
        assert!(state(rc, f.c).grant.is_empty());
        assert!(state(rc, f.c).departure.is_empty());
        assert!(!state(rc, f.c).flag);
        assert!(state(rc, f.a).flag);
        // Final row "Update A": unchanged unions, all flags false.
        let ra = &trace.rows[5];
        assert_eq!(state(ra, f.a).grant, IntervalSet::of(Interval::lit(2, 35)));
        assert_eq!(
            state(ra, f.a).departure,
            IntervalSet::of(Interval::lit(20, 50))
        );
        assert!(ra.states.iter().all(|s| !s.flag));
    }

    #[test]
    fn unconstrained_windows_reduce_to_reachability() {
        // With all-open windows everywhere, inaccessible == unreachable.
        let f = fig4_cycle();
        let g = EffectiveGraph::build(&f.model);
        let mut auths = AuthsByLocation::new();
        for l in [f.a, f.b, f.c, f.d] {
            auths.insert(
                l,
                vec![Authorization::new(
                    Interval::ALL,
                    Interval::ALL,
                    ALICE,
                    l,
                    EntryLimit::Unbounded,
                )
                .unwrap()],
            );
        }
        let report = find_inaccessible(&g, &auths);
        assert!(report.inaccessible.is_empty());
    }

    #[test]
    fn missing_authorizations_make_everything_downstream_inaccessible() {
        let f = fig4_cycle();
        let g = EffectiveGraph::build(&f.model);
        let mut auths = table1(&f);
        auths.remove(&f.a); // entry has no authorization at all
        let report = find_inaccessible(&g, &auths);
        assert_eq!(report.inaccessible, vec![f.a, f.b, f.c, f.d]);
    }

    #[test]
    fn naive_agrees_on_table1() {
        let f = fig4_cycle();
        let g = EffectiveGraph::build(&f.model);
        let auths = table1(&f);
        let naive = find_inaccessible_naive(&g, &auths, g.len(), 10_000);
        assert_eq!(naive, vec![f.c]);
    }

    #[test]
    fn naive_is_conservative_wrt_fixpoint() {
        // Every location the fixpoint marks inaccessible must also be
        // unreachable by any simple route (fixpoint ⊇ simple routes).
        let f = fig4_cycle();
        let g = EffectiveGraph::build(&f.model);
        let auths = table1(&f);
        let fix = find_inaccessible(&g, &auths);
        let naive = find_inaccessible_naive(&g, &auths, g.len(), 10_000);
        for l in &fix.inaccessible {
            assert!(naive.contains(l));
        }
    }

    #[test]
    fn lemma1_local_results_are_globally_inaccessible() {
        // Campus with a building whose interior is locked down.
        let mut m = LocationModel::new("W");
        let b = m.add_composite(m.root(), "B").unwrap();
        let lobby = m.add_primitive(b, "lobby").unwrap();
        let vault = m.add_primitive(b, "vault").unwrap();
        m.add_edge(lobby, vault).unwrap();
        m.set_entry(lobby).unwrap();
        m.set_entry(b).unwrap();
        let gate = m.add_primitive(m.root(), "gate").unwrap();
        m.add_edge(b, gate).unwrap();
        m.set_entry(gate).unwrap();
        m.validate().unwrap();
        let g = EffectiveGraph::build(&m);

        let mut auths = AuthsByLocation::new();
        for l in [gate, lobby] {
            auths.insert(
                l,
                vec![Authorization::new(
                    Interval::ALL,
                    Interval::ALL,
                    ALICE,
                    l,
                    EntryLimit::Unbounded,
                )
                .unwrap()],
            );
        }
        // No authorization on the vault at all.
        let local = locally_inaccessible(&m, &g, &auths);
        assert_eq!(local[&b], vec![vault]);
        let global = find_inaccessible(&g, &auths);
        for locs in local.values() {
            for l in locs {
                assert!(global.is_inaccessible(*l), "Lemma 1 violated for {l}");
            }
        }
    }

    #[test]
    fn multilevel_rolls_up_composites() {
        let mut m = LocationModel::new("W");
        let b = m.add_composite(m.root(), "B").unwrap();
        let lobby = m.add_primitive(b, "lobby").unwrap();
        let vault = m.add_primitive(b, "vault").unwrap();
        m.add_edge(lobby, vault).unwrap();
        m.set_entry(lobby).unwrap();
        m.set_entry(b).unwrap();
        let gate = m.add_primitive(m.root(), "gate").unwrap();
        m.add_edge(b, gate).unwrap();
        m.set_entry(gate).unwrap();
        let g = EffectiveGraph::build(&m);
        // Only the gate is authorized: the whole building B is inaccessible.
        let mut auths = AuthsByLocation::new();
        auths.insert(
            gate,
            vec![Authorization::new(
                Interval::ALL,
                Interval::ALL,
                ALICE,
                gate,
                EntryLimit::Unbounded,
            )
            .unwrap()],
        );
        let report = find_inaccessible_multilevel(&m, &g, &auths);
        assert_eq!(report.primitives, vec![lobby, vault]);
        assert_eq!(report.composites, vec![b]);
    }

    #[test]
    fn report_counters_are_populated() {
        let f = fig4_cycle();
        let g = EffectiveGraph::build(&f.model);
        let report = find_inaccessible(&g, &table1(&f));
        assert!(report.rounds >= 2);
        // 1 entry seed + at least B, D, C, A updates.
        assert!(report.updates >= 5);
    }
}
