//! Capability tokens and sensor trust — the wire's own LTAM policy.
//!
//! The serving tier dogfoods the paper's model: what a *connection* may
//! do is itself an authorization decision. A [`CapabilityToken`] binds
//! a shared secret to an LTAM subject, a set of [`Scope`]s (what frame
//! kinds the bearer may send, and for ingest, *which locations* it may
//! report on), and a temporal [`Interval`] of validity — the same
//! entry-window shape as a Definition 4 authorization, applied to the
//! wire. Tokens live inside the policy core ([`WireAuth`]), so minting
//! and revoking are ordinary policy edits: durable through snapshots,
//! epoch-stamped, and re-evaluated against the *live* policy on every
//! frame — a revoked or expired token dies on its next request without
//! a restart.
//!
//! [`TrustPolicy`] carries per-sensor trust levels (after *Trust for
//! Location-based Authorisation*): events reported by a source below
//! the threshold are accepted onto a quarantine ledger instead of the
//! trusted movement history, so one compromised reader cannot poison
//! contact-tracing answers.

use crate::subject::SubjectId;
use ltam_graph::LocationId;
use ltam_time::{Interval, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a capability token (dense, never reissued within a
/// store's lifetime — [`WireAuth::mint`] allocates from a high-water
/// mark exactly like `AuthorizationDb::next_id`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TokenId(pub u64);

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "token#{}", self.0)
    }
}

/// One grant a token carries: which frame kinds the bearer may send.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scope {
    /// Send ingest/check frames. `locations: None` covers every
    /// location; `Some(set)` restricts the bearer to reporting events
    /// at those locations only (a door sensor can only speak for its
    /// own doors).
    Ingest {
        /// The locations the bearer may report events at (`None` = all).
        locations: Option<Vec<LocationId>>,
    },
    /// Send history queries, status and metrics scrapes.
    Query,
    /// Fetch the replication manifest and file chunks (followers).
    Replicate,
    /// Send admin RPCs: grant/revoke authorizations, mint/revoke
    /// tokens, set trust levels, flip wire-auth enforcement.
    Admin,
}

/// The frame-kind classes the serving tier gates (each wire request
/// maps to exactly one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Capability {
    /// Ingest and check frames (the write path).
    Ingest,
    /// History queries, status, metrics.
    Query,
    /// Replication manifest/fetch.
    Replicate,
    /// Admin RPCs.
    Admin,
}

impl Scope {
    /// Does this scope grant `cap` (ignoring location restrictions)?
    pub fn grants(&self, cap: Capability) -> bool {
        matches!(
            (self, cap),
            (Scope::Ingest { .. }, Capability::Ingest)
                | (Scope::Query, Capability::Query)
                | (Scope::Replicate, Capability::Replicate)
                | (Scope::Admin, Capability::Admin)
        )
    }
}

/// Why a capability check refused the bearer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuthRefusal {
    /// The token has been revoked.
    Revoked,
    /// The monitoring clock is outside the token's validity interval.
    Expired {
        /// The clock value the check ran at.
        now: Time,
    },
    /// The token carries no scope granting the needed capability.
    MissingScope {
        /// The capability the frame needed.
        needed: Capability,
    },
    /// The token's ingest scope does not cover a location in the batch.
    LocationNotCovered {
        /// The first uncovered location.
        location: LocationId,
    },
}

impl fmt::Display for AuthRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthRefusal::Revoked => write!(f, "token revoked"),
            AuthRefusal::Expired { now } => {
                write!(f, "token not valid at monitoring time {}", now.0)
            }
            AuthRefusal::MissingScope { needed } => {
                write!(f, "token lacks the {needed:?} scope")
            }
            AuthRefusal::LocationNotCovered { location } => {
                write!(f, "ingest scope does not cover location {}", location.0)
            }
        }
    }
}

/// A capability token: a shared secret bound to an LTAM subject, a set
/// of scopes, and a validity window evaluated against the monitoring
/// clock (the same clock overstay detection runs on, so a determinstic
/// trace can expire a token with a `Tick`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapabilityToken {
    /// The token's id (stable across revocation; never reissued).
    pub id: TokenId,
    /// The bearer's shared secret, presented in the `Hello` handshake.
    pub secret: String,
    /// The LTAM subject this token authenticates as.
    pub subject: SubjectId,
    /// The scopes granted.
    pub scopes: Vec<Scope>,
    /// When the token is valid (monitoring-clock chronons).
    pub validity: Interval,
    /// Revoked tokens stay in the registry (their id must never be
    /// reissued) but refuse every check.
    pub revoked: bool,
}

impl CapabilityToken {
    /// Check this token for `cap` at monitoring time `now`.
    pub fn permits(&self, cap: Capability, now: Time) -> Result<(), AuthRefusal> {
        if self.revoked {
            return Err(AuthRefusal::Revoked);
        }
        if !self.validity.contains(now) {
            return Err(AuthRefusal::Expired { now });
        }
        if !self.scopes.iter().any(|s| s.grants(cap)) {
            return Err(AuthRefusal::MissingScope { needed: cap });
        }
        Ok(())
    }

    /// Check this token's ingest scope against every location a batch
    /// touches (call after a passing [`CapabilityToken::permits`] for
    /// [`Capability::Ingest`]).
    pub fn permits_locations<'a>(
        &self,
        locations: impl IntoIterator<Item = &'a LocationId>,
    ) -> Result<(), AuthRefusal> {
        // The *union* of ingest scopes covers the batch: a token with
        // scopes for doors A and B may report on either.
        let restrictions: Vec<&Vec<LocationId>> = self
            .scopes
            .iter()
            .filter_map(|s| match s {
                Scope::Ingest { locations } => Some(locations.as_ref()),
                _ => None,
            })
            .map(|r| match r {
                Some(list) => Ok(list),
                // An unrestricted ingest scope covers everything.
                None => Err(()),
            })
            .collect::<Result<_, ()>>()
            .unwrap_or_default();
        if restrictions.is_empty() {
            return Ok(()); // at least one unrestricted scope (or none at all —
                           // permits() already refused the scopeless case)
        }
        for location in locations {
            if !restrictions.iter().any(|list| list.contains(location)) {
                return Err(AuthRefusal::LocationNotCovered {
                    location: *location,
                });
            }
        }
        Ok(())
    }
}

/// Per-sensor trust levels and the quarantine threshold.
///
/// A source (the authenticated subject a connection ingests *as*) at a
/// level below `threshold` has its events quarantined instead of
/// applied to the trusted movement history. The default — threshold 0,
/// default level 0 — trusts everyone, so an existing deployment that
/// never configures trust behaves exactly as before.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustPolicy {
    /// Sources below this level are quarantined.
    pub threshold: u8,
    /// The level of a source with no explicit entry.
    pub default_level: u8,
    /// Explicit per-source levels, in source order.
    pub levels: Vec<(SubjectId, u8)>,
}

impl TrustPolicy {
    /// The trust level of `source`.
    pub fn level_of(&self, source: SubjectId) -> u8 {
        self.levels
            .iter()
            .find(|(s, _)| *s == source)
            .map(|&(_, l)| l)
            .unwrap_or(self.default_level)
    }

    /// Set (or overwrite) a source's trust level.
    pub fn set_level(&mut self, source: SubjectId, level: u8) {
        match self.levels.iter_mut().find(|(s, _)| *s == source) {
            Some(entry) => entry.1 = level,
            None => self.levels.push((source, level)),
        }
    }

    /// Is `source` trusted (at or above the threshold)?
    pub fn trusted(&self, source: SubjectId) -> bool {
        self.level_of(source) >= self.threshold
    }
}

/// The wire-facing half of a policy core: token registry, trust
/// policy, and the enforcement switch. Lives inside `PolicyCore` so
/// every edit is an ordinary epoch-swapped, snapshot-durable policy
/// edit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WireAuth {
    /// When `true`, unauthenticated connections are refused everything
    /// except the `Hello` handshake. When `false` (the default), the
    /// wire is open — but a connection that *does* present a token is
    /// still held to its scopes, and admin RPCs always require an
    /// authenticated admin-scoped token.
    pub required: bool,
    /// All tokens ever minted, in id order (revoked ones stay, so ids
    /// are never reissued).
    pub tokens: Vec<CapabilityToken>,
    /// The id-allocator high-water mark.
    pub next_token_id: u64,
    /// Per-sensor trust levels.
    pub trust: TrustPolicy,
}

impl WireAuth {
    /// Mint a token. The caller supplies the secret (the serving tier
    /// generates one if the admin RPC did not), so re-minting a rotated
    /// sensor's *same* secret after a revocation is possible — the
    /// sensor resumes without reconfiguration, under a fresh id.
    pub fn mint(
        &mut self,
        subject: SubjectId,
        scopes: Vec<Scope>,
        validity: Interval,
        secret: String,
    ) -> TokenId {
        let id = TokenId(self.next_token_id);
        self.next_token_id += 1;
        self.tokens.push(CapabilityToken {
            id,
            secret,
            subject,
            scopes,
            validity,
            revoked: false,
        });
        id
    }

    /// Revoke a token by id. Returns whether it existed and was live.
    pub fn revoke(&mut self, id: TokenId) -> bool {
        match self.tokens.iter_mut().find(|t| t.id == id) {
            Some(t) if !t.revoked => {
                t.revoked = true;
                true
            }
            _ => false,
        }
    }

    /// Look a token up by id.
    pub fn token(&self, id: TokenId) -> Option<&CapabilityToken> {
        self.tokens.iter().find(|t| t.id == id)
    }

    /// Resolve a presented secret to its token. Revoked tokens do not
    /// authenticate (their secret may have been re-minted under a new
    /// id — the *newest* live match wins, so rotation is atomic).
    pub fn authenticate(&self, secret: &str) -> Option<&CapabilityToken> {
        self.tokens
            .iter()
            .rev()
            .find(|t| !t.revoked && t.secret == secret)
    }
}

/// One remote-administration operation — the wire's admin RPC body and
/// the unit the durable store persists. Every variant is an ordinary
/// policy edit under the hood (an epoch swap plus an immediate
/// snapshot), so an acknowledged admin op survives a crash exactly like
/// a local [`crate::db::AuthorizationDb`] edit does.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdminOp {
    /// Mint a capability token. The secret is caller-supplied so a
    /// rotated sensor can be re-minted under its existing secret (see
    /// [`WireAuth::mint`]).
    MintToken {
        /// The LTAM subject the token acts as.
        subject: SubjectId,
        /// What the bearer may do.
        scopes: Vec<Scope>,
        /// When the token is valid, on the monitoring clock.
        validity: Interval,
        /// The shared secret the bearer will present.
        secret: String,
    },
    /// Revoke a token by id. Takes effect on the bearer's very next
    /// frame — connections re-check the live policy per request.
    RevokeToken {
        /// The token to revoke.
        id: TokenId,
    },
    /// Set a sensor's trust level (events from below-threshold sources
    /// are quarantined, not enforced).
    SetTrust {
        /// The reporting source.
        subject: SubjectId,
        /// Its new level.
        level: u8,
    },
    /// Move the trust threshold itself.
    SetTrustThreshold {
        /// Sources at or above this level are trusted.
        threshold: u8,
    },
    /// Require (or stop requiring) an authenticated handshake on every
    /// connection. Flipping this on without a valid token locks the
    /// admin out of the wire — recovery is the server's root token or a
    /// local open of the store (see `docs/OPERATIONS.md` §10).
    SetAuthRequired {
        /// Whether unauthenticated connections are refused.
        required: bool,
    },
    /// Grant a location-temporal authorization (Definition 4) — the
    /// remote form of `DurableEngine::update_policy` + `add_authorization`.
    AddAuthorization(crate::model::Authorization),
    /// Durably revoke an authorization and lapse its in-flight grants.
    RevokeAuthorization {
        /// The grant to revoke.
        id: crate::db::AuthId,
    },
}

/// What an applied [`AdminOp`] produced (mirrors the variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdminOutcome {
    /// The minted token's id.
    TokenMinted {
        /// Dense, never-reissued id of the new token.
        id: TokenId,
    },
    /// Whether the token existed and was live.
    TokenRevoked {
        /// False when the id was unknown or already revoked.
        existed: bool,
    },
    /// The trust edit (level or threshold) applied.
    TrustSet,
    /// The handshake requirement flipped.
    AuthRequiredSet,
    /// The granted authorization's id.
    AuthorizationAdded {
        /// Id of the new grant.
        id: crate::db::AuthId,
    },
    /// Whether the authorization existed.
    AuthorizationRevoked {
        /// False when the id was unknown.
        existed: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WireAuth {
        let mut auth = WireAuth::default();
        auth.mint(
            SubjectId(7),
            vec![Scope::Ingest {
                locations: Some(vec![LocationId(1), LocationId(2)]),
            }],
            Interval::lit(10, 100),
            "door-secret".into(),
        );
        auth
    }

    #[test]
    fn mint_allocates_dense_ids_and_authenticates() {
        let mut auth = sample();
        let id = auth.mint(
            SubjectId(8),
            vec![Scope::Query],
            Interval::ALL,
            "query-secret".into(),
        );
        assert_eq!(id, TokenId(1));
        assert_eq!(auth.authenticate("door-secret").unwrap().id, TokenId(0));
        assert!(auth.authenticate("wrong").is_none());
    }

    #[test]
    fn revoked_tokens_refuse_and_never_reauthenticate() {
        let mut auth = sample();
        assert!(auth.revoke(TokenId(0)));
        assert!(!auth.revoke(TokenId(0)), "second revoke is a no-op");
        assert!(auth.authenticate("door-secret").is_none());
        assert_eq!(
            auth.token(TokenId(0))
                .unwrap()
                .permits(Capability::Ingest, Time(50)),
            Err(AuthRefusal::Revoked)
        );
        // Re-minting the same secret resumes under a fresh id.
        let id = auth.mint(
            SubjectId(7),
            vec![Scope::Ingest { locations: None }],
            Interval::ALL,
            "door-secret".into(),
        );
        assert_eq!(auth.authenticate("door-secret").unwrap().id, id);
    }

    #[test]
    fn validity_is_checked_against_the_monitoring_clock() {
        let auth = sample();
        let t = auth.token(TokenId(0)).unwrap();
        assert_eq!(
            t.permits(Capability::Ingest, Time(5)),
            Err(AuthRefusal::Expired { now: Time(5) })
        );
        assert_eq!(t.permits(Capability::Ingest, Time(10)), Ok(()));
        assert_eq!(
            t.permits(Capability::Ingest, Time(101)),
            Err(AuthRefusal::Expired { now: Time(101) })
        );
    }

    #[test]
    fn scopes_gate_capabilities_and_locations() {
        let auth = sample();
        let t = auth.token(TokenId(0)).unwrap();
        assert_eq!(
            t.permits(Capability::Admin, Time(50)),
            Err(AuthRefusal::MissingScope {
                needed: Capability::Admin
            })
        );
        assert_eq!(t.permits_locations(&[LocationId(1), LocationId(2)]), Ok(()));
        assert_eq!(
            t.permits_locations(&[LocationId(3)]),
            Err(AuthRefusal::LocationNotCovered {
                location: LocationId(3)
            })
        );
        // An unrestricted ingest scope covers everything.
        let mut auth = WireAuth::default();
        let id = auth.mint(
            SubjectId(1),
            vec![Scope::Ingest { locations: None }],
            Interval::ALL,
            "s".into(),
        );
        assert_eq!(
            auth.token(id).unwrap().permits_locations(&[LocationId(99)]),
            Ok(())
        );
    }

    #[test]
    fn trust_defaults_trust_everyone() {
        let mut trust = TrustPolicy::default();
        assert!(trust.trusted(SubjectId(0)));
        trust.threshold = 3;
        trust.default_level = 5;
        assert!(trust.trusted(SubjectId(0)));
        trust.set_level(SubjectId(0), 1);
        assert!(!trust.trusted(SubjectId(0)));
        trust.set_level(SubjectId(0), 4);
        assert!(trust.trusted(SubjectId(0)));
        assert_eq!(trust.level_of(SubjectId(1)), 5);
    }

    #[test]
    fn wire_auth_round_trips_through_json() {
        let mut auth = sample();
        auth.required = true;
        auth.trust.threshold = 2;
        auth.trust.set_level(SubjectId(3), 1);
        let json = serde_json::to_string(&auth).unwrap();
        let back: WireAuth = serde_json::from_str(&json).unwrap();
        assert_eq!(back, auth);
    }
}
