//! History retention policies — how much of the past stays *live*.
//!
//! LTAM's historical queries (`whereabouts`, contact tracing, violation
//! reports) read append-only history: the movements log, the audit
//! trail, and the violation list. Left unbounded, that history grows
//! with process lifetime — and so do engine memory and snapshot size.
//! A [`RetentionPolicy`] bounds the *live* tiers: on a maintenance run
//! at monitoring time `now`, every record of an enabled class older
//! than `now - horizon` chronons is pruned from live state (and, in a
//! durable deployment, spilled to the cold archive tier first).
//!
//! The policy deliberately lives in `ltam-core`, below the enforcement
//! engine: it is *model configuration* ("how far back must history
//! answer?"), not a storage detail. Enforcement state proper — pending
//! grants, active stays, ledger counters — is **never** pruned; it is
//! bounded by the live population, not by time, and pruning it would
//! change enforcement semantics.

use ltam_time::Time;
use serde::{Deserialize, Serialize};

/// A bound on live history: keep the last `horizon` chronons of each
/// enabled record class in memory, prune everything older on
/// maintenance runs.
///
/// The *retention watermark* — the chronon before which live history
/// may be incomplete — advances to `now - horizon` each time a
/// maintenance run fires; [`RetentionPolicy::should_run`] rate-limits
/// runs so the watermark advances by at least `min_advance` chronons
/// per run (pruning is linear in the records scanned, so running it
/// every batch for a one-chronon gain would be waste).
///
/// ```
/// use ltam_core::retention::RetentionPolicy;
/// use ltam_time::Time;
///
/// // Keep the last 1_000 chronons of history live.
/// let policy = RetentionPolicy::keep_last(1_000);
/// assert!(policy.movements && policy.audit && policy.violations);
///
/// // At monitoring time 4_000, everything before 3_000 is prunable.
/// assert_eq!(policy.horizon_at(Time(4_000)), Time(3_000));
/// // Early in the trace nothing is old enough to prune.
/// assert_eq!(policy.horizon_at(Time(400)), Time(0));
///
/// // A maintenance run is due once the watermark can advance enough.
/// assert!(policy.should_run(Time(0), Time(4_000)));
/// assert!(!policy.should_run(Time(3_000), Time(4_100))); // only 100 chronons to gain
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Chronons of history kept live. Queries at or after
    /// `now - horizon` are always answerable from live state alone.
    pub horizon: u64,
    /// Prune movement history (stays, enter/exit events) past the
    /// horizon. Disabling keeps the movements log unbounded.
    pub movements: bool,
    /// Prune audited request decisions past the horizon.
    pub audit: bool,
    /// Prune detected violations past the horizon. The alert sequence
    /// is unaffected: pruned violations remain counted.
    pub violations: bool,
    /// Minimum chronons the watermark must be able to advance before a
    /// maintenance run is worth firing (see [`RetentionPolicy::should_run`]).
    pub min_advance: u64,
}

impl RetentionPolicy {
    /// Keep the last `horizon` chronons of every record class live,
    /// with a maintenance cadence of one run per quarter-horizon of
    /// progress (always at least one chronon).
    pub fn keep_last(horizon: u64) -> RetentionPolicy {
        RetentionPolicy {
            horizon,
            movements: true,
            audit: true,
            violations: true,
            min_advance: (horizon / 4).max(1),
        }
    }

    /// The prune horizon at monitoring time `now`: records strictly
    /// before this chronon are outside the retention window. Saturates
    /// at the epoch, so early in a trace nothing is prunable.
    pub fn horizon_at(&self, now: Time) -> Time {
        now.saturating_sub(self.horizon)
    }

    /// True if a maintenance run at `now` would advance the watermark
    /// by at least [`RetentionPolicy::min_advance`] chronons past
    /// `watermark` (the current retention watermark).
    pub fn should_run(&self, watermark: Time, now: Time) -> bool {
        let target = self.horizon_at(now);
        target.get() >= watermark.get().saturating_add(self.min_advance.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_last_enables_every_class() {
        let p = RetentionPolicy::keep_last(100);
        assert_eq!(p.horizon, 100);
        assert!(p.movements && p.audit && p.violations);
        assert_eq!(p.min_advance, 25);
        // Tiny horizons still advance by at least one chronon per run.
        assert_eq!(RetentionPolicy::keep_last(2).min_advance, 1);
    }

    #[test]
    fn horizon_saturates_at_the_epoch() {
        let p = RetentionPolicy::keep_last(1_000);
        assert_eq!(p.horizon_at(Time(500)), Time::ZERO);
        assert_eq!(p.horizon_at(Time(1_000)), Time::ZERO);
        assert_eq!(p.horizon_at(Time(1_001)), Time(1));
    }

    #[test]
    fn should_run_rate_limits_by_min_advance() {
        let p = RetentionPolicy {
            min_advance: 50,
            ..RetentionPolicy::keep_last(100)
        };
        assert!(!p.should_run(Time(0), Time(100))); // horizon still at 0
        assert!(!p.should_run(Time(0), Time(149))); // would gain only 49
        assert!(p.should_run(Time(0), Time(150)));
        assert!(!p.should_run(Time(50), Time(150))); // already there
        assert!(p.should_run(Time(50), Time(200)));
    }

    #[test]
    fn zero_min_advance_still_requires_progress() {
        let p = RetentionPolicy {
            min_advance: 0,
            ..RetentionPolicy::keep_last(10)
        };
        // Guarded to at least 1: a run that cannot move the watermark
        // never fires.
        assert!(!p.should_run(Time(5), Time(15)));
        assert!(p.should_run(Time(5), Time(16)));
    }

    #[test]
    fn serde_round_trip() {
        let p = RetentionPolicy::keep_last(777);
        let json = serde_json::to_string(&p).unwrap();
        let back: RetentionPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
