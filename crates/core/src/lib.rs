//! # ltam-core — the Location-Temporal Authorization Model
//!
//! Implementation of LTAM (Yu & Lim, *LTAM: A Location-Temporal
//! Authorization Model*, Secure Data Management / VLDB 2004 Workshop):
//! an access-control model in which the protected objects are *physical
//! locations* arranged in a multilevel location graph, and authorizations
//! constrain *when* a subject may enter and leave each location and *how
//! many times*.
//!
//! The crate provides, module by module:
//!
//! * [`subject`] — subject identifiers and name interning,
//! * [`capability`] — wire capability tokens and sensor trust levels
//!   (the serving tier's own authorization policy),
//! * [`model`] — location authorizations (Definition 3) and
//!   location-temporal authorizations (Definition 4),
//! * [`db`] — the authorization database with subject/location and
//!   interval indexes, plus rule provenance,
//! * [`ledger`] — entry-count accounting,
//! * [`decision`] — access requests and the Definition 7 decision,
//! * [`duration`] — grant/departure durations and authorized routes (§6),
//! * [`inaccessible`] — Algorithm 1 (FindInaccessible) with Table 2 trace
//!   capture, the naive baseline, and the multilevel (Lemma 1) analysis,
//! * [`rules`] — authorization rules (§4, Definition 5) and the derivation
//!   engine,
//! * [`conflict`] — conflict detection and resolution (the paper's declared
//!   future work),
//! * [`retention`] — history-retention policies bounding how much of the
//!   past stays in live state (the enforcement layers prune against them),
//! * [`tam`] — a minimal TAM-style temporal-only baseline (§2).
//!
//! Location structure comes from [`ltam_graph`], the time substrate from
//! [`ltam_time`]. Enforcement (movement monitoring, violations, queries)
//! lives in the `ltam-engine` crate.
//!
//! ## Quick start
//!
//! ```
//! use ltam_core::db::AuthorizationDb;
//! use ltam_core::decision::{check_access, AccessRequest, Decision};
//! use ltam_core::ledger::UsageLedger;
//! use ltam_core::model::{Authorization, EntryLimit};
//! use ltam_core::subject::SubjectId;
//! use ltam_graph::LocationId;
//! use ltam_time::{Interval, Time};
//!
//! let alice = SubjectId(0);
//! let cais = LocationId(7);
//! let mut db = AuthorizationDb::new();
//! // Alice may enter CAIS once during [5, 40] and must leave in [20, 100].
//! db.insert(Authorization::new(
//!     Interval::lit(5, 40),
//!     Interval::lit(20, 100),
//!     alice,
//!     cais,
//!     EntryLimit::Finite(1),
//! )?);
//! let ledger = UsageLedger::new();
//! let request = AccessRequest { time: Time(10), subject: alice, location: cais };
//! assert!(check_access(&db, &ledger, &request).is_granted());
//! # Ok::<(), ltam_core::model::AuthError>(())
//! ```

#![warn(missing_docs)]

pub mod capability;
pub mod conflict;
pub mod db;
pub mod decision;
pub mod duration;
pub mod inaccessible;
pub mod ledger;
pub mod model;
pub mod planner;
pub mod prohibition;
pub mod recurring;
pub mod retention;
pub mod rules;
pub mod subject;
pub mod tam;

pub use capability::{
    AdminOp, AdminOutcome, AuthRefusal, Capability, CapabilityToken, Scope, TokenId, TrustPolicy,
    WireAuth,
};
pub use conflict::{detect_conflicts, resolve_conflicts, Conflict, ResolutionStrategy};
pub use db::{AuthId, AuthorizationDb, Provenance, RuleId};
pub use decision::{
    check_access, check_access_restricted, AccessRequest, Decision, DecisionContext, DenyReason,
};
pub use duration::{
    authorize_route, departure_duration, grant_duration, RouteAuthorization, RouteDenial,
};
pub use inaccessible::{
    find_inaccessible, find_inaccessible_multilevel, find_inaccessible_naive,
    find_inaccessible_traced, AuthsByLocation, InaccessibleReport, Trace,
};
pub use ledger::UsageLedger;
pub use model::{AuthError, Authorization, EntryLimit, LocationAuthorization};
pub use planner::{earliest_visit, earliest_visit_all, Itinerary, ItineraryStep};
pub use prohibition::{restrict_authorizations, Prohibition, ProhibitionDb};
pub use recurring::{expand_recurring, RecurringAuthorization, RecurringError};
pub use retention::RetentionPolicy;
pub use rules::{
    CountExpr, LocationOp, OpTuple, ProfileProvider, Rule, RuleEngine, StaticProfiles, SubjectOp,
};
pub use subject::{SubjectId, SubjectRegistry};
