//! Conflict detection and resolution between authorizations.
//!
//! §4 observes that rules "may introduce conflicts of authorizations":
//! a derived authorization granting Alice entry to CAIS during `[5, 10]`
//! contradicts (or fragments) another granting `[10, 11]`. The paper leaves
//! resolution as future work, suggesting "combining the two authorizations,
//! or discarding one of them" — both implemented here.
//!
//! A *conflict* is two authorizations for the same `(subject, location)`
//! whose entry windows overlap or are adjacent: the pair denotes one
//! logical grant split across rows, with possibly contradictory exit
//! windows and entry counts.

use crate::db::{AuthId, AuthorizationDb, Provenance};
use crate::model::{Authorization, EntryLimit};
use crate::subject::SubjectId;
use ltam_graph::LocationId;
use ltam_time::Interval;
use serde::{Deserialize, Serialize};

/// How the two entry windows relate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConflictKind {
    /// Entry windows share chronons; carries the shared window.
    OverlappingEntry(Interval),
    /// Entry windows are disjoint but consecutive (`[5,10]` / `[11,12]`).
    AdjacentEntry,
}

/// A detected conflict between two authorizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conflict {
    /// Lower-id member of the pair.
    pub first: AuthId,
    /// Higher-id member of the pair.
    pub second: AuthId,
    /// The shared subject.
    pub subject: SubjectId,
    /// The shared location.
    pub location: LocationId,
    /// Overlap or adjacency.
    pub kind: ConflictKind,
}

/// Strategy for [`resolve_conflicts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolutionStrategy {
    /// Combine each conflicting pair into one authorization: entry/exit
    /// windows take the union hull, entry counts add (the paper's
    /// "combining the two authorizations").
    Merge,
    /// Keep the lower-id (older) authorization, discard the newer.
    PreferFirst,
    /// Keep explicitly created authorizations over derived ones; ties fall
    /// back to lower id.
    PreferExplicit,
}

/// Outcome of a resolution pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolutionReport {
    /// `(kept_or_merged, removed)` pairs, in resolution order.
    pub resolved: Vec<(AuthId, AuthId)>,
    /// Authorizations inserted by merging.
    pub merged_into: Vec<AuthId>,
}

/// Find all conflicts in the database.
pub fn detect_conflicts(db: &AuthorizationDb) -> Vec<Conflict> {
    let mut rows: Vec<(AuthId, Authorization)> = db.iter().map(|(id, a, _)| (id, *a)).collect();
    rows.sort_by_key(|&(id, a)| (a.subject(), a.location(), a.entry_window().start(), id));
    let mut out = Vec::new();
    for i in 0..rows.len() {
        let (id_a, a) = rows[i];
        for &(id_b, b) in rows.iter().skip(i + 1) {
            if a.subject() != b.subject() || a.location() != b.location() {
                break; // sorted: no more rows for this (s, l)
            }
            let (ea, eb) = (a.entry_window(), b.entry_window());
            let kind = if let Some(shared) = ea.intersect(eb) {
                Some(ConflictKind::OverlappingEntry(shared))
            } else if ea.adjacent(eb) {
                Some(ConflictKind::AdjacentEntry)
            } else {
                None
            };
            if let Some(kind) = kind {
                out.push(Conflict {
                    first: id_a.min(id_b),
                    second: id_a.max(id_b),
                    subject: a.subject(),
                    location: a.location(),
                    kind,
                });
            }
        }
    }
    out.sort_by_key(|c| (c.first, c.second));
    out
}

fn merge_pair(a: &Authorization, b: &Authorization) -> Authorization {
    let entry = a
        .entry_window()
        .merge(b.entry_window())
        .expect("conflicting entry windows are mergeable");
    // Union hull of the exit windows; Definition 4's constraints are
    // preserved: min(tos) ≥ min(tis) and max(toe) ≥ max(tie).
    let exit_start = a.exit_window().start().min(b.exit_window().start());
    let exit_end = a.exit_window().end().max(b.exit_window().end());
    let exit = Interval::new(exit_start, exit_end).expect("hull is non-empty");
    let limit = match (a.limit(), b.limit()) {
        (EntryLimit::Finite(x), EntryLimit::Finite(y)) => EntryLimit::Finite(x.saturating_add(y)),
        _ => EntryLimit::Unbounded,
    };
    Authorization::new(entry, exit, a.subject(), a.location(), limit)
        .expect("merged authorization satisfies Definition 4")
}

/// Resolve conflicts until none remain, using `strategy`.
///
/// Merging can cascade (a merged window may now touch a third
/// authorization), so the pass loops to quiescence.
pub fn resolve_conflicts(
    db: &mut AuthorizationDb,
    strategy: ResolutionStrategy,
) -> ResolutionReport {
    let mut report = ResolutionReport::default();
    loop {
        let conflicts = detect_conflicts(db);
        let Some(c) = conflicts.first().copied() else {
            return report;
        };
        match strategy {
            ResolutionStrategy::Merge => {
                let a = *db.get(c.first).expect("conflict ids are live");
                let b = *db.get(c.second).expect("conflict ids are live");
                let merged = merge_pair(&a, &b);
                db.revoke(c.first);
                db.revoke(c.second);
                let id = db.insert(merged);
                report.resolved.push((id, c.first));
                report.resolved.push((id, c.second));
                report.merged_into.push(id);
            }
            ResolutionStrategy::PreferFirst => {
                db.revoke(c.second);
                report.resolved.push((c.first, c.second));
            }
            ResolutionStrategy::PreferExplicit => {
                let exp_first = matches!(db.provenance(c.first), Some(Provenance::Explicit));
                let exp_second = matches!(db.provenance(c.second), Some(Provenance::Explicit));
                let (keep, drop) = match (exp_first, exp_second) {
                    (true, false) => (c.first, c.second),
                    (false, true) => (c.second, c.first),
                    _ => (c.first, c.second),
                };
                db.revoke(drop);
                report.resolved.push((keep, drop));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::RuleId;

    const ALICE: SubjectId = SubjectId(0);
    const CAIS: LocationId = LocationId(10);

    fn auth(entry: (u64, u64), exit: (u64, u64), n: u32) -> Authorization {
        Authorization::new(
            Interval::lit(entry.0, entry.1),
            Interval::lit(exit.0, exit.1),
            ALICE,
            CAIS,
            EntryLimit::Finite(n),
        )
        .unwrap()
    }

    #[test]
    fn paper_example_adjacent_windows_conflict() {
        // "[5,10]" vs "[10,11]" — these overlap at 10.
        let mut db = AuthorizationDb::new();
        let a = db.insert(auth((5, 10), (5, 20), 1));
        let b = db.insert(auth((10, 11), (10, 21), 1));
        let cs = detect_conflicts(&db);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].first, a);
        assert_eq!(cs[0].second, b);
        assert_eq!(
            cs[0].kind,
            ConflictKind::OverlappingEntry(Interval::point(10u64))
        );
    }

    #[test]
    fn adjacency_is_detected() {
        let mut db = AuthorizationDb::new();
        db.insert(auth((5, 10), (5, 20), 1));
        db.insert(auth((11, 15), (11, 25), 1));
        let cs = detect_conflicts(&db);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].kind, ConflictKind::AdjacentEntry);
    }

    #[test]
    fn disjoint_windows_do_not_conflict() {
        let mut db = AuthorizationDb::new();
        db.insert(auth((5, 10), (5, 20), 1));
        db.insert(auth((20, 25), (20, 35), 1));
        assert!(detect_conflicts(&db).is_empty());
    }

    #[test]
    fn different_subject_or_location_do_not_conflict() {
        let mut db = AuthorizationDb::new();
        db.insert(auth((5, 10), (5, 20), 1));
        db.insert(
            Authorization::new(
                Interval::lit(5, 10),
                Interval::lit(5, 20),
                SubjectId(1),
                CAIS,
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        db.insert(
            Authorization::new(
                Interval::lit(5, 10),
                Interval::lit(5, 20),
                ALICE,
                LocationId(11),
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        assert!(detect_conflicts(&db).is_empty());
    }

    #[test]
    fn merge_combines_windows_and_counts() {
        let mut db = AuthorizationDb::new();
        db.insert(auth((5, 10), (8, 20), 1));
        db.insert(auth((10, 11), (10, 31), 2));
        let report = resolve_conflicts(&mut db, ResolutionStrategy::Merge);
        assert_eq!(report.merged_into.len(), 1);
        assert_eq!(db.len(), 1);
        let merged = db.get(report.merged_into[0]).unwrap();
        assert_eq!(merged.entry_window(), Interval::lit(5, 11));
        assert_eq!(merged.exit_window(), Interval::lit(8, 31));
        assert_eq!(merged.limit(), EntryLimit::Finite(3));
        assert!(detect_conflicts(&db).is_empty());
    }

    #[test]
    fn merge_cascades_through_chains() {
        let mut db = AuthorizationDb::new();
        db.insert(auth((0, 5), (0, 10), 1));
        db.insert(auth((5, 9), (5, 15), 1));
        db.insert(auth((10, 20), (10, 30), 1));
        let report = resolve_conflicts(&mut db, ResolutionStrategy::Merge);
        assert_eq!(db.len(), 1);
        assert!(report.merged_into.len() >= 2);
        let (_, a, _) = db.iter().next().unwrap();
        assert_eq!(a.entry_window(), Interval::lit(0, 20));
        assert_eq!(a.limit(), EntryLimit::Finite(3));
    }

    #[test]
    fn prefer_first_discards_newer() {
        let mut db = AuthorizationDb::new();
        let a = db.insert(auth((5, 10), (5, 20), 1));
        let b = db.insert(auth((7, 12), (7, 22), 1));
        let report = resolve_conflicts(&mut db, ResolutionStrategy::PreferFirst);
        assert_eq!(report.resolved, vec![(a, b)]);
        assert_eq!(db.len(), 1);
        assert!(db.get(a).is_some());
    }

    #[test]
    fn prefer_explicit_keeps_admin_rows() {
        let mut db = AuthorizationDb::new();
        let derived = db.insert_with_provenance(
            auth((5, 10), (5, 20), 1),
            Provenance::Derived {
                rule: RuleId(0),
                base: AuthId(99),
            },
        );
        let explicit = db.insert(auth((7, 12), (7, 22), 1));
        let report = resolve_conflicts(&mut db, ResolutionStrategy::PreferExplicit);
        assert_eq!(report.resolved, vec![(explicit, derived)]);
        assert!(db.get(explicit).is_some());
        assert!(db.get(derived).is_none());
    }

    #[test]
    fn unbounded_limit_dominates_merge() {
        let mut db = AuthorizationDb::new();
        db.insert(auth((5, 10), (8, 20), 1));
        db.insert(
            Authorization::new(
                Interval::lit(9, 12),
                Interval::lit(9, 22),
                ALICE,
                CAIS,
                EntryLimit::Unbounded,
            )
            .unwrap(),
        );
        let report = resolve_conflicts(&mut db, ResolutionStrategy::Merge);
        let merged = db.get(report.merged_into[0]).unwrap();
        assert_eq!(merged.limit(), EntryLimit::Unbounded);
    }
}
