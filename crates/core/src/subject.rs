//! Subjects (users) and their identifier registry.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a subject (user) requesting authorizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubjectId(pub u32);

impl fmt::Display for SubjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Interns subject names to dense [`SubjectId`]s.
///
/// Names are unique; re-interning an existing name returns the original id,
/// so policy files may freely repeat names.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SubjectRegistry {
    names: Vec<String>,
    by_name: HashMap<String, SubjectId>,
}

impl SubjectRegistry {
    /// An empty registry.
    pub fn new() -> SubjectRegistry {
        SubjectRegistry::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: impl Into<String>) -> SubjectId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = SubjectId(self.names.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        id
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<SubjectId> {
        self.by_name.get(name).copied()
    }

    /// The name for an id, or `None` if out of range.
    pub fn name(&self, id: SubjectId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of interned subjects.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no subjects are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All subject ids in interning order.
    pub fn ids(&self) -> impl Iterator<Item = SubjectId> + '_ {
        (0..self.names.len() as u32).map(SubjectId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut r = SubjectRegistry::new();
        let alice = r.intern("Alice");
        let bob = r.intern("Bob");
        assert_ne!(alice, bob);
        assert_eq!(r.intern("Alice"), alice);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn lookup_round_trips() {
        let mut r = SubjectRegistry::new();
        let alice = r.intern("Alice");
        assert_eq!(r.get("Alice"), Some(alice));
        assert_eq!(r.name(alice), Some("Alice"));
        assert_eq!(r.get("Carol"), None);
        assert_eq!(r.name(SubjectId(99)), None);
    }

    #[test]
    fn serde_round_trip() {
        let mut r = SubjectRegistry::new();
        r.intern("Alice");
        r.intern("Bob");
        let json = serde_json::to_string(&r).unwrap();
        let back: SubjectRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("Bob"), r.get("Bob"));
    }
}
