//! Grant and departure durations, and authorized routes (§6).
//!
//! Given an access request duration `[tp, tq]` and an authorization
//! `([tis,tie],[tos,toe],(s,l),n)`:
//!
//! * the **grant duration** is `[max(tp, tis), min(tq, tie)]` — when the
//!   subject can actually enter `l` inside the request window;
//! * the **departure duration** is `[max(tp, tos), toe]` — when the subject
//!   can leave `l` after entering in that window (note: *not* clipped by
//!   `tq`; the subject may stay past the request window).
//!
//! A route `⟨l₁,…,l_k⟩` is authorized when each hop's grant/departure chain
//! is non-null: `l₁` within `[tp,tq]`, each subsequent `lᵢ` within the
//! departure duration of `lᵢ₋₁`, with `l_k` needing only a grant.
//! With several authorizations per location the durations generalize to
//! interval *sets*, exactly as Algorithm 1's `T^g`/`T^d`.

use crate::model::Authorization;
use ltam_graph::LocationId;
use ltam_time::{Interval, IntervalSet};
use serde::{Deserialize, Serialize};

/// `[max(tp, tis), min(tq, tie)]`, or `None` if empty.
pub fn grant_duration(auth: &Authorization, window: Interval) -> Option<Interval> {
    auth.entry_window().intersect(window)
}

/// `[max(tp, tos), toe]`, or `None` if empty.
pub fn departure_duration(auth: &Authorization, window: Interval) -> Option<Interval> {
    auth.exit_window().clamp_start(window.start())
}

/// Set-valued grant duration across several authorizations and windows.
pub fn grant_set(auths: &[Authorization], windows: &IntervalSet) -> IntervalSet {
    let mut out = IntervalSet::empty();
    for w in windows.iter() {
        for a in auths {
            if let Some(g) = grant_duration(a, w) {
                out.insert(g);
            }
        }
    }
    out
}

/// Set-valued departure duration across several authorizations and windows.
///
/// Mirrors Algorithm 1 line 24: the departure is accumulated only for
/// authorizations whose grant in the window is non-null (an authorization
/// one cannot enter under contributes no exit).
pub fn departure_set(auths: &[Authorization], windows: &IntervalSet) -> IntervalSet {
    let mut out = IntervalSet::empty();
    for w in windows.iter() {
        for a in auths {
            if grant_duration(a, w).is_some() {
                if let Some(d) = departure_duration(a, w) {
                    out.insert(d);
                }
            }
        }
    }
    out
}

/// Outcome of a route authorization check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteAuthorization {
    /// Grant duration of the route: when the subject can enter `l₁`.
    pub grant: IntervalSet,
    /// Departure duration of the route: when the subject can leave `l_k`.
    pub departure: IntervalSet,
    /// Per-hop grant durations, for diagnostics.
    pub hop_grants: Vec<IntervalSet>,
}

/// Why a route is not authorized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteDenial {
    /// The grant duration of hop `index` is null.
    NoGrant {
        /// Position in the route (0-based).
        index: usize,
        /// The location at that position.
        location: LocationId,
    },
    /// The departure duration of non-final hop `index` is null: the subject
    /// could enter but never leave in time to continue.
    NoDeparture {
        /// Position in the route (0-based).
        index: usize,
        /// The location at that position.
        location: LocationId,
    },
}

/// Check the §6 route-authorization chain for a subject's authorizations.
///
/// `auths_of` supplies the subject's authorizations per location (empty
/// slice for locations the subject holds none on). `window` is the access
/// request duration `[tp, tq]`.
pub fn authorize_route<'a>(
    route: &[LocationId],
    window: Interval,
    mut auths_of: impl FnMut(LocationId) -> &'a [Authorization],
) -> Result<RouteAuthorization, RouteDenial> {
    assert!(!route.is_empty(), "routes are non-empty");
    let mut hop_grants = Vec::with_capacity(route.len());
    let mut windows = IntervalSet::of(window);
    let mut route_grant = IntervalSet::empty();
    let last = route.len() - 1;
    let mut departure = IntervalSet::empty();
    for (i, &loc) in route.iter().enumerate() {
        let auths = auths_of(loc);
        let grant = grant_set(auths, &windows);
        if grant.is_empty() {
            return Err(RouteDenial::NoGrant {
                index: i,
                location: loc,
            });
        }
        if i == 0 {
            route_grant = grant.clone();
        }
        hop_grants.push(grant);
        departure = departure_set(auths, &windows);
        if i < last && departure.is_empty() {
            return Err(RouteDenial::NoDeparture {
                index: i,
                location: loc,
            });
        }
        windows = departure.clone();
    }
    Ok(RouteAuthorization {
        grant: route_grant,
        departure,
        hop_grants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EntryLimit;
    use crate::subject::SubjectId;
    use std::collections::BTreeMap;

    const S: SubjectId = SubjectId(0);

    fn auth(l: u32, entry: (u64, u64), exit: (u64, u64)) -> Authorization {
        Authorization::new(
            Interval::lit(entry.0, entry.1),
            Interval::lit(exit.0, exit.1),
            S,
            LocationId(l),
            EntryLimit::Finite(1),
        )
        .unwrap()
    }

    #[test]
    fn grant_and_departure_match_table2_update_b() {
        // B's authorization ([40,60],[55,80]) under window [20,50]:
        // grant [max(20,40),min(50,60)] = [40,50];
        // departure [max(20,55),80] = [55,80].
        let b = auth(1, (40, 60), (55, 80));
        let w = Interval::lit(20, 50);
        assert_eq!(grant_duration(&b, w), Some(Interval::lit(40, 50)));
        assert_eq!(departure_duration(&b, w), Some(Interval::lit(55, 80)));
    }

    #[test]
    fn grant_and_departure_match_table2_update_d() {
        // D's authorization ([5,25],[10,30]) under window [20,50]:
        // grant [20,25]; departure [20,30].
        let d = auth(3, (5, 25), (10, 30));
        let w = Interval::lit(20, 50);
        assert_eq!(grant_duration(&d, w), Some(Interval::lit(20, 25)));
        assert_eq!(departure_duration(&d, w), Some(Interval::lit(20, 30)));
    }

    #[test]
    fn departure_not_clipped_by_window_end() {
        let a = auth(0, (0, 10), (5, 100));
        let w = Interval::lit(0, 10);
        assert_eq!(departure_duration(&a, w), Some(Interval::lit(5, 100)));
    }

    #[test]
    fn null_durations() {
        let a = auth(0, (40, 60), (55, 80));
        assert_eq!(grant_duration(&a, Interval::lit(0, 30)), None);
        assert_eq!(departure_duration(&a, Interval::lit(90, 99)), None);
    }

    #[test]
    fn grant_set_unions_across_auths() {
        let auths = vec![auth(0, (0, 10), (0, 10)), auth(0, (20, 30), (20, 30))];
        let g = grant_set(&auths, &IntervalSet::of(Interval::lit(5, 25)));
        let expect: IntervalSet = [Interval::lit(5, 10), Interval::lit(20, 25)]
            .into_iter()
            .collect();
        assert_eq!(g, expect);
    }

    #[test]
    fn departure_set_requires_enterable_auth() {
        // Window [50,60] cannot enter this auth (entry [0,10]); its exit
        // window [5,100] must not leak into the departure set.
        let auths = vec![auth(0, (0, 10), (5, 100))];
        let d = departure_set(&auths, &IntervalSet::of(Interval::lit(50, 60)));
        assert!(d.is_empty());
    }

    fn route_ctx() -> BTreeMap<LocationId, Vec<Authorization>> {
        // Fig. 4 / Table 1: A=(L0), B=(L1), C=(L2), D=(L3).
        let mut m = BTreeMap::new();
        m.insert(LocationId(0), vec![auth(0, (2, 35), (20, 50))]);
        m.insert(LocationId(1), vec![auth(1, (40, 60), (55, 80))]);
        m.insert(LocationId(2), vec![auth(2, (38, 45), (70, 90))]);
        m.insert(LocationId(3), vec![auth(3, (5, 25), (10, 30))]);
        m
    }

    fn auths_of<'a>(
        m: &'a BTreeMap<LocationId, Vec<Authorization>>,
    ) -> impl FnMut(LocationId) -> &'a [Authorization] + 'a {
        move |l| m.get(&l).map(Vec::as_slice).unwrap_or(&[])
    }

    #[test]
    fn route_a_b_is_authorized() {
        let m = route_ctx();
        let r =
            authorize_route(&[LocationId(0), LocationId(1)], Interval::ALL, auths_of(&m)).unwrap();
        assert_eq!(r.grant, IntervalSet::of(Interval::lit(2, 35)));
        // Enter A in [2,35], leave in [20,50]; enter B in [40,50], leave B
        // in [55,80].
        assert_eq!(r.departure, IntervalSet::of(Interval::lit(55, 80)));
        assert_eq!(r.hop_grants[1], IntervalSet::of(Interval::lit(40, 50)));
    }

    #[test]
    fn route_a_b_c_has_no_grant_at_c() {
        // From B's departure [55,80], C's entry [38,45] yields null.
        let m = route_ctx();
        let err = authorize_route(
            &[LocationId(0), LocationId(1), LocationId(2)],
            Interval::ALL,
            auths_of(&m),
        )
        .unwrap_err();
        assert_eq!(
            err,
            RouteDenial::NoGrant {
                index: 2,
                location: LocationId(2)
            }
        );
    }

    #[test]
    fn route_a_d_c_has_no_grant_at_c() {
        // From D's departure [20,30], C's entry [38,45] yields null:
        // C is inaccessible (Table 2's conclusion).
        let m = route_ctx();
        let err = authorize_route(
            &[LocationId(0), LocationId(3), LocationId(2)],
            Interval::ALL,
            auths_of(&m),
        )
        .unwrap_err();
        assert_eq!(
            err,
            RouteDenial::NoGrant {
                index: 2,
                location: LocationId(2)
            }
        );
    }

    #[test]
    fn grant_implies_departure_under_definition4() {
        // Definition 4's constraints (tos ≥ tis, toe ≥ tie) guarantee that an
        // enterable authorization is leavable: toe ≥ tie ≥ any admissible
        // entry time, so RouteDenial::NoDeparture cannot fire for validated
        // authorizations. Exercise the boundary case tie == toe == tq.
        let mut m = BTreeMap::new();
        m.insert(LocationId(0), vec![auth(0, (10, 95), (95, 95))]);
        m.insert(LocationId(1), vec![auth(1, (0, 100), (0, 100))]);
        let r = authorize_route(
            &[LocationId(0), LocationId(1)],
            Interval::lit(95, 99),
            auths_of(&m),
        )
        .unwrap();
        assert_eq!(r.grant, IntervalSet::of(Interval::point(95u64)));
        assert_eq!(r.departure, IntervalSet::of(Interval::lit(95, 100)));
    }

    #[test]
    fn unknown_location_has_no_grant() {
        let m = route_ctx();
        let err = authorize_route(&[LocationId(99)], Interval::ALL, auths_of(&m)).unwrap_err();
        assert_eq!(
            err,
            RouteDenial::NoGrant {
                index: 0,
                location: LocationId(99)
            }
        );
    }
}
