//! The authorization database (Figure 3's first component).
//!
//! Stores every [`Authorization`] with provenance (explicitly created by an
//! administrator, or derived by a rule), indexed three ways:
//!
//! * by `(subject, location)` — the hot path of Definition 7's access check,
//! * by subject — feeds Algorithm 1's per-location authorization lookup,
//! * by entry window in an [`IntervalTree`] — time-sliced administrator
//!   queries ("who could enter anything at time t?").

use crate::model::Authorization;
use crate::subject::SubjectId;
use ltam_graph::LocationId;
use ltam_time::{EntryId, Interval, IntervalTree, Time};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Identifier of an authorization stored in an [`AuthorizationDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AuthId(pub u64);

impl fmt::Display for AuthId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Identifier of an authorization rule (assigned by the rule engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RuleId(pub u32);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// How an authorization entered the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// Created directly by a security officer (§3.2).
    Explicit,
    /// Derived by an authorization rule from a base authorization (§4).
    Derived {
        /// The rule that produced it.
        rule: RuleId,
        /// The base authorization it was derived from.
        base: AuthId,
    },
}

#[derive(Debug, Clone)]
struct AuthRecord {
    auth: Authorization,
    provenance: Provenance,
    tree_entry: EntryId,
}

/// The authorization database.
#[derive(Debug, Clone, Default)]
pub struct AuthorizationDb {
    records: BTreeMap<AuthId, AuthRecord>,
    next: u64,
    by_subject_location: HashMap<(SubjectId, LocationId), Vec<AuthId>>,
    by_subject: HashMap<SubjectId, Vec<AuthId>>,
    entry_index: IntervalTree<AuthId>,
}

impl AuthorizationDb {
    /// An empty database.
    pub fn new() -> AuthorizationDb {
        AuthorizationDb::default()
    }

    /// Number of stored authorizations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no authorizations are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Insert an explicitly created authorization.
    pub fn insert(&mut self, auth: Authorization) -> AuthId {
        self.insert_with_provenance(auth, Provenance::Explicit)
    }

    /// Insert with explicit provenance (used by the rule engine).
    pub fn insert_with_provenance(
        &mut self,
        auth: Authorization,
        provenance: Provenance,
    ) -> AuthId {
        let id = AuthId(self.next);
        self.next += 1;
        let tree_entry = self.entry_index.insert(auth.entry_window(), id);
        self.records.insert(
            id,
            AuthRecord {
                auth,
                provenance,
                tree_entry,
            },
        );
        self.by_subject_location
            .entry((auth.subject(), auth.location()))
            .or_default()
            .push(id);
        self.by_subject.entry(auth.subject()).or_default().push(id);
        id
    }

    /// Remove an authorization; returns it if it existed.
    pub fn revoke(&mut self, id: AuthId) -> Option<Authorization> {
        let record = self.records.remove(&id)?;
        let auth = record.auth;
        self.entry_index
            .remove(auth.entry_window(), record.tree_entry);
        if let Some(v) = self
            .by_subject_location
            .get_mut(&(auth.subject(), auth.location()))
        {
            v.retain(|&x| x != id);
        }
        if let Some(v) = self.by_subject.get_mut(&auth.subject()) {
            v.retain(|&x| x != id);
        }
        Some(auth)
    }

    /// Look up an authorization.
    pub fn get(&self, id: AuthId) -> Option<&Authorization> {
        self.records.get(&id).map(|r| &r.auth)
    }

    /// Provenance of an authorization.
    pub fn provenance(&self, id: AuthId) -> Option<Provenance> {
        self.records.get(&id).map(|r| r.provenance)
    }

    /// Authorizations for a `(subject, location)` pair — Definition 7's
    /// candidate set.
    pub fn for_subject_location(
        &self,
        subject: SubjectId,
        location: LocationId,
    ) -> impl Iterator<Item = (AuthId, &Authorization)> + '_ {
        self.by_subject_location
            .get(&(subject, location))
            .into_iter()
            .flatten()
            .map(move |&id| (id, &self.records[&id].auth))
    }

    /// All authorizations of one subject.
    pub fn for_subject(
        &self,
        subject: SubjectId,
    ) -> impl Iterator<Item = (AuthId, &Authorization)> + '_ {
        self.by_subject
            .get(&subject)
            .into_iter()
            .flatten()
            .map(move |&id| (id, &self.records[&id].auth))
    }

    /// The subject's authorizations grouped per location — the shape
    /// Algorithm 1 consumes ("for each location-temporal authorization a
    /// of l").
    pub fn per_location_for_subject(
        &self,
        subject: SubjectId,
    ) -> BTreeMap<LocationId, Vec<Authorization>> {
        let mut out: BTreeMap<LocationId, Vec<Authorization>> = BTreeMap::new();
        for (_, a) in self.for_subject(subject) {
            out.entry(a.location()).or_default().push(*a);
        }
        out
    }

    /// Authorizations whose entry window contains `t` (stabbing query).
    pub fn enterable_at(&self, t: Time) -> Vec<(AuthId, &Authorization)> {
        self.entry_index
            .stab(t)
            .into_iter()
            .map(|(_, &id)| (id, &self.records[&id].auth))
            .collect()
    }

    /// Authorizations whose entry window overlaps `window`.
    pub fn enterable_during(&self, window: Interval) -> Vec<(AuthId, &Authorization)> {
        self.entry_index
            .overlapping(window)
            .into_iter()
            .map(|(_, &id)| (id, &self.records[&id].auth))
            .collect()
    }

    /// All authorizations derived from `base` by any rule.
    pub fn derived_from(&self, base: AuthId) -> Vec<AuthId> {
        self.records
            .iter()
            .filter(
                |(_, r)| matches!(r.provenance, Provenance::Derived { base: b, .. } if b == base),
            )
            .map(|(&id, _)| id)
            .collect()
    }

    /// All authorizations produced by `rule`.
    pub fn derived_by_rule(&self, rule: RuleId) -> Vec<AuthId> {
        self.records
            .iter()
            .filter(
                |(_, r)| matches!(r.provenance, Provenance::Derived { rule: q, .. } if q == rule),
            )
            .map(|(&id, _)| id)
            .collect()
    }

    /// Iterate all `(id, authorization, provenance)` rows in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AuthId, &Authorization, Provenance)> + '_ {
        self.records
            .iter()
            .map(|(&id, r)| (id, &r.auth, r.provenance))
    }

    /// Export all rows for persistence (id order).
    pub fn export(&self) -> Vec<(Authorization, Provenance)> {
        self.records
            .values()
            .map(|r| (r.auth, r.provenance))
            .collect()
    }

    /// Rebuild a database from exported rows (ids are reassigned densely;
    /// derived provenance referring to dropped bases is preserved as-is).
    pub fn import(rows: impl IntoIterator<Item = (Authorization, Provenance)>) -> AuthorizationDb {
        let mut db = AuthorizationDb::new();
        for (auth, provenance) in rows {
            db.insert_with_provenance(auth, provenance);
        }
        db
    }

    /// Export all rows *with their ids* (id order) — for snapshots where
    /// external state (usage counters, rule provenance) references the ids.
    pub fn export_rows(&self) -> Vec<(AuthId, Authorization, Provenance)> {
        self.records
            .iter()
            .map(|(&id, r)| (id, r.auth, r.provenance))
            .collect()
    }

    /// The id the next inserted authorization will get — the
    /// id-allocator high-water mark. Persist this alongside
    /// [`AuthorizationDb::export_rows`]: the largest *surviving* row does
    /// not reveal ids that were issued and then revoked, and reissuing
    /// one of those after a restore would let stale external references
    /// (an open stay recorded under the revoked id) resolve to the wrong
    /// authorization.
    pub fn next_id(&self) -> u64 {
        self.next
    }

    /// Raise the id-allocator high-water mark to at least `next`
    /// (restore-time companion of [`AuthorizationDb::next_id`]; never
    /// lowers it).
    pub fn reserve_ids_through(&mut self, next: u64) {
        self.next = self.next.max(next);
    }

    /// Rebuild a database preserving the original ids; the id counter
    /// resumes past the largest restored id (callers restoring from a
    /// snapshot should additionally apply the exported
    /// [`AuthorizationDb::next_id`] watermark via
    /// [`AuthorizationDb::reserve_ids_through`]).
    pub fn import_rows(
        rows: impl IntoIterator<Item = (AuthId, Authorization, Provenance)>,
    ) -> AuthorizationDb {
        let mut db = AuthorizationDb::new();
        for (id, auth, provenance) in rows {
            let tree_entry = db.entry_index.insert(auth.entry_window(), id);
            db.records.insert(
                id,
                AuthRecord {
                    auth,
                    provenance,
                    tree_entry,
                },
            );
            db.by_subject_location
                .entry((auth.subject(), auth.location()))
                .or_default()
                .push(id);
            db.by_subject.entry(auth.subject()).or_default().push(id);
            db.next = db.next.max(id.0 + 1);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EntryLimit;

    const ALICE: SubjectId = SubjectId(0);
    const BOB: SubjectId = SubjectId(1);
    const CAIS: LocationId = LocationId(10);
    const CHIPES: LocationId = LocationId(11);

    fn auth(s: SubjectId, l: LocationId, a: u64, b: u64, n: u32) -> Authorization {
        Authorization::new(
            Interval::lit(a, b),
            Interval::lit(a, b + 60),
            s,
            l,
            EntryLimit::Finite(n),
        )
        .unwrap()
    }

    #[test]
    fn insert_get_revoke_round_trip() {
        let mut db = AuthorizationDb::new();
        let a = auth(ALICE, CAIS, 10, 20, 2);
        let id = db.insert(a);
        assert_eq!(db.get(id), Some(&a));
        assert_eq!(db.provenance(id), Some(Provenance::Explicit));
        assert_eq!(db.len(), 1);
        assert_eq!(db.revoke(id), Some(a));
        assert!(db.is_empty());
        assert_eq!(db.revoke(id), None);
        assert_eq!(db.get(id), None);
    }

    #[test]
    fn subject_location_index() {
        let mut db = AuthorizationDb::new();
        let id1 = db.insert(auth(ALICE, CAIS, 10, 20, 2));
        let _id2 = db.insert(auth(BOB, CHIPES, 5, 35, 1));
        let id3 = db.insert(auth(ALICE, CAIS, 50, 60, 1));
        let ids: Vec<AuthId> = db
            .for_subject_location(ALICE, CAIS)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(ids, vec![id1, id3]);
        assert_eq!(db.for_subject_location(BOB, CAIS).count(), 0);
        assert_eq!(db.for_subject(ALICE).count(), 2);
    }

    #[test]
    fn per_location_grouping_for_algorithm1() {
        let mut db = AuthorizationDb::new();
        db.insert(auth(ALICE, CAIS, 10, 20, 2));
        db.insert(auth(ALICE, CAIS, 30, 40, 1));
        db.insert(auth(ALICE, CHIPES, 5, 35, 1));
        let grouped = db.per_location_for_subject(ALICE);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[&CAIS].len(), 2);
        assert_eq!(grouped[&CHIPES].len(), 1);
    }

    #[test]
    fn time_indexed_queries() {
        let mut db = AuthorizationDb::new();
        let id1 = db.insert(auth(ALICE, CAIS, 10, 20, 2));
        let id2 = db.insert(auth(BOB, CHIPES, 5, 35, 1));
        let at15: Vec<AuthId> = db
            .enterable_at(Time(15))
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert!(at15.contains(&id1) && at15.contains(&id2));
        let at30: Vec<AuthId> = db
            .enterable_at(Time(30))
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert_eq!(at30, vec![id2]);
        let span: Vec<AuthId> = db
            .enterable_during(Interval::lit(21, 40))
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert_eq!(span, vec![id2]);
        db.revoke(id2);
        assert!(db.enterable_at(Time(30)).is_empty());
    }

    #[test]
    fn provenance_queries() {
        let mut db = AuthorizationDb::new();
        let base = db.insert(auth(ALICE, CAIS, 10, 20, 2));
        let d1 = db.insert_with_provenance(
            auth(BOB, CAIS, 10, 20, 2),
            Provenance::Derived {
                rule: RuleId(1),
                base,
            },
        );
        let d2 = db.insert_with_provenance(
            auth(BOB, CHIPES, 10, 20, 2),
            Provenance::Derived {
                rule: RuleId(2),
                base,
            },
        );
        let mut derived = db.derived_from(base);
        derived.sort_unstable();
        assert_eq!(derived, vec![d1, d2]);
        assert_eq!(db.derived_by_rule(RuleId(1)), vec![d1]);
    }

    #[test]
    fn export_import_round_trip() {
        let mut db = AuthorizationDb::new();
        db.insert(auth(ALICE, CAIS, 10, 20, 2));
        db.insert(auth(BOB, CHIPES, 5, 35, 1));
        let rows = db.export();
        let back = AuthorizationDb::import(rows);
        assert_eq!(back.len(), 2);
        assert_eq!(back.for_subject(ALICE).count(), 1);
        assert_eq!(back.enterable_at(Time(30)).len(), 1);
    }
}
