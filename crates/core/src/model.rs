//! The authorization model: Definitions 3 and 4.

use crate::subject::SubjectId;
use ltam_graph::LocationId;
use ltam_time::{Bound, Interval, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A *location authorization* `(s, l)` — Definition 3: subject `s` is
/// authorized to enter primitive location `l`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocationAuthorization {
    /// The subject the authorization applies to.
    pub subject: SubjectId,
    /// The primitive location the subject may enter.
    pub location: LocationId,
}

/// Maximum number of entries an authorization permits (Definition 4's
/// `entry`, range `[1, ∞)`; the default is `∞`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum EntryLimit {
    /// At most this many entries within the entry duration (≥ 1).
    Finite(u32),
    /// Unlimited entries (the paper's default).
    #[default]
    Unbounded,
}

impl EntryLimit {
    /// True if `used` entries leave budget for one more.
    #[inline]
    pub fn admits(self, used: u32) -> bool {
        match self {
            EntryLimit::Finite(n) => used < n,
            EntryLimit::Unbounded => true,
        }
    }
}

impl fmt::Display for EntryLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryLimit::Finite(n) => write!(f, "{n}"),
            EntryLimit::Unbounded => write!(f, "∞"),
        }
    }
}

/// Errors from authorization construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// Definition 4 requires `tos ≥ tis`: one cannot be obliged to leave
    /// before one may arrive.
    ExitStartsBeforeEntry {
        /// Entry window start `tis`.
        entry_start: Time,
        /// Exit window start `tos`.
        exit_start: Time,
    },
    /// Definition 4 requires `toe ≥ tie`: the exit window may not close
    /// before the entry window does.
    ExitEndsBeforeEntryEnds {
        /// Entry window end `tie`.
        entry_end: Bound,
        /// Exit window end `toe`.
        exit_end: Bound,
    },
    /// Definition 4 gives `entry` the range `[1, ∞)`.
    ZeroEntryLimit,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::ExitStartsBeforeEntry {
                entry_start,
                exit_start,
            } => write!(
                f,
                "exit window starts at {exit_start}, before entry window start {entry_start}"
            ),
            AuthError::ExitEndsBeforeEntryEnds {
                entry_end,
                exit_end,
            } => write!(
                f,
                "exit window ends at {exit_end}, before entry window end {entry_end}"
            ),
            AuthError::ZeroEntryLimit => write!(f, "entry limit must be at least 1"),
        }
    }
}

impl std::error::Error for AuthError {}

/// A *location-temporal authorization* — Definition 4: the quadruple
/// `(entry duration, exit duration, (s, l), entry)`.
///
/// `([t¹,t²], [t³,t⁴], (Alice, CAIS), 1)` reads: Alice may enter CAIS once
/// during `[t¹,t²]` and must leave during `[t³,t⁴]`; leaving outside the
/// exit window (or staying past `t⁴`) raises a security alert (§3.2).
///
/// Deserialization re-validates, so Definition 4's constraints hold for
/// every value of this type, however it was produced. A useful consequence:
/// whenever a grant duration is non-null, the matching departure duration is
/// non-null too (`toe ≥ tie ≥` any admissible entry time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "RawAuthorization", into = "RawAuthorization")]
pub struct Authorization {
    entry_window: Interval,
    exit_window: Interval,
    auth: LocationAuthorization,
    limit: EntryLimit,
}

/// Wire form of [`Authorization`]; conversion re-runs validation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct RawAuthorization {
    entry_window: Interval,
    exit_window: Interval,
    subject: SubjectId,
    location: LocationId,
    limit: EntryLimit,
}

impl TryFrom<RawAuthorization> for Authorization {
    type Error = AuthError;
    fn try_from(raw: RawAuthorization) -> Result<Authorization, AuthError> {
        Authorization::new(
            raw.entry_window,
            raw.exit_window,
            raw.subject,
            raw.location,
            raw.limit,
        )
    }
}

impl From<Authorization> for RawAuthorization {
    fn from(a: Authorization) -> RawAuthorization {
        RawAuthorization {
            entry_window: a.entry_window,
            exit_window: a.exit_window,
            subject: a.auth.subject,
            location: a.auth.location,
            limit: a.limit,
        }
    }
}

impl Authorization {
    /// Construct with full validation of Definition 4's constraints
    /// (`tos ≥ tis`, `toe ≥ tie`).
    pub fn new(
        entry_window: Interval,
        exit_window: Interval,
        subject: SubjectId,
        location: LocationId,
        limit: EntryLimit,
    ) -> Result<Authorization, AuthError> {
        if exit_window.start() < entry_window.start() {
            return Err(AuthError::ExitStartsBeforeEntry {
                entry_start: entry_window.start(),
                exit_start: exit_window.start(),
            });
        }
        if exit_window.end() < entry_window.end() {
            return Err(AuthError::ExitEndsBeforeEntryEnds {
                entry_end: entry_window.end(),
                exit_end: exit_window.end(),
            });
        }
        if limit == EntryLimit::Finite(0) {
            return Err(AuthError::ZeroEntryLimit);
        }
        Ok(Authorization {
            entry_window,
            exit_window,
            auth: LocationAuthorization { subject, location },
            limit,
        })
    }

    /// Construct with the paper's defaults: entry duration "any time after
    /// the creation of the authorization" (`[created_at, ∞]`) when absent,
    /// exit duration `[tis, ∞]` when absent, and limit `∞` when absent.
    pub fn with_defaults(
        entry_window: Option<Interval>,
        exit_window: Option<Interval>,
        subject: SubjectId,
        location: LocationId,
        limit: Option<EntryLimit>,
        created_at: Time,
    ) -> Result<Authorization, AuthError> {
        let entry = entry_window.unwrap_or_else(|| Interval::from_start(created_at));
        let exit = exit_window.unwrap_or_else(|| Interval::from_start(entry.start()));
        Authorization::new(entry, exit, subject, location, limit.unwrap_or_default())
    }

    /// The entry duration `[tis, tie]`.
    #[inline]
    pub fn entry_window(&self) -> Interval {
        self.entry_window
    }

    /// The exit duration `[tos, toe]`.
    #[inline]
    pub fn exit_window(&self) -> Interval {
        self.exit_window
    }

    /// The underlying location authorization `(s, l)`.
    #[inline]
    pub fn location_authorization(&self) -> LocationAuthorization {
        self.auth
    }

    /// The subject.
    #[inline]
    pub fn subject(&self) -> SubjectId {
        self.auth.subject
    }

    /// The primitive location.
    #[inline]
    pub fn location(&self) -> LocationId {
        self.auth.location
    }

    /// The entry-count limit `n`.
    #[inline]
    pub fn limit(&self) -> EntryLimit {
        self.limit
    }

    /// True if an entry at time `t` falls inside the entry duration.
    #[inline]
    pub fn admits_entry_at(&self, t: Time) -> bool {
        self.entry_window.contains(t)
    }

    /// True if an exit at time `t` falls inside the exit duration.
    #[inline]
    pub fn admits_exit_at(&self, t: Time) -> bool {
        self.exit_window.contains(t)
    }
}

impl fmt::Display for Authorization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, ({}, {}), {})",
            self.entry_window, self.exit_window, self.auth.subject, self.auth.location, self.limit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALICE: SubjectId = SubjectId(0);
    const CAIS: LocationId = LocationId(7);

    #[test]
    fn paper_section_3_2_example_constructs() {
        // ([5, 40], [20, 100], (Alice, CAIS), 1)
        let a = Authorization::new(
            Interval::lit(5, 40),
            Interval::lit(20, 100),
            ALICE,
            CAIS,
            EntryLimit::Finite(1),
        )
        .unwrap();
        assert!(a.admits_entry_at(Time(5)));
        assert!(a.admits_entry_at(Time(40)));
        assert!(!a.admits_entry_at(Time(41)));
        assert!(a.admits_exit_at(Time(20)));
        assert!(!a.admits_exit_at(Time(101)));
        assert_eq!(a.to_string(), "([5, 40], [20, 100], (S0, L7), 1)");
    }

    #[test]
    fn definition4_constraints_enforced() {
        // tos < tis
        assert_eq!(
            Authorization::new(
                Interval::lit(10, 20),
                Interval::lit(5, 25),
                ALICE,
                CAIS,
                EntryLimit::Unbounded,
            )
            .unwrap_err(),
            AuthError::ExitStartsBeforeEntry {
                entry_start: Time(10),
                exit_start: Time(5)
            }
        );
        // toe < tie
        assert_eq!(
            Authorization::new(
                Interval::lit(10, 20),
                Interval::lit(12, 18),
                ALICE,
                CAIS,
                EntryLimit::Unbounded,
            )
            .unwrap_err(),
            AuthError::ExitEndsBeforeEntryEnds {
                entry_end: Bound::At(Time(20)),
                exit_end: Bound::At(Time(18))
            }
        );
        // unbounded entry end requires unbounded exit end
        assert!(Authorization::new(
            Interval::from_start(10u64),
            Interval::lit(12, 100),
            ALICE,
            CAIS,
            EntryLimit::Unbounded,
        )
        .is_err());
        assert!(Authorization::new(
            Interval::from_start(10u64),
            Interval::from_start(12u64),
            ALICE,
            CAIS,
            EntryLimit::Unbounded,
        )
        .is_ok());
    }

    #[test]
    fn zero_entry_limit_rejected() {
        assert_eq!(
            Authorization::new(
                Interval::lit(0, 10),
                Interval::lit(0, 10),
                ALICE,
                CAIS,
                EntryLimit::Finite(0),
            )
            .unwrap_err(),
            AuthError::ZeroEntryLimit
        );
    }

    #[test]
    fn defaults_follow_definition4() {
        let a = Authorization::with_defaults(None, None, ALICE, CAIS, None, Time(9)).unwrap();
        assert_eq!(a.entry_window(), Interval::from_start(9u64));
        assert_eq!(a.exit_window(), Interval::from_start(9u64));
        assert_eq!(a.limit(), EntryLimit::Unbounded);

        let b = Authorization::with_defaults(
            Some(Interval::lit(5, 40)),
            None,
            ALICE,
            CAIS,
            Some(EntryLimit::Finite(2)),
            Time(0),
        )
        .unwrap();
        // "If the exit duration is not specified, the default value will be
        // [ti1, ∞]".
        assert_eq!(b.exit_window(), Interval::from_start(5u64));
        assert_eq!(b.limit(), EntryLimit::Finite(2));
    }

    #[test]
    fn entry_limit_admits_counts() {
        assert!(EntryLimit::Finite(2).admits(0));
        assert!(EntryLimit::Finite(2).admits(1));
        assert!(!EntryLimit::Finite(2).admits(2));
        assert!(EntryLimit::Unbounded.admits(u32::MAX));
    }

    #[test]
    fn serde_round_trip() {
        let a = Authorization::new(
            Interval::lit(5, 40),
            Interval::lit(20, 100),
            ALICE,
            CAIS,
            EntryLimit::Finite(1),
        )
        .unwrap();
        let json = serde_json::to_string(&a).unwrap();
        let back: Authorization = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
