//! Authorization rules — §4, Definition 5.
//!
//! A rule `⟨tr : (a, OP)⟩` derives new authorizations from a *base
//! authorization* `a` once the rule becomes valid at `tr`. The operator
//! tuple `OP = (op_entry, op_exit, op_subject, op_location, exp_n)`
//! transforms each component:
//!
//! * temporal operators ([`ltam_time::TemporalOp`]) rewrite the entry/exit
//!   durations (`WHENEVER`, `WHENEVERNOT`, `UNION`, `INTERSECTION`),
//! * [`SubjectOp`] maps the base subject to derived subjects via the user
//!   profile database (`Supervisor_Of` in Example 1),
//! * [`LocationOp`] maps the base location to derived locations
//!   (`all_route_from` in Example 3),
//! * [`CountExpr`] rewrites the entry count.
//!
//! Unspecified elements default to copying from the base (`Same` /
//! `WHENEVER`). Derived authorizations carry provenance so that profile
//! changes revoke and re-derive them ("the system is able to automatically
//! derive the authorizations for the new supervisor while the authorization
//! for Bob will be revoked").

use crate::db::{AuthId, AuthorizationDb, Provenance, RuleId};
use crate::model::{Authorization, EntryLimit};
use crate::subject::SubjectId;
use ltam_graph::{route, EffectiveGraph, LocationId};
use ltam_time::{TemporalOp, Time};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Supplies the subject relationships rule operators query — backed by the
/// user profile database of Figure 3.
pub trait ProfileProvider {
    /// The supervisor of `s`, if any (Example 1's `Supervisor_Of`).
    fn supervisor_of(&self, s: SubjectId) -> Option<SubjectId>;
    /// Everyone whose supervisor is `s`.
    fn subordinates_of(&self, s: SubjectId) -> Vec<SubjectId>;
    /// Members of a named group.
    fn members_of(&self, group: &str) -> Vec<SubjectId>;
}

/// Derives the subjects of derived authorizations from the base subject.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SubjectOp {
    /// Copy the base subject (the default).
    #[default]
    Same,
    /// The base subject's supervisor (Example 1).
    SupervisorOf,
    /// Everyone supervised by the base subject.
    Subordinates,
    /// All members of a named group, independent of the base subject.
    MembersOfGroup(String),
    /// A custom operator registered on the [`RuleEngine`] ("customized
    /// operators can be defined as well", §4).
    Custom(String),
}

/// Derives the locations of derived authorizations from the base location.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LocationOp {
    /// Copy the base location (the default).
    #[default]
    Same,
    /// All locations on any route from `source` to the base location
    /// (Example 3's `all_route_from`).
    AllRouteFrom {
        /// Route source.
        source: LocationId,
    },
    /// The base location's neighbors in the effective graph.
    Neighbors,
    /// A fixed location, regardless of the base.
    Fixed(LocationId),
    /// A custom operator registered on the [`RuleEngine`].
    Custom(String),
}

/// Numeric expression on the entry count (`exp_n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CountExpr {
    /// Copy the base limit (the default).
    #[default]
    Same,
    /// A fixed limit.
    Const(u32),
    /// Remove the limit.
    Unbounded,
    /// Base plus `k` (unbounded stays unbounded).
    Add(u32),
    /// Base minus `k`, floored at 1 (unbounded stays unbounded).
    SaturatingSub(u32),
    /// Cap the base at `k`.
    AtMost(u32),
}

impl CountExpr {
    /// Evaluate against the base limit.
    pub fn eval(self, base: EntryLimit) -> EntryLimit {
        match (self, base) {
            (CountExpr::Same, b) => b,
            (CountExpr::Const(n), _) => EntryLimit::Finite(n),
            (CountExpr::Unbounded, _) => EntryLimit::Unbounded,
            (CountExpr::Add(k), EntryLimit::Finite(n)) => EntryLimit::Finite(n.saturating_add(k)),
            (CountExpr::Add(_), EntryLimit::Unbounded) => EntryLimit::Unbounded,
            (CountExpr::SaturatingSub(k), EntryLimit::Finite(n)) => {
                EntryLimit::Finite(n.saturating_sub(k).max(1))
            }
            (CountExpr::SaturatingSub(_), EntryLimit::Unbounded) => EntryLimit::Unbounded,
            (CountExpr::AtMost(k), EntryLimit::Finite(n)) => EntryLimit::Finite(n.min(k)),
            (CountExpr::AtMost(k), EntryLimit::Unbounded) => EntryLimit::Finite(k),
        }
    }
}

/// The operator tuple `OP` of Definition 5.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct OpTuple {
    /// Rewrites the entry duration.
    pub entry_op: TemporalOp,
    /// Rewrites the exit duration.
    pub exit_op: TemporalOp,
    /// Derives the subjects.
    pub subject_op: SubjectOp,
    /// Derives the locations.
    pub location_op: LocationOp,
    /// Rewrites the entry count.
    pub count: CountExpr,
}

/// An authorization rule `⟨tr : (a, OP)⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// `tr` — the time from which the rule is valid (feeds `WHENEVERNOT`).
    pub valid_from: Time,
    /// The base authorization `a`.
    pub base: AuthId,
    /// The operator tuple.
    pub ops: OpTuple,
}

/// Errors from rule evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// The base authorization is not (or no longer) in the database.
    UnknownBase(AuthId),
    /// A custom operator name has not been registered.
    UnknownCustomOp(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::UnknownBase(id) => write!(f, "unknown base authorization {id}"),
            RuleError::UnknownCustomOp(name) => write!(f, "unknown custom operator {name:?}"),
        }
    }
}

impl std::error::Error for RuleError {}

/// Outcome of a derivation pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DerivationReport {
    /// Authorizations inserted this pass.
    pub created: Vec<AuthId>,
    /// Previously derived authorizations revoked this pass (stale).
    pub revoked: Vec<AuthId>,
    /// Rules that failed to evaluate, with their errors.
    pub errors: Vec<(RuleId, RuleError)>,
    /// Fixpoint rounds executed (1 for a single pass).
    pub rounds: usize,
}

impl DerivationReport {
    /// True if nothing changed.
    pub fn is_quiescent(&self) -> bool {
        self.created.is_empty() && self.revoked.is_empty()
    }
}

type SubjectOpFn = Box<dyn Fn(SubjectId) -> Vec<SubjectId> + Send + Sync>;
type LocationOpFn = Box<dyn Fn(LocationId, &EffectiveGraph) -> Vec<LocationId> + Send + Sync>;

/// Evaluates rules and maintains derived authorizations in the database.
#[derive(Default)]
pub struct RuleEngine {
    rules: BTreeMap<RuleId, Rule>,
    next: u32,
    custom_subject_ops: HashMap<String, SubjectOpFn>,
    custom_location_ops: HashMap<String, LocationOpFn>,
    /// Bound on route length for `AllRouteFrom` (locations per route).
    pub max_route_len: usize,
    /// Bound on enumerated routes for `AllRouteFrom`.
    pub max_routes: usize,
}

impl fmt::Debug for RuleEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuleEngine")
            .field("rules", &self.rules.len())
            .field("custom_subject_ops", &self.custom_subject_ops.len())
            .field("custom_location_ops", &self.custom_location_ops.len())
            .finish()
    }
}

impl RuleEngine {
    /// An engine with default route-enumeration bounds.
    pub fn new() -> RuleEngine {
        RuleEngine {
            max_route_len: 64,
            max_routes: 4096,
            ..RuleEngine::default()
        }
    }

    /// Register a rule; returns its id.
    pub fn add_rule(&mut self, rule: Rule) -> RuleId {
        let id = RuleId(self.next);
        self.next += 1;
        self.rules.insert(id, rule);
        id
    }

    /// Remove a rule (its derived authorizations are revoked on the next
    /// [`RuleEngine::apply_all`] pass).
    pub fn remove_rule(&mut self, id: RuleId) -> Option<Rule> {
        self.rules.remove(&id)
    }

    /// Look up a rule.
    pub fn rule(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(&id)
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Export rules with their ids (persistence). Custom operator
    /// *registrations* are code and must be re-registered by the host.
    pub fn export(&self) -> Vec<(RuleId, Rule)> {
        self.rules.iter().map(|(&id, r)| (id, r.clone())).collect()
    }

    /// Restore rules preserving their ids; the id counter resumes past the
    /// largest restored id.
    pub fn import(rules: impl IntoIterator<Item = (RuleId, Rule)>) -> RuleEngine {
        let mut engine = RuleEngine::new();
        for (id, rule) in rules {
            engine.next = engine.next.max(id.0 + 1);
            engine.rules.insert(id, rule);
        }
        engine
    }

    /// Register a custom subject operator under `name`.
    pub fn register_subject_op(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(SubjectId) -> Vec<SubjectId> + Send + Sync + 'static,
    ) {
        self.custom_subject_ops.insert(name.into(), Box::new(f));
    }

    /// Register a custom location operator under `name`.
    pub fn register_location_op(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(LocationId, &EffectiveGraph) -> Vec<LocationId> + Send + Sync + 'static,
    ) {
        self.custom_location_ops.insert(name.into(), Box::new(f));
    }

    fn subjects_for(
        &self,
        op: &SubjectOp,
        base: SubjectId,
        profiles: &dyn ProfileProvider,
    ) -> Result<Vec<SubjectId>, RuleError> {
        Ok(match op {
            SubjectOp::Same => vec![base],
            SubjectOp::SupervisorOf => profiles.supervisor_of(base).into_iter().collect(),
            SubjectOp::Subordinates => profiles.subordinates_of(base),
            SubjectOp::MembersOfGroup(g) => profiles.members_of(g),
            SubjectOp::Custom(name) => {
                let f = self
                    .custom_subject_ops
                    .get(name)
                    .ok_or_else(|| RuleError::UnknownCustomOp(name.clone()))?;
                f(base)
            }
        })
    }

    fn locations_for(
        &self,
        op: &LocationOp,
        base: LocationId,
        graph: &EffectiveGraph,
    ) -> Result<Vec<LocationId>, RuleError> {
        Ok(match op {
            LocationOp::Same => vec![base],
            LocationOp::Fixed(l) => vec![*l],
            LocationOp::Neighbors => graph.neighbors(base).to_vec(),
            LocationOp::AllRouteFrom { source } => route::locations_on_routes(
                graph,
                *source,
                base,
                self.max_route_len,
                self.max_routes,
            ),
            LocationOp::Custom(name) => {
                let f = self
                    .custom_location_ops
                    .get(name)
                    .ok_or_else(|| RuleError::UnknownCustomOp(name.clone()))?;
                f(base, graph)
            }
        })
    }

    /// Evaluate one rule against the database, returning the authorizations
    /// it currently derives (without mutating the database).
    ///
    /// Entry/exit duration sets are paired cartesianly; pairs violating
    /// Definition 4 (`tos ≥ tis`, `toe ≥ tie`) are dropped, as are limits
    /// evaluating to zero.
    pub fn derive(
        &self,
        rule: &Rule,
        db: &AuthorizationDb,
        profiles: &dyn ProfileProvider,
        graph: &EffectiveGraph,
    ) -> Result<Vec<Authorization>, RuleError> {
        let base = db.get(rule.base).ok_or(RuleError::UnknownBase(rule.base))?;
        let tr = rule.valid_from;
        let entry_set = rule.ops.entry_op.apply(base.entry_window(), tr);
        let exit_set = rule.ops.exit_op.apply(base.exit_window(), tr);
        let subjects = self.subjects_for(&rule.ops.subject_op, base.subject(), profiles)?;
        let locations = self.locations_for(&rule.ops.location_op, base.location(), graph)?;
        let limit = rule.ops.count.eval(base.limit());
        let mut out = Vec::new();
        for entry in entry_set.iter() {
            for exit in exit_set.iter() {
                for &s in &subjects {
                    for &l in &locations {
                        if let Ok(a) = Authorization::new(entry, exit, s, l, limit) {
                            out.push(a);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// One derivation pass: for every rule, reconcile the database's derived
    /// authorizations with the rule's current output (insert new, revoke
    /// stale). Usage counters for revoked authorizations should be cleared
    /// by the caller via the returned report.
    pub fn apply_all(
        &self,
        db: &mut AuthorizationDb,
        profiles: &dyn ProfileProvider,
        graph: &EffectiveGraph,
    ) -> DerivationReport {
        let mut report = DerivationReport {
            rounds: 1,
            ..DerivationReport::default()
        };
        for (&rule_id, rule) in &self.rules {
            let target: BTreeSet<Authorization> = match self.derive(rule, db, profiles, graph) {
                Ok(v) => v.into_iter().collect(),
                Err(RuleError::UnknownBase(_)) => BTreeSet::new(), // base gone: revoke all
                Err(e) => {
                    report.errors.push((rule_id, e));
                    continue;
                }
            };
            let existing: Vec<(AuthId, Authorization)> = db
                .derived_by_rule(rule_id)
                .into_iter()
                .map(|id| (id, *db.get(id).expect("derived id is live")))
                .collect();
            let existing_set: BTreeSet<Authorization> = existing.iter().map(|&(_, a)| a).collect();
            for (id, a) in &existing {
                if !target.contains(a) {
                    db.revoke(*id);
                    report.revoked.push(*id);
                }
            }
            for a in target {
                if !existing_set.contains(&a) {
                    let id = db.insert_with_provenance(
                        a,
                        Provenance::Derived {
                            rule: rule_id,
                            base: rule.base,
                        },
                    );
                    report.created.push(id);
                }
            }
        }
        // Rules whose ids were removed from the engine: revoke leftovers.
        let live: BTreeSet<RuleId> = self.rules.keys().copied().collect();
        let stale: Vec<AuthId> = db
            .iter()
            .filter_map(|(id, _, p)| match p {
                Provenance::Derived { rule, .. } if !live.contains(&rule) => Some(id),
                _ => None,
            })
            .collect();
        for id in stale {
            db.revoke(id);
            report.revoked.push(id);
        }
        report
    }

    /// Apply rules repeatedly until quiescent (derived authorizations can be
    /// bases of later rules), bounded by `max_rounds`.
    pub fn apply_to_fixpoint(
        &self,
        db: &mut AuthorizationDb,
        profiles: &dyn ProfileProvider,
        graph: &EffectiveGraph,
        max_rounds: usize,
    ) -> DerivationReport {
        let mut total = DerivationReport::default();
        for round in 0..max_rounds {
            let r = self.apply_all(db, profiles, graph);
            total.created.extend(r.created.iter().copied());
            total.revoked.extend(r.revoked.iter().copied());
            total.errors.extend(r.errors.iter().cloned());
            total.rounds = round + 1;
            if r.is_quiescent() {
                break;
            }
        }
        total
    }
}

/// A simple in-memory [`ProfileProvider`] for tests and examples; the
/// enforcement engine provides the production implementation.
#[derive(Debug, Clone, Default)]
pub struct StaticProfiles {
    /// subject → supervisor.
    pub supervisors: HashMap<SubjectId, SubjectId>,
    /// group name → members.
    pub groups: HashMap<String, Vec<SubjectId>>,
}

impl ProfileProvider for StaticProfiles {
    fn supervisor_of(&self, s: SubjectId) -> Option<SubjectId> {
        self.supervisors.get(&s).copied()
    }
    fn subordinates_of(&self, s: SubjectId) -> Vec<SubjectId> {
        let mut v: Vec<SubjectId> = self
            .supervisors
            .iter()
            .filter(|&(_, &sup)| sup == s)
            .map(|(&sub, _)| sub)
            .collect();
        v.sort_unstable();
        v
    }
    fn members_of(&self, group: &str) -> Vec<SubjectId> {
        self.groups.get(group).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltam_graph::examples::ntu_campus;
    use ltam_time::Interval;

    const ALICE: SubjectId = SubjectId(0);
    const BOB: SubjectId = SubjectId(1);

    struct Fixture {
        db: AuthorizationDb,
        graph: EffectiveGraph,
        profiles: StaticProfiles,
        a1: AuthId,
        cais: LocationId,
        sce_go: LocationId,
    }

    /// §4's running example: a1 = ([5,20],[15,50],(Alice,CAIS),2);
    /// Bob is Alice's supervisor.
    fn fixture() -> Fixture {
        let ntu = ntu_campus();
        let graph = EffectiveGraph::build(&ntu.model);
        let mut db = AuthorizationDb::new();
        let a1 = db.insert(
            Authorization::new(
                Interval::lit(5, 20),
                Interval::lit(15, 50),
                ALICE,
                ntu.cais,
                EntryLimit::Finite(2),
            )
            .unwrap(),
        );
        let mut profiles = StaticProfiles::default();
        profiles.supervisors.insert(ALICE, BOB);
        Fixture {
            db,
            graph,
            profiles,
            a1,
            cais: ntu.cais,
            sce_go: ntu.sce_go,
        }
    }

    #[test]
    fn example1_supervisor_rule_derives_a2() {
        let f = fixture();
        let mut engine = RuleEngine::new();
        let rule = Rule {
            valid_from: Time(7),
            base: f.a1,
            ops: OpTuple {
                subject_op: SubjectOp::SupervisorOf,
                count: CountExpr::Const(2),
                ..OpTuple::default()
            },
        };
        engine.add_rule(rule.clone());
        let derived = engine.derive(&rule, &f.db, &f.profiles, &f.graph).unwrap();
        // a2: ([5,20],[15,50],(Bob,CAIS),2).
        assert_eq!(derived.len(), 1);
        let a2 = derived[0];
        assert_eq!(a2.subject(), BOB);
        assert_eq!(a2.location(), f.cais);
        assert_eq!(a2.entry_window(), Interval::lit(5, 20));
        assert_eq!(a2.exit_window(), Interval::lit(15, 50));
        assert_eq!(a2.limit(), EntryLimit::Finite(2));
    }

    #[test]
    fn example2_intersection_rule_derives_a3() {
        let f = fixture();
        let engine = RuleEngine::new();
        let rule = Rule {
            valid_from: Time(7),
            base: f.a1,
            ops: OpTuple {
                entry_op: TemporalOp::Intersection(Interval::lit(10, 30)),
                subject_op: SubjectOp::SupervisorOf,
                count: CountExpr::Const(2),
                ..OpTuple::default()
            },
        };
        let derived = engine.derive(&rule, &f.db, &f.profiles, &f.graph).unwrap();
        // a3: ([10,20],[15,50],(Bob,CAIS),2).
        assert_eq!(derived.len(), 1);
        assert_eq!(derived[0].entry_window(), Interval::lit(10, 20));
        assert_eq!(derived[0].exit_window(), Interval::lit(15, 50));
        assert_eq!(derived[0].subject(), BOB);
    }

    #[test]
    fn example3_all_route_from_covers_route_locations() {
        let f = fixture();
        let engine = RuleEngine::new();
        let rule = Rule {
            valid_from: Time(7),
            base: f.a1,
            ops: OpTuple {
                location_op: LocationOp::AllRouteFrom { source: f.sce_go },
                count: CountExpr::Const(2),
                ..OpTuple::default()
            },
        };
        let derived = engine.derive(&rule, &f.db, &f.profiles, &f.graph).unwrap();
        // One authorization per location on the SCE.GO → CAIS routes, all
        // for Alice with a1's windows.
        let locs: BTreeSet<LocationId> = derived.iter().map(|a| a.location()).collect();
        assert!(locs.contains(&f.sce_go));
        assert!(locs.contains(&f.cais));
        assert!(derived.len() >= 4);
        assert!(derived.iter().all(|a| a.subject() == ALICE));
        assert!(derived
            .iter()
            .all(|a| a.entry_window() == Interval::lit(5, 20)));
    }

    #[test]
    fn apply_all_inserts_with_provenance_and_revokes_on_profile_change() {
        let mut f = fixture();
        let mut engine = RuleEngine::new();
        let rule_id = engine.add_rule(Rule {
            valid_from: Time(7),
            base: f.a1,
            ops: OpTuple {
                subject_op: SubjectOp::SupervisorOf,
                ..OpTuple::default()
            },
        });
        let r1 = engine.apply_all(&mut f.db, &f.profiles, &f.graph);
        assert_eq!(r1.created.len(), 1);
        let bob_auth = r1.created[0];
        assert_eq!(
            f.db.provenance(bob_auth),
            Some(Provenance::Derived {
                rule: rule_id,
                base: f.a1
            })
        );
        // Re-applying is quiescent.
        let r2 = engine.apply_all(&mut f.db, &f.profiles, &f.graph);
        assert!(r2.is_quiescent());
        // Alice gets a new supervisor: Bob's derived authorization is
        // revoked, Carol's is created.
        let carol = SubjectId(2);
        f.profiles.supervisors.insert(ALICE, carol);
        let r3 = engine.apply_all(&mut f.db, &f.profiles, &f.graph);
        assert_eq!(r3.revoked, vec![bob_auth]);
        assert_eq!(r3.created.len(), 1);
        assert_eq!(f.db.get(r3.created[0]).unwrap().subject(), carol);
        assert!(f.db.get(bob_auth).is_none());
    }

    #[test]
    fn revoking_base_revokes_derived() {
        let mut f = fixture();
        let mut engine = RuleEngine::new();
        engine.add_rule(Rule {
            valid_from: Time(7),
            base: f.a1,
            ops: OpTuple {
                subject_op: SubjectOp::SupervisorOf,
                ..OpTuple::default()
            },
        });
        let r1 = engine.apply_all(&mut f.db, &f.profiles, &f.graph);
        assert_eq!(r1.created.len(), 1);
        f.db.revoke(f.a1);
        let r2 = engine.apply_all(&mut f.db, &f.profiles, &f.graph);
        assert_eq!(r2.revoked, r1.created);
        assert_eq!(f.db.len(), 0);
    }

    #[test]
    fn removed_rule_revokes_its_output() {
        let mut f = fixture();
        let mut engine = RuleEngine::new();
        let rid = engine.add_rule(Rule {
            valid_from: Time(7),
            base: f.a1,
            ops: OpTuple {
                subject_op: SubjectOp::SupervisorOf,
                ..OpTuple::default()
            },
        });
        let r1 = engine.apply_all(&mut f.db, &f.profiles, &f.graph);
        engine.remove_rule(rid);
        let r2 = engine.apply_all(&mut f.db, &f.profiles, &f.graph);
        assert_eq!(r2.revoked, r1.created);
    }

    #[test]
    fn derived_auth_can_be_base_for_chained_rule() {
        let mut f = fixture();
        let mut engine = RuleEngine::new();
        engine.add_rule(Rule {
            valid_from: Time(7),
            base: f.a1,
            ops: OpTuple {
                subject_op: SubjectOp::SupervisorOf,
                ..OpTuple::default()
            },
        });
        let pass1 = engine.apply_to_fixpoint(&mut f.db, &f.profiles, &f.graph, 8);
        let bob_auth = pass1.created[0];
        // Chain: Bob's supervisor (Dave) gets it too.
        f.profiles.supervisors.insert(BOB, SubjectId(3));
        engine.add_rule(Rule {
            valid_from: Time(8),
            base: bob_auth,
            ops: OpTuple {
                subject_op: SubjectOp::SupervisorOf,
                ..OpTuple::default()
            },
        });
        let pass2 = engine.apply_to_fixpoint(&mut f.db, &f.profiles, &f.graph, 8);
        assert!(pass2
            .created
            .iter()
            .any(|&id| f.db.get(id).unwrap().subject() == SubjectId(3)));
        assert!(pass2.rounds >= 1);
    }

    #[test]
    fn custom_operators_are_dispatched() {
        let f = fixture();
        let mut engine = RuleEngine::new();
        engine.register_subject_op("everyone_in_audit", |_| vec![SubjectId(7), SubjectId(8)]);
        engine.register_location_op("self_and_neighbors", |l, g| {
            let mut v = vec![l];
            v.extend_from_slice(g.neighbors(l));
            v
        });
        let rule = Rule {
            valid_from: Time(0),
            base: f.a1,
            ops: OpTuple {
                subject_op: SubjectOp::Custom("everyone_in_audit".into()),
                location_op: LocationOp::Custom("self_and_neighbors".into()),
                ..OpTuple::default()
            },
        };
        let derived = engine.derive(&rule, &f.db, &f.profiles, &f.graph).unwrap();
        let subjects: BTreeSet<SubjectId> = derived.iter().map(|a| a.subject()).collect();
        assert_eq!(subjects.len(), 2);
        assert!(derived.len() >= 4); // 2 subjects × (CAIS + ≥1 neighbor)
    }

    #[test]
    fn unknown_custom_op_is_an_error() {
        let f = fixture();
        let engine = RuleEngine::new();
        let rule = Rule {
            valid_from: Time(0),
            base: f.a1,
            ops: OpTuple {
                subject_op: SubjectOp::Custom("nope".into()),
                ..OpTuple::default()
            },
        };
        assert_eq!(
            engine
                .derive(&rule, &f.db, &f.profiles, &f.graph)
                .unwrap_err(),
            RuleError::UnknownCustomOp("nope".into())
        );
    }

    #[test]
    fn whenevernot_pairs_are_validated() {
        // WHENEVERNOT on the entry duration yields windows before and after
        // the base window; pairing with the base exit duration drops pairs
        // violating Definition 4 instead of storing invalid authorizations.
        let f = fixture();
        let engine = RuleEngine::new();
        let rule = Rule {
            valid_from: Time(0),
            base: f.a1,
            ops: OpTuple {
                entry_op: TemporalOp::WheneverNot,
                exit_op: TemporalOp::WheneverNot,
                ..OpTuple::default()
            },
        };
        let derived = engine.derive(&rule, &f.db, &f.profiles, &f.graph).unwrap();
        for a in &derived {
            assert!(a.exit_window().start() >= a.entry_window().start());
            assert!(a.exit_window().end() >= a.entry_window().end());
        }
        assert!(!derived.is_empty());
    }

    #[test]
    fn count_expr_evaluation() {
        use EntryLimit::*;
        assert_eq!(CountExpr::Same.eval(Finite(2)), Finite(2));
        assert_eq!(CountExpr::Const(5).eval(Finite(2)), Finite(5));
        assert_eq!(CountExpr::Unbounded.eval(Finite(2)), Unbounded);
        assert_eq!(CountExpr::Add(3).eval(Finite(2)), Finite(5));
        assert_eq!(CountExpr::Add(3).eval(Unbounded), Unbounded);
        assert_eq!(CountExpr::SaturatingSub(5).eval(Finite(2)), Finite(1));
        assert_eq!(CountExpr::AtMost(1).eval(Finite(2)), Finite(1));
        assert_eq!(CountExpr::AtMost(4).eval(Unbounded), Finite(4));
    }

    #[test]
    fn static_profiles_subordinates() {
        let mut p = StaticProfiles::default();
        p.supervisors.insert(SubjectId(1), SubjectId(0));
        p.supervisors.insert(SubjectId(2), SubjectId(0));
        assert_eq!(
            p.subordinates_of(SubjectId(0)),
            vec![SubjectId(1), SubjectId(2)]
        );
        assert!(p.subordinates_of(SubjectId(1)).is_empty());
    }
}
