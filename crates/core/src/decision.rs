//! Access requests and the authorization decision — Definitions 6 and 7.

use crate::db::{AuthId, AuthorizationDb};
use crate::ledger::UsageLedger;
use crate::subject::SubjectId;
use ltam_graph::LocationId;
use ltam_time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An *access request* `(t, s, l)` — Definition 6: at time `t`, subject `s`
/// requests access to location `l`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessRequest {
    /// The time instant at which the request is made.
    pub time: Time,
    /// The requesting subject.
    pub subject: SubjectId,
    /// The primitive location requested.
    pub location: LocationId,
}

impl fmt::Display for AccessRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.time, self.subject, self.location)
    }
}

/// Why a request was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DenyReason {
    /// No authorization exists for this `(subject, location)` pair — the §5
    /// scenario's "there is no authorization specifies Bob's access to CAIS".
    NoAuthorization,
    /// Authorizations exist, but none admits entry at the request time.
    OutsideEntryWindow,
    /// An entry window admits the time, but every such authorization has
    /// exhausted its entry count — "Bob has only one entry to CHIPES".
    EntriesExhausted,
    /// A prohibition blocks the subject from the location at this time,
    /// overriding any grant.
    Prohibited,
    /// A declared lockdown default-denies: the request would have been
    /// granted, but its authorization is not pinned (see the
    /// `ltam-situate` situation overlay).
    Lockdown,
    /// A temporal workflow constraint (separation-of-duty,
    /// binding-of-duty, ordered steps) refused the entry against the
    /// subject's own movement history (see `ltam-situate`).
    WorkflowConstraint,
}

impl fmt::Display for DenyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenyReason::NoAuthorization => write!(f, "no authorization"),
            DenyReason::OutsideEntryWindow => write!(f, "outside entry duration"),
            DenyReason::EntriesExhausted => write!(f, "entry count exhausted"),
            DenyReason::Prohibited => write!(f, "prohibited"),
            DenyReason::Lockdown => write!(f, "lockdown in force"),
            DenyReason::WorkflowConstraint => write!(f, "workflow constraint"),
        }
    }
}

/// Outcome of checking an access request against the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Definition 7 satisfied; `auth` is the authorization that granted it.
    Granted {
        /// The granting authorization (lowest id among admissible ones,
        /// for determinism).
        auth: AuthId,
    },
    /// No authorization satisfied Definition 7, but a declared
    /// emergency overrode the denial for a registered responder (the
    /// `ltam-situate` overlay). The id of the authorizing incident
    /// ticket rides into the audit trail with the decision, so every
    /// bypass is attributable to the declaration that allowed it.
    GrantedOverride {
        /// The incident ticket the active emergency was declared under.
        incident: u64,
    },
    /// No authorization satisfied Definition 7.
    Denied {
        /// The most specific failure among the candidates.
        reason: DenyReason,
    },
}

impl Decision {
    /// True for grants (including emergency overrides).
    pub fn is_granted(&self) -> bool {
        matches!(
            self,
            Decision::Granted { .. } | Decision::GrantedOverride { .. }
        )
    }

    /// True only for emergency-override grants.
    pub fn is_override(&self) -> bool {
        matches!(self, Decision::GrantedOverride { .. })
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Granted { auth } => write!(f, "granted by {auth}"),
            Decision::GrantedOverride { incident } => {
                write!(f, "granted by emergency override (incident I{incident})")
            }
            Decision::Denied { reason } => write!(f, "denied: {reason}"),
        }
    }
}

/// Definition 7: an access request `(t, s, l)` is authorized iff some
/// authorization for `(s, l)` has `tis ≤ t ≤ tie` and fewer than `n`
/// recorded entries.
///
/// Deny reasons are ranked: if any window admits `t` but budgets are spent,
/// the denial is [`DenyReason::EntriesExhausted`]; if windows exist but none
/// admits `t`, [`DenyReason::OutsideEntryWindow`]; otherwise
/// [`DenyReason::NoAuthorization`].
pub fn check_access(
    db: &AuthorizationDb,
    ledger: &UsageLedger,
    request: &AccessRequest,
) -> Decision {
    let mut saw_candidate = false;
    let mut saw_window = false;
    for (id, auth) in db.for_subject_location(request.subject, request.location) {
        saw_candidate = true;
        if auth.admits_entry_at(request.time) {
            saw_window = true;
            if ledger.admits(id, auth) {
                return Decision::Granted { auth: id };
            }
        }
    }
    let reason = if saw_window {
        DenyReason::EntriesExhausted
    } else if saw_candidate {
        DenyReason::OutsideEntryWindow
    } else {
        DenyReason::NoAuthorization
    };
    Decision::Denied { reason }
}

/// Definition 7 extended with denial-takes-precedence prohibitions: a
/// blocked `(subject, location, time)` denies regardless of grants.
///
/// This is the hot-path decision the enforcement layer runs for every
/// card swipe. It borrows the policy stores *immutably* — no `&mut`
/// engine is needed — which is what lets many enforcement shards share
/// one read-mostly policy core (see `ltam-engine`'s `ShardedEngine`).
///
/// ```
/// use ltam_core::decision::{check_access_restricted, AccessRequest, Decision};
/// use ltam_core::db::AuthorizationDb;
/// use ltam_core::ledger::UsageLedger;
/// use ltam_core::model::{Authorization, EntryLimit};
/// use ltam_core::prohibition::{Prohibition, ProhibitionDb};
/// use ltam_core::subject::SubjectId;
/// use ltam_graph::LocationId;
/// use ltam_time::{Interval, Time};
///
/// let (alice, cais) = (SubjectId(0), LocationId(0));
/// let mut db = AuthorizationDb::new();
/// // The §3.2 example: ([5, 40], [20, 100], (Alice, CAIS), 1).
/// let a1 = db.insert(
///     Authorization::new(
///         Interval::lit(5, 40),
///         Interval::lit(20, 100),
///         alice,
///         cais,
///         EntryLimit::Finite(1),
///     )
///     .unwrap(),
/// );
/// let mut prohibitions = ProhibitionDb::new();
/// let ledger = UsageLedger::new();
/// let at = |t| AccessRequest { time: Time(t), subject: alice, location: cais };
///
/// // Inside the entry window the request is granted by a1…
/// assert_eq!(
///     check_access_restricted(&db, &prohibitions, &ledger, &at(10)),
///     Decision::Granted { auth: a1 },
/// );
/// // …but a lockdown covering t=10 takes precedence over the grant.
/// prohibitions.insert(Prohibition { subject: alice, location: cais, window: Interval::lit(8, 15) });
/// assert!(!check_access_restricted(&db, &prohibitions, &ledger, &at(10)).is_granted());
/// assert!(check_access_restricted(&db, &prohibitions, &ledger, &at(20)).is_granted());
/// ```
pub fn check_access_restricted(
    db: &AuthorizationDb,
    prohibitions: &crate::prohibition::ProhibitionDb,
    ledger: &UsageLedger,
    request: &AccessRequest,
) -> Decision {
    if prohibitions.blocks(request.subject, request.location, request.time) {
        return Decision::Denied {
            reason: DenyReason::Prohibited,
        };
    }
    check_access(db, ledger, request)
}

/// The read-only half of the decision path: shared, immutable borrows of
/// the policy stores, split away from any mutable enforcement state.
///
/// [`check_access_restricted`] already takes its policy inputs by `&`;
/// this bundle makes the split explicit so an enforcement layer can hand
/// one context to many concurrent checkers (each owning only its own
/// mutable [`UsageLedger`] slice) without threading a `&mut` engine
/// through the hot path. `ltam-engine`'s sharded engine builds its
/// per-shard policy view on top of this.
#[derive(Debug, Clone, Copy)]
pub struct DecisionContext<'a> {
    /// The authorization database (Definition 7's candidate set).
    pub db: &'a AuthorizationDb,
    /// Denial-takes-precedence prohibitions.
    pub prohibitions: &'a crate::prohibition::ProhibitionDb,
}

impl DecisionContext<'_> {
    /// Evaluate `request` against this policy under `ledger`'s entry
    /// counts — exactly [`check_access_restricted`].
    pub fn decide(&self, ledger: &UsageLedger, request: &AccessRequest) -> Decision {
        check_access_restricted(self.db, self.prohibitions, ledger, request)
    }

    /// True if a prohibition blocks `(subject, location)` at `t`,
    /// regardless of any grant.
    pub fn blocked(&self, subject: SubjectId, location: LocationId, t: Time) -> bool {
        self.prohibitions.blocks(subject, location, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Authorization, EntryLimit};
    use ltam_time::Interval;

    const ALICE: SubjectId = SubjectId(0);
    const BOB: SubjectId = SubjectId(1);
    const CAIS: LocationId = LocationId(10);
    const CHIPES: LocationId = LocationId(11);

    /// The §5 example database:
    /// A1: ([10,20],[10,50],(Alice,CAIS),2)
    /// A2: ([5,35],[20,100],(Bob,CHIPES),1)
    fn section5_db() -> (AuthorizationDb, AuthId, AuthId) {
        let mut db = AuthorizationDb::new();
        let a1 = db.insert(
            Authorization::new(
                Interval::lit(10, 20),
                Interval::lit(10, 50),
                ALICE,
                CAIS,
                EntryLimit::Finite(2),
            )
            .unwrap(),
        );
        let a2 = db.insert(
            Authorization::new(
                Interval::lit(5, 35),
                Interval::lit(20, 100),
                BOB,
                CHIPES,
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        (db, a1, a2)
    }

    #[test]
    fn section5_walkthrough() {
        let (db, a1, a2) = section5_db();
        let mut ledger = UsageLedger::new();

        // t=10: (10, Alice, CAIS) granted according to A1.
        let d = check_access(
            &db,
            &ledger,
            &AccessRequest {
                time: Time(10),
                subject: ALICE,
                location: CAIS,
            },
        );
        assert_eq!(d, Decision::Granted { auth: a1 });

        // t=15: (15, Bob, CAIS) not authorized — no authorization for Bob on
        // CAIS.
        let d = check_access(
            &db,
            &ledger,
            &AccessRequest {
                time: Time(15),
                subject: BOB,
                location: CAIS,
            },
        );
        assert_eq!(
            d,
            Decision::Denied {
                reason: DenyReason::NoAuthorization
            }
        );

        // t=16: (15, Bob, CHIPES) authorized based on A2.
        let d = check_access(
            &db,
            &ledger,
            &AccessRequest {
                time: Time(16),
                subject: BOB,
                location: CHIPES,
            },
        );
        assert_eq!(d, Decision::Granted { auth: a2 });
        ledger.record_entry(a2); // Bob enters; t=20 Bob leaves CHIPES.

        // t=30: (30, Bob, CHIPES) not authorized — only one entry allowed.
        let d = check_access(
            &db,
            &ledger,
            &AccessRequest {
                time: Time(30),
                subject: BOB,
                location: CHIPES,
            },
        );
        assert_eq!(
            d,
            Decision::Denied {
                reason: DenyReason::EntriesExhausted
            }
        );
    }

    #[test]
    fn outside_window_denial() {
        let (db, _, _) = section5_db();
        let ledger = UsageLedger::new();
        let d = check_access(
            &db,
            &ledger,
            &AccessRequest {
                time: Time(40),
                subject: ALICE,
                location: CAIS,
            },
        );
        assert_eq!(
            d,
            Decision::Denied {
                reason: DenyReason::OutsideEntryWindow
            }
        );
    }

    #[test]
    fn grant_prefers_lowest_id_with_budget() {
        let mut db = AuthorizationDb::new();
        let first = db.insert(
            Authorization::new(
                Interval::lit(0, 100),
                Interval::lit(0, 100),
                ALICE,
                CAIS,
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        let second = db.insert(
            Authorization::new(
                Interval::lit(0, 100),
                Interval::lit(0, 100),
                ALICE,
                CAIS,
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        let mut ledger = UsageLedger::new();
        let req = AccessRequest {
            time: Time(5),
            subject: ALICE,
            location: CAIS,
        };
        assert_eq!(
            check_access(&db, &ledger, &req),
            Decision::Granted { auth: first }
        );
        ledger.record_entry(first);
        // First is exhausted; the second takes over.
        assert_eq!(
            check_access(&db, &ledger, &req),
            Decision::Granted { auth: second }
        );
        ledger.record_entry(second);
        assert_eq!(
            check_access(&db, &ledger, &req),
            Decision::Denied {
                reason: DenyReason::EntriesExhausted
            }
        );
    }

    #[test]
    fn decision_context_matches_free_function() {
        use crate::prohibition::{Prohibition, ProhibitionDb};
        let (db, _, _) = section5_db();
        let mut prohibitions = ProhibitionDb::new();
        prohibitions.insert(Prohibition {
            subject: ALICE,
            location: CAIS,
            window: Interval::lit(12, 14),
        });
        let ledger = UsageLedger::new();
        let ctx = DecisionContext {
            db: &db,
            prohibitions: &prohibitions,
        };
        for t in [9, 10, 12, 15, 21] {
            let req = AccessRequest {
                time: Time(t),
                subject: ALICE,
                location: CAIS,
            };
            assert_eq!(
                ctx.decide(&ledger, &req),
                check_access_restricted(&db, &prohibitions, &ledger, &req),
            );
            assert_eq!(
                ctx.blocked(ALICE, CAIS, Time(t)),
                prohibitions.blocks(ALICE, CAIS, Time(t)),
            );
        }
    }

    #[test]
    fn display_formats() {
        let req = AccessRequest {
            time: Time(10),
            subject: ALICE,
            location: CAIS,
        };
        assert_eq!(req.to_string(), "(10, S0, L10)");
        assert_eq!(
            Decision::Granted { auth: AuthId(1) }.to_string(),
            "granted by A1"
        );
        assert_eq!(
            Decision::Denied {
                reason: DenyReason::NoAuthorization
            }
            .to_string(),
            "denied: no authorization"
        );
    }
}
