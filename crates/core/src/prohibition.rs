//! Prohibitions: negative location-temporal authorizations.
//!
//! The paper's future work plans "more access constraints"; the temporal
//! literature it builds on (TAM) pairs positive grants with *negative*
//! authorizations that override them. A [`Prohibition`] blocks a subject
//! from entering a location during a window regardless of any grant —
//! lockdowns, quarantines, suspension of a badge.
//!
//! Prohibitions compose with the rest of the model through
//! [`restrict_authorizations`]: each authorization's entry window is
//! fragmented around the blocked chronons, producing an equivalent
//! authorization set that Algorithm 1, the planner and route checks consume
//! unchanged (denial-takes-precedence everywhere, not just at the reader).

use crate::inaccessible::AuthsByLocation;
use crate::model::Authorization;
use crate::subject::SubjectId;
use ltam_graph::LocationId;
use ltam_time::{Interval, IntervalSet, Time};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A negative authorization: `subject` may not enter `location` during
/// `window`, overriding any grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prohibition {
    /// The blocked subject.
    pub subject: SubjectId,
    /// The blocked location.
    pub location: LocationId,
    /// When the block applies.
    pub window: Interval,
}

/// The prohibition store, merged per `(subject, location)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProhibitionDb {
    blocked: HashMap<(SubjectId, LocationId), IntervalSet>,
    count: usize,
}

impl ProhibitionDb {
    /// An empty store.
    pub fn new() -> ProhibitionDb {
        ProhibitionDb::default()
    }

    /// Number of inserted prohibitions (pre-merge).
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if nothing is blocked.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Add a prohibition.
    pub fn insert(&mut self, p: Prohibition) {
        self.blocked
            .entry((p.subject, p.location))
            .or_default()
            .insert(p.window);
        self.count += 1;
    }

    /// The blocked chronons for a `(subject, location)` pair.
    pub fn blocked_set(&self, subject: SubjectId, location: LocationId) -> Option<&IntervalSet> {
        self.blocked.get(&(subject, location))
    }

    /// True if entering `location` at `t` is prohibited for `subject`.
    pub fn blocks(&self, subject: SubjectId, location: LocationId, t: Time) -> bool {
        self.blocked
            .get(&(subject, location))
            .is_some_and(|s| s.contains(t))
    }
}

/// Rewrite a subject's per-location authorizations so every entry window
/// avoids the blocked chronons.
///
/// Entry windows are fragmented around the blocked set; each fragment's
/// exit window start is clamped to the fragment start (one cannot be
/// obliged to leave before one could have arrived), keeping Definition 4's
/// constraints intact. Fully-blocked authorizations disappear.
pub fn restrict_authorizations(
    auths: &AuthsByLocation,
    subject: SubjectId,
    prohibitions: &ProhibitionDb,
) -> AuthsByLocation {
    let mut out = AuthsByLocation::new();
    for (&location, list) in auths {
        let Some(blocked) = prohibitions.blocked_set(subject, location) else {
            out.insert(location, list.clone());
            continue;
        };
        let mut rewritten = Vec::new();
        for a in list {
            let allowed = IntervalSet::of(a.entry_window()).subtract(blocked);
            for fragment in allowed.iter() {
                let exit = a
                    .exit_window()
                    .clamp_start(fragment.start())
                    .expect("exit end >= entry end >= fragment start");
                rewritten.push(
                    Authorization::new(fragment, exit, a.subject(), a.location(), a.limit())
                        .expect("fragment satisfies Definition 4"),
                );
            }
        }
        if !rewritten.is_empty() {
            out.insert(location, rewritten);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inaccessible::find_inaccessible;
    use crate::model::EntryLimit;
    use ltam_graph::examples::fig4_cycle;
    use ltam_graph::EffectiveGraph;

    const ALICE: SubjectId = SubjectId(0);
    const CAIS: LocationId = LocationId(9);

    fn auth(l: LocationId, e: (u64, u64), x: (u64, u64)) -> Authorization {
        Authorization::new(
            Interval::lit(e.0, e.1),
            Interval::lit(x.0, x.1),
            ALICE,
            l,
            EntryLimit::Unbounded,
        )
        .unwrap()
    }

    #[test]
    fn blocks_answers_point_queries() {
        let mut db = ProhibitionDb::new();
        db.insert(Prohibition {
            subject: ALICE,
            location: CAIS,
            window: Interval::lit(10, 20),
        });
        assert!(db.blocks(ALICE, CAIS, Time(10)));
        assert!(db.blocks(ALICE, CAIS, Time(20)));
        assert!(!db.blocks(ALICE, CAIS, Time(21)));
        assert!(!db.blocks(SubjectId(1), CAIS, Time(15)));
        assert!(!db.blocks(ALICE, LocationId(8), Time(15)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn overlapping_prohibitions_merge() {
        let mut db = ProhibitionDb::new();
        for w in [Interval::lit(10, 20), Interval::lit(15, 30)] {
            db.insert(Prohibition {
                subject: ALICE,
                location: CAIS,
                window: w,
            });
        }
        assert_eq!(
            db.blocked_set(ALICE, CAIS).unwrap(),
            &IntervalSet::of(Interval::lit(10, 30))
        );
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn restriction_fragments_entry_windows() {
        let mut auths = AuthsByLocation::new();
        auths.insert(CAIS, vec![auth(CAIS, (0, 100), (0, 150))]);
        let mut db = ProhibitionDb::new();
        db.insert(Prohibition {
            subject: ALICE,
            location: CAIS,
            window: Interval::lit(40, 60),
        });
        let restricted = restrict_authorizations(&auths, ALICE, &db);
        let list = &restricted[&CAIS];
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].entry_window(), Interval::lit(0, 39));
        assert_eq!(list[1].entry_window(), Interval::lit(61, 100));
        // Exit clamped to the late fragment's start.
        assert_eq!(list[1].exit_window(), Interval::lit(61, 150));
        assert_eq!(list[0].exit_window(), Interval::lit(0, 150));
    }

    #[test]
    fn full_block_removes_the_authorization() {
        let mut auths = AuthsByLocation::new();
        auths.insert(CAIS, vec![auth(CAIS, (10, 20), (10, 30))]);
        let mut db = ProhibitionDb::new();
        db.insert(Prohibition {
            subject: ALICE,
            location: CAIS,
            window: Interval::lit(0, 50),
        });
        let restricted = restrict_authorizations(&auths, ALICE, &db);
        assert!(restricted.is_empty());
    }

    #[test]
    fn other_subjects_unaffected() {
        let mut auths = AuthsByLocation::new();
        auths.insert(CAIS, vec![auth(CAIS, (0, 100), (0, 150))]);
        let mut db = ProhibitionDb::new();
        db.insert(Prohibition {
            subject: SubjectId(7),
            location: CAIS,
            window: Interval::lit(0, 200),
        });
        let restricted = restrict_authorizations(&auths, ALICE, &db);
        assert_eq!(restricted[&CAIS], auths[&CAIS]);
    }

    #[test]
    fn lockdown_makes_locations_inaccessible_via_algorithm1() {
        // Fig. 4 with open windows; then a lockdown on D's only window to B
        // and the direct A–B hop — wait, the cycle gives two ways around, so
        // block B entirely: C must become unreachable through B but stays
        // reachable through D.
        let f = fig4_cycle();
        let g = EffectiveGraph::build(&f.model);
        let mut auths = AuthsByLocation::new();
        for l in [f.a, f.b, f.c, f.d] {
            auths.insert(l, vec![auth(l, (0, 1000), (0, 1000))]);
        }
        let mut db = ProhibitionDb::new();
        db.insert(Prohibition {
            subject: ALICE,
            location: f.b,
            window: Interval::lit(0, 1000),
        });
        let restricted = restrict_authorizations(&auths, ALICE, &db);
        let report = find_inaccessible(&g, &restricted);
        // B is locked down; C and D still reachable the other way round.
        assert_eq!(report.inaccessible, vec![f.b]);
        // Locking D too cuts the ring: C unreachable.
        db.insert(Prohibition {
            subject: ALICE,
            location: f.d,
            window: Interval::lit(0, 1000),
        });
        let restricted = restrict_authorizations(&auths, ALICE, &db);
        let report = find_inaccessible(&g, &restricted);
        assert_eq!(report.inaccessible, vec![f.b, f.c, f.d]);
    }
}
