//! Temporal route planning: *when can the subject actually get there?*
//!
//! §6 closes with the observation that the authorization database supports
//! "an interesting range of queries"; the natural operational one is the
//! earliest authorized visit. [`earliest_visit`] answers it with a
//! label-correcting Dijkstra over `(location, authorization)` states:
//!
//! * entering location `l` at time `t` under authorization `a` requires
//!   `t ∈ [tis_a, tie_a]`;
//! * continuing to a neighbor `m` under authorization `b` is possible at
//!   the earliest instant `d = max(t, tos_a, tis_b)` provided
//!   `d ≤ min(toe_a, tie_b)` (leave `l` inside `a`'s exit window, arrive
//!   inside `b`'s entry window);
//! * per `(location, authorization)` the *earliest* entry time dominates:
//!   entering earlier can only widen the reachable departure window.
//!
//! The planner and Algorithm 1 are independent algorithms over the same
//! semantics, and they agree exactly: a location has an itinerary from
//! `t₀ = 0` iff Algorithm 1 reports it accessible. The property tests
//! exploit that as a differential oracle.

use crate::inaccessible::AuthsByLocation;
use crate::model::Authorization;
use ltam_graph::{EffectiveGraph, LocationId};
use ltam_time::Time;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// One hop of a planned itinerary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItineraryStep {
    /// The location entered.
    pub location: LocationId,
    /// When the subject enters it.
    pub enter_at: Time,
}

/// A feasible timed walk from an entry location to the target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Itinerary {
    /// Entry time into the final location (the query's answer).
    pub arrival: Time,
    /// The walk, entry location first.
    pub steps: Vec<ItineraryStep>,
}

impl Itinerary {
    /// The planned route as bare locations.
    pub fn route(&self) -> Vec<LocationId> {
        self.steps.iter().map(|s| s.location).collect()
    }
}

/// State key: which authorization admitted the subject into the location.
type StateKey = (LocationId, usize);

/// Find the earliest time ≥ `from` at which `target` can be entered via an
/// authorized walk starting outside the infrastructure (i.e. through the
/// graph's global entry locations). Returns the witness itinerary.
pub fn earliest_visit(
    graph: &EffectiveGraph,
    auths: &AuthsByLocation,
    target: LocationId,
    from: Time,
) -> Option<Itinerary> {
    const EMPTY: &[Authorization] = &[];
    let auths_of =
        |l: LocationId| -> &[Authorization] { auths.get(&l).map(Vec::as_slice).unwrap_or(EMPTY) };

    let mut best: HashMap<StateKey, Time> = HashMap::new();
    let mut parent: HashMap<StateKey, StateKey> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(Time, LocationId, usize)>> = BinaryHeap::new();

    for &le in graph.global_entries() {
        for (k, a) in auths_of(le).iter().enumerate() {
            let t = from.max(a.entry_window().start());
            if a.entry_window().end().admits(t) {
                let key = (le, k);
                if best.get(&key).is_none_or(|&prev| t < prev) {
                    best.insert(key, t);
                    heap.push(Reverse((t, le, k)));
                }
            }
        }
    }

    let mut target_state: Option<StateKey> = None;
    while let Some(Reverse((t, l, k))) = heap.pop() {
        if best.get(&(l, k)) != Some(&t) {
            continue; // stale heap entry
        }
        if l == target {
            target_state = Some((l, k));
            break; // earliest-first: first pop of the target is optimal
        }
        let a = auths_of(l)[k];
        for &m in graph.neighbors(l) {
            for (j, b) in auths_of(m).iter().enumerate() {
                // Leave l inside a's exit window, arrive inside b's entry
                // window, never before the current time.
                let d = t.max(a.exit_window().start()).max(b.entry_window().start());
                if !a.exit_window().end().admits(d) || !b.entry_window().end().admits(d) {
                    continue;
                }
                let key = (m, j);
                if best.get(&key).is_none_or(|&prev| d < prev) {
                    best.insert(key, d);
                    parent.insert(key, (l, k));
                    heap.push(Reverse((d, m, j)));
                }
            }
        }
    }

    let end = target_state?;
    // Backtrack the witness walk.
    let mut steps = Vec::new();
    let mut cur = end;
    loop {
        steps.push(ItineraryStep {
            location: cur.0,
            enter_at: best[&cur],
        });
        match parent.get(&cur) {
            Some(&p) => cur = p,
            None => break,
        }
    }
    steps.reverse();
    Some(Itinerary {
        arrival: best[&end],
        steps,
    })
}

/// Earliest visit times for *every* location (single multi-target run).
pub fn earliest_visit_all(
    graph: &EffectiveGraph,
    auths: &AuthsByLocation,
    from: Time,
) -> HashMap<LocationId, Time> {
    const EMPTY: &[Authorization] = &[];
    let auths_of =
        |l: LocationId| -> &[Authorization] { auths.get(&l).map(Vec::as_slice).unwrap_or(EMPTY) };

    let mut best: HashMap<StateKey, Time> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(Time, LocationId, usize)>> = BinaryHeap::new();
    for &le in graph.global_entries() {
        for (k, a) in auths_of(le).iter().enumerate() {
            let t = from.max(a.entry_window().start());
            if a.entry_window().end().admits(t) {
                best.insert((le, k), t);
                heap.push(Reverse((t, le, k)));
            }
        }
    }
    let mut arrival: HashMap<LocationId, Time> = HashMap::new();
    while let Some(Reverse((t, l, k))) = heap.pop() {
        if best.get(&(l, k)) != Some(&t) {
            continue;
        }
        arrival.entry(l).or_insert(t);
        let a = auths_of(l)[k];
        for &m in graph.neighbors(l) {
            for (j, b) in auths_of(m).iter().enumerate() {
                let d = t.max(a.exit_window().start()).max(b.entry_window().start());
                if !a.exit_window().end().admits(d) || !b.entry_window().end().admits(d) {
                    continue;
                }
                let key = (m, j);
                if best.get(&key).is_none_or(|&prev| d < prev) {
                    best.insert(key, d);
                    heap.push(Reverse((d, m, j)));
                }
            }
        }
    }
    arrival
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inaccessible::find_inaccessible;
    use crate::model::EntryLimit;
    use crate::subject::SubjectId;
    use ltam_graph::examples::fig4_cycle;
    use ltam_time::Interval;

    const ALICE: SubjectId = SubjectId(0);

    fn auth(l: LocationId, e: (u64, u64), x: (u64, u64)) -> Authorization {
        Authorization::new(
            Interval::lit(e.0, e.1),
            Interval::lit(x.0, x.1),
            ALICE,
            l,
            EntryLimit::Finite(1),
        )
        .unwrap()
    }

    fn table1() -> (ltam_graph::examples::Fig4, AuthsByLocation) {
        let f = fig4_cycle();
        let mut m = AuthsByLocation::new();
        m.insert(f.a, vec![auth(f.a, (2, 35), (20, 50))]);
        m.insert(f.b, vec![auth(f.b, (40, 60), (55, 80))]);
        m.insert(f.c, vec![auth(f.c, (38, 45), (70, 90))]);
        m.insert(f.d, vec![auth(f.d, (5, 25), (10, 30))]);
        (f, m)
    }

    #[test]
    fn fig4_earliest_times_match_hand_computation() {
        let (f, auths) = table1();
        let g = EffectiveGraph::build(&f.model);
        // A: enter at max(0, 2) = 2.
        let a = earliest_visit(&g, &auths, f.a, Time(0)).unwrap();
        assert_eq!(a.arrival, Time(2));
        assert_eq!(a.route(), vec![f.a]);
        // B: leave A no earlier than tos=20, B's window opens at 40 -> 40.
        let b = earliest_visit(&g, &auths, f.b, Time(0)).unwrap();
        assert_eq!(b.arrival, Time(40));
        assert_eq!(b.route(), vec![f.a, f.b]);
        // D: leave A at max(2,20,5)=20, inside D's entry [5,25] -> 20.
        let d = earliest_visit(&g, &auths, f.d, Time(0)).unwrap();
        assert_eq!(d.arrival, Time(20));
        assert_eq!(d.route(), vec![f.a, f.d]);
        // C is inaccessible (Table 2): no itinerary.
        assert!(earliest_visit(&g, &auths, f.c, Time(0)).is_none());
    }

    #[test]
    fn later_start_time_shifts_feasibility() {
        let (f, auths) = table1();
        let g = EffectiveGraph::build(&f.model);
        // Starting after A's entry window closes: nothing reachable.
        assert!(earliest_visit(&g, &auths, f.a, Time(36)).is_none());
        assert!(earliest_visit(&g, &auths, f.b, Time(36)).is_none());
        // Starting at 30 still admits A (window to 35), then B at 40.
        let b = earliest_visit(&g, &auths, f.b, Time(30)).unwrap();
        assert_eq!(b.arrival, Time(40));
    }

    #[test]
    fn chooses_later_authorization_when_it_reaches_farther() {
        // Single-label earliest-arrival would fail here: the early
        // authorization on the middle room cannot reach the far room, the
        // late one can.
        let mut model = ltam_graph::LocationModel::new("G");
        let e = model.add_primitive(model.root(), "e").unwrap();
        let mid = model.add_primitive(model.root(), "mid").unwrap();
        let far = model.add_primitive(model.root(), "far").unwrap();
        model.add_edge(e, mid).unwrap();
        model.add_edge(mid, far).unwrap();
        model.set_entry(e).unwrap();
        let g = EffectiveGraph::build(&model);
        let mut auths = AuthsByLocation::new();
        auths.insert(e, vec![auth(e, (0, 100), (0, 100))]);
        auths.insert(
            mid,
            vec![
                auth(mid, (0, 5), (0, 5)),      // early, dead end
                auth(mid, (50, 60), (50, 100)), // late, reaches far
            ],
        );
        auths.insert(far, vec![auth(far, (90, 95), (90, 120))]);
        let it = earliest_visit(&g, &auths, far, Time(0)).unwrap();
        assert_eq!(it.arrival, Time(90));
        assert_eq!(it.route(), vec![e, mid, far]);
        // And mid itself is still reported at its true earliest (t=0).
        assert_eq!(
            earliest_visit(&g, &auths, mid, Time(0)).unwrap().arrival,
            Time(0)
        );
    }

    #[test]
    fn planner_agrees_with_algorithm1_on_fig4() {
        let (f, auths) = table1();
        let g = EffectiveGraph::build(&f.model);
        let report = find_inaccessible(&g, &auths);
        for l in g.locations() {
            let reachable = earliest_visit(&g, &auths, l, Time(0)).is_some();
            assert_eq!(
                reachable,
                !report.is_inaccessible(l),
                "planner and Algorithm 1 disagree at {l}"
            );
        }
    }

    #[test]
    fn itinerary_times_are_monotone_and_feasible() {
        let (f, auths) = table1();
        let g = EffectiveGraph::build(&f.model);
        let it = earliest_visit(&g, &auths, f.b, Time(0)).unwrap();
        let mut prev = Time::ZERO;
        for step in &it.steps {
            assert!(step.enter_at >= prev);
            prev = step.enter_at;
            let ok = auths[&step.location]
                .iter()
                .any(|a| a.admits_entry_at(step.enter_at));
            assert!(
                ok,
                "entry at {} not admitted at {}",
                step.location, step.enter_at
            );
        }
    }

    #[test]
    fn earliest_visit_all_matches_individual_queries() {
        let (f, auths) = table1();
        let g = EffectiveGraph::build(&f.model);
        let all = earliest_visit_all(&g, &auths, Time(0));
        for l in g.locations() {
            let single = earliest_visit(&g, &auths, l, Time(0)).map(|i| i.arrival);
            assert_eq!(all.get(&l).copied(), single, "mismatch at {l}");
        }
        assert!(!all.contains_key(&f.c));
    }

    #[test]
    fn empty_auths_mean_no_itinerary() {
        let f = fig4_cycle();
        let g = EffectiveGraph::build(&f.model);
        let auths = AuthsByLocation::new();
        assert!(earliest_visit(&g, &auths, f.a, Time(0)).is_none());
    }
}
