//! Entry-count accounting for Definition 7.
//!
//! An access request is authorized only if the subject "has entered `l`
//! during `[tis, tie]` for less than `n` times". The ledger counts entries
//! per authorization; the enforcement engine records one entry whenever a
//! grant is actually used to enter a location.

use crate::db::AuthId;
use crate::model::Authorization;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-authorization entry counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UsageLedger {
    counts: HashMap<AuthId, u32>,
}

impl UsageLedger {
    /// A ledger with no recorded entries.
    pub fn new() -> UsageLedger {
        UsageLedger::default()
    }

    /// Entries recorded against `id`.
    pub fn used(&self, id: AuthId) -> u32 {
        self.counts.get(&id).copied().unwrap_or(0)
    }

    /// Record one entry against `id`; returns the new count.
    pub fn record_entry(&mut self, id: AuthId) -> u32 {
        let c = self.counts.entry(id).or_insert(0);
        *c = c.saturating_add(1);
        *c
    }

    /// True if `auth`'s limit still admits another entry under this ledger.
    pub fn admits(&self, id: AuthId, auth: &Authorization) -> bool {
        auth.limit().admits(self.used(id))
    }

    /// Remaining entries for `auth`, `None` if unbounded.
    pub fn remaining(&self, id: AuthId, auth: &Authorization) -> Option<u32> {
        match auth.limit() {
            crate::model::EntryLimit::Finite(n) => Some(n.saturating_sub(self.used(id))),
            crate::model::EntryLimit::Unbounded => None,
        }
    }

    /// Forget counters for a revoked authorization.
    pub fn clear(&mut self, id: AuthId) {
        self.counts.remove(&id);
    }

    /// Iterate over all non-zero counters, in no particular order
    /// (persistence and shard-redistribution support).
    pub fn counts(&self) -> impl Iterator<Item = (AuthId, u32)> + '_ {
        self.counts.iter().map(|(&id, &c)| (id, c))
    }

    /// Overwrite the counter for `id` (persistence import; a zero count
    /// removes the entry so restored ledgers compare equal to originals).
    pub fn restore_count(&mut self, id: AuthId, count: u32) {
        if count == 0 {
            self.counts.remove(&id);
        } else {
            self.counts.insert(id, count);
        }
    }

    /// Total entries recorded across all authorizations.
    pub fn total_entries(&self) -> u64 {
        self.counts.values().map(|&c| c as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EntryLimit;
    use crate::subject::SubjectId;
    use ltam_graph::LocationId;
    use ltam_time::Interval;

    fn one_shot() -> Authorization {
        Authorization::new(
            Interval::lit(5, 35),
            Interval::lit(20, 100),
            SubjectId(1),
            LocationId(2),
            EntryLimit::Finite(1),
        )
        .unwrap()
    }

    #[test]
    fn counting_and_admission() {
        // §5 scenario: Bob has one entry to CHIPES; after using it, a second
        // request is not authorized.
        let mut ledger = UsageLedger::new();
        let id = AuthId(0);
        let auth = one_shot();
        assert!(ledger.admits(id, &auth));
        assert_eq!(ledger.remaining(id, &auth), Some(1));
        assert_eq!(ledger.record_entry(id), 1);
        assert!(!ledger.admits(id, &auth));
        assert_eq!(ledger.remaining(id, &auth), Some(0));
        assert_eq!(ledger.used(id), 1);
    }

    #[test]
    fn unbounded_never_exhausts() {
        let auth = Authorization::new(
            Interval::lit(0, 10),
            Interval::lit(0, 10),
            SubjectId(1),
            LocationId(2),
            EntryLimit::Unbounded,
        )
        .unwrap();
        let mut ledger = UsageLedger::new();
        for _ in 0..100 {
            ledger.record_entry(AuthId(3));
        }
        assert!(ledger.admits(AuthId(3), &auth));
        assert_eq!(ledger.remaining(AuthId(3), &auth), None);
        assert_eq!(ledger.total_entries(), 100);
    }

    #[test]
    fn clear_resets_counter() {
        let mut ledger = UsageLedger::new();
        ledger.record_entry(AuthId(9));
        ledger.clear(AuthId(9));
        assert_eq!(ledger.used(AuthId(9)), 0);
    }

    #[test]
    fn counts_and_restore_round_trip() {
        let mut ledger = UsageLedger::new();
        ledger.record_entry(AuthId(1));
        ledger.record_entry(AuthId(1));
        ledger.record_entry(AuthId(7));
        let mut restored = UsageLedger::new();
        for (id, c) in ledger.counts() {
            restored.restore_count(id, c);
        }
        restored.restore_count(AuthId(9), 0); // zero counts leave no entry
        assert_eq!(restored.used(AuthId(1)), 2);
        assert_eq!(restored.used(AuthId(7)), 1);
        assert_eq!(restored.total_entries(), ledger.total_entries());
        assert_eq!(restored.counts().count(), 2);
    }
}
