//! Recurring authorizations from periodic time expressions.
//!
//! Security policy is usually periodic — "staff may enter the lab on
//! weekdays, 9 to 17" — while Definition 4 authorizations are one-shot
//! windows. [`expand_recurring`] bridges the two: a [`Periodic`] expression
//! expands into one concrete authorization per occurrence within a planning
//! horizon, each with an exit window stretched by a configurable slack.
//! (TAM, which LTAM's temporal model follows, handles recurrence the same
//! way: periodic expressions denote sets of plain intervals.)

use crate::model::{AuthError, Authorization, EntryLimit};
use crate::subject::SubjectId;
use ltam_graph::LocationId;
use ltam_time::{Bound, Interval, Periodic};
use serde::{Deserialize, Serialize};

/// A recurring grant: the policy form before expansion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecurringAuthorization {
    /// The subject.
    pub subject: SubjectId,
    /// The location.
    pub location: LocationId,
    /// When entries are allowed, periodically.
    pub pattern: Periodic,
    /// Extra chronons allowed for leaving after each window closes.
    pub exit_slack: u64,
    /// Entry limit per occurrence.
    pub limit: EntryLimit,
}

/// Errors from expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecurringError {
    /// The horizon must be bounded (an unbounded horizon would expand to
    /// infinitely many authorizations).
    UnboundedHorizon,
    /// An occurrence failed Definition 4 validation (cannot happen for
    /// well-formed slack values; surfaced defensively).
    Invalid(AuthError),
}

impl std::fmt::Display for RecurringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecurringError::UnboundedHorizon => {
                write!(f, "recurring expansion requires a bounded horizon")
            }
            RecurringError::Invalid(e) => write!(f, "invalid occurrence: {e}"),
        }
    }
}

impl std::error::Error for RecurringError {}

/// Expand every occurrence of the pattern within `horizon` into a concrete
/// [`Authorization`]: entry window = the occurrence, exit window = the
/// occurrence stretched by `exit_slack` at the end.
pub fn expand_recurring(
    recurring: &RecurringAuthorization,
    horizon: Interval,
) -> Result<Vec<Authorization>, RecurringError> {
    let occurrences = recurring
        .pattern
        .expand(horizon)
        .ok_or(RecurringError::UnboundedHorizon)?;
    let mut out = Vec::with_capacity(occurrences.len());
    for window in occurrences.iter() {
        let exit_end = match window.end() {
            Bound::At(e) => Bound::At(e.saturating_add(recurring.exit_slack)),
            Bound::Unbounded => Bound::Unbounded,
        };
        let exit = Interval::new(window.start(), exit_end).expect("stretched window is non-empty");
        out.push(
            Authorization::new(
                window,
                exit,
                recurring.subject,
                recurring.location,
                recurring.limit,
            )
            .map_err(RecurringError::Invalid)?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltam_time::Time;

    const ALICE: SubjectId = SubjectId(0);
    const LAB: LocationId = LocationId(3);

    fn business_hours() -> RecurringAuthorization {
        RecurringAuthorization {
            subject: ALICE,
            location: LAB,
            pattern: Periodic::new(Time(0), 24, [(9, 8)]).unwrap(),
            exit_slack: 2,
            limit: EntryLimit::Finite(1),
        }
    }

    #[test]
    fn expands_one_authorization_per_day() {
        let auths = expand_recurring(&business_hours(), Interval::lit(0, 72)).unwrap();
        assert_eq!(auths.len(), 3);
        assert_eq!(auths[0].entry_window(), Interval::lit(9, 16));
        assert_eq!(auths[0].exit_window(), Interval::lit(9, 18)); // +2 slack
        assert_eq!(auths[1].entry_window(), Interval::lit(33, 40));
        assert_eq!(auths[2].entry_window(), Interval::lit(57, 64));
        assert!(auths.iter().all(|a| a.limit() == EntryLimit::Finite(1)));
    }

    #[test]
    fn horizon_clips_partial_occurrences() {
        let auths = expand_recurring(&business_hours(), Interval::lit(10, 35)).unwrap();
        assert_eq!(auths.len(), 2);
        assert_eq!(auths[0].entry_window(), Interval::lit(10, 16));
        assert_eq!(auths[1].entry_window(), Interval::lit(33, 35));
    }

    #[test]
    fn unbounded_horizon_is_rejected() {
        assert_eq!(
            expand_recurring(&business_hours(), Interval::from_start(0u64)).unwrap_err(),
            RecurringError::UnboundedHorizon
        );
    }

    #[test]
    fn occurrences_satisfy_definition4() {
        let auths = expand_recurring(&business_hours(), Interval::lit(0, 240)).unwrap();
        for a in &auths {
            assert!(a.exit_window().start() >= a.entry_window().start());
            assert!(a.exit_window().end() >= a.entry_window().end());
        }
    }

    #[test]
    fn zero_slack_means_exit_equals_entry_window() {
        let mut r = business_hours();
        r.exit_slack = 0;
        let auths = expand_recurring(&r, Interval::lit(0, 24)).unwrap();
        assert_eq!(auths[0].entry_window(), auths[0].exit_window());
    }
}
