//! A minimal TAM-style temporal authorization baseline.
//!
//! §2 positions LTAM against Bertino, Bettini and Samarati's *temporal
//! authorization model* (TAM): "each authorization for a user to access an
//! object is augmented with a temporal interval of validity". TAM has no
//! notion of location graphs, routes, entry counts, or exit windows.
//!
//! This module implements the TAM core — signed (positive/negative)
//! temporal authorizations over opaque objects with denial-takes-precedence
//! evaluation — as the comparison baseline: benchmarks and examples use it
//! to quantify what LTAM's location-temporal semantics add (tailgating and
//! overstay detection, route-dependent accessibility).

use crate::subject::SubjectId;
use ltam_time::{Interval, Time};
use serde::{Deserialize, Serialize};

/// Authorization polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// Grants access during the window.
    Positive,
    /// Denies access during the window, overriding grants.
    Negative,
}

/// A TAM authorization: `(subject, object, window, sign)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TamAuthorization {
    /// The subject.
    pub subject: SubjectId,
    /// The protected object (opaque name; TAM has no object structure).
    pub object: String,
    /// Validity interval.
    pub window: Interval,
    /// Grant or deny.
    pub sign: Sign,
}

/// A flat store of TAM authorizations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TamDb {
    auths: Vec<TamAuthorization>,
}

impl TamDb {
    /// An empty store.
    pub fn new() -> TamDb {
        TamDb::default()
    }

    /// Add an authorization.
    pub fn insert(&mut self, auth: TamAuthorization) {
        self.auths.push(auth);
    }

    /// Number of stored authorizations.
    pub fn len(&self) -> usize {
        self.auths.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.auths.is_empty()
    }

    /// TAM access check at time `t`: some positive authorization covers `t`
    /// and no negative authorization does (denials take precedence).
    pub fn check(&self, subject: SubjectId, object: &str, t: Time) -> bool {
        let mut granted = false;
        for a in &self.auths {
            if a.subject != subject || a.object != object || !a.window.contains(t) {
                continue;
            }
            match a.sign {
                Sign::Negative => return false,
                Sign::Positive => granted = true,
            }
        }
        granted
    }

    /// The chronons during which access is granted within `domain`
    /// (positive windows minus negative windows).
    pub fn granted_set(
        &self,
        subject: SubjectId,
        object: &str,
        domain: Interval,
    ) -> ltam_time::IntervalSet {
        let mut pos = ltam_time::IntervalSet::empty();
        let mut neg = ltam_time::IntervalSet::empty();
        for a in &self.auths {
            if a.subject != subject || a.object != object {
                continue;
            }
            if let Some(w) = a.window.intersect(domain) {
                match a.sign {
                    Sign::Positive => pos.insert(w),
                    Sign::Negative => neg.insert(w),
                }
            }
        }
        pos.subtract(&neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALICE: SubjectId = SubjectId(0);

    fn tam(a: u64, b: u64, sign: Sign) -> TamAuthorization {
        TamAuthorization {
            subject: ALICE,
            object: "file".into(),
            window: Interval::lit(a, b),
            sign,
        }
    }

    #[test]
    fn positive_window_grants() {
        let mut db = TamDb::new();
        db.insert(tam(10, 20, Sign::Positive));
        assert!(db.check(ALICE, "file", Time(10)));
        assert!(db.check(ALICE, "file", Time(20)));
        assert!(!db.check(ALICE, "file", Time(21)));
        assert!(!db.check(ALICE, "other", Time(15)));
        assert!(!db.check(SubjectId(1), "file", Time(15)));
    }

    #[test]
    fn denial_takes_precedence() {
        let mut db = TamDb::new();
        db.insert(tam(0, 100, Sign::Positive));
        db.insert(tam(40, 60, Sign::Negative));
        assert!(db.check(ALICE, "file", Time(39)));
        assert!(!db.check(ALICE, "file", Time(40)));
        assert!(!db.check(ALICE, "file", Time(60)));
        assert!(db.check(ALICE, "file", Time(61)));
    }

    #[test]
    fn granted_set_subtracts_denials() {
        let mut db = TamDb::new();
        db.insert(tam(0, 100, Sign::Positive));
        db.insert(tam(40, 60, Sign::Negative));
        let got = db.granted_set(ALICE, "file", Interval::lit(0, 100));
        let expect: ltam_time::IntervalSet = [Interval::lit(0, 39), Interval::lit(61, 100)]
            .into_iter()
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn granted_set_agrees_with_check() {
        let mut db = TamDb::new();
        db.insert(tam(5, 30, Sign::Positive));
        db.insert(tam(50, 80, Sign::Positive));
        db.insert(tam(25, 55, Sign::Negative));
        let set = db.granted_set(ALICE, "file", Interval::lit(0, 100));
        for t in 0..=100u64 {
            assert_eq!(
                set.contains(Time(t)),
                db.check(ALICE, "file", Time(t)),
                "disagreement at t={t}"
            );
        }
    }
}
