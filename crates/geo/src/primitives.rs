//! Planar geometry primitives: points, rectangles, polygons.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the plane (meters, or any consistent unit).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// An axis-aligned rectangle `[min, max]`, inclusive of its boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

/// Errors from geometry construction.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// `max` must dominate `min` on both axes.
    InvertedRect,
    /// Polygons need at least three vertices.
    TooFewVertices(usize),
    /// Polygon area is (numerically) zero.
    DegeneratePolygon,
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvertedRect => write!(f, "rectangle max must dominate min"),
            GeoError::TooFewVertices(n) => write!(f, "polygon needs ≥3 vertices, got {n}"),
            GeoError::DegeneratePolygon => write!(f, "polygon has zero area"),
        }
    }
}

impl std::error::Error for GeoError {}

impl Rect {
    /// Construct, validating `min ≤ max` on both axes.
    pub fn new(min: Point, max: Point) -> Result<Rect, GeoError> {
        if max.x < min.x || max.y < min.y {
            return Err(GeoError::InvertedRect);
        }
        Ok(Rect { min, max })
    }

    /// `[x0, y0] – [x1, y1]` shorthand; panics on inverted bounds.
    pub fn lit(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1)).expect("literal rect must be ordered")
    }

    /// True if the point lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True if the rectangles share any point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Width × height.
    pub fn area(&self) -> f64 {
        (self.max.x - self.min.x) * (self.max.y - self.min.y)
    }

    /// Geometric center.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }
}

/// A simple polygon given by its vertices in order (either winding).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Construct, validating vertex count and non-zero area.
    pub fn new(vertices: Vec<Point>) -> Result<Polygon, GeoError> {
        if vertices.len() < 3 {
            return Err(GeoError::TooFewVertices(vertices.len()));
        }
        let p = Polygon { vertices };
        if p.area().abs() < 1e-12 {
            return Err(GeoError::DegeneratePolygon);
        }
        Ok(p)
    }

    /// The vertices in order.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Signed shoelace area (positive for counter-clockwise winding).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }

    /// Absolute area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        let mut min = self.vertices[0];
        let mut max = self.vertices[0];
        for v in &self.vertices {
            min.x = min.x.min(v.x);
            min.y = min.y.min(v.y);
            max.x = max.x.max(v.x);
            max.y = max.y.max(v.y);
        }
        Rect { min, max }
    }

    /// Point-in-polygon via ray casting; boundary points count as inside
    /// (a reading on a wall maps to the room, not to nowhere).
    pub fn contains(&self, p: Point) -> bool {
        let n = self.vertices.len();
        // Boundary check first: distance from p to each edge segment.
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if point_on_segment(p, a, b) {
                return true;
            }
        }
        let mut inside = false;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if (a.y > p.y) != (b.y > p.y) {
                let x = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x {
                    inside = !inside;
                }
            }
        }
        inside
    }
}

impl From<Rect> for Polygon {
    fn from(r: Rect) -> Polygon {
        Polygon {
            vertices: vec![
                r.min,
                Point::new(r.max.x, r.min.y),
                r.max,
                Point::new(r.min.x, r.max.y),
            ],
        }
    }
}

fn point_on_segment(p: Point, a: Point, b: Point) -> bool {
    const EPS: f64 = 1e-9;
    let cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
    if cross.abs() > EPS * (1.0 + a.distance(b)) {
        return false;
    }
    p.x >= a.x.min(b.x) - EPS
        && p.x <= a.x.max(b.x) + EPS
        && p.y >= a.y.min(b.y) - EPS
        && p.y <= a.y.max(b.y) + EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_validation_and_queries() {
        assert!(Rect::new(Point::new(1.0, 1.0), Point::new(0.0, 2.0)).is_err());
        let r = Rect::lit(0.0, 0.0, 10.0, 5.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 5.0)));
        assert!(!r.contains(Point::new(10.1, 5.0)));
        assert_eq!(r.area(), 50.0);
        assert_eq!(r.center(), Point::new(5.0, 2.5));
    }

    #[test]
    fn rect_intersection_and_union() {
        let a = Rect::lit(0.0, 0.0, 5.0, 5.0);
        let b = Rect::lit(4.0, 4.0, 8.0, 8.0);
        let c = Rect::lit(6.0, 0.0, 9.0, 3.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.union(&c), Rect::lit(0.0, 0.0, 9.0, 5.0));
    }

    #[test]
    fn polygon_validation() {
        assert_eq!(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).unwrap_err(),
            GeoError::TooFewVertices(2)
        );
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(2.0, 2.0),
            ])
            .unwrap_err(),
            GeoError::DegeneratePolygon
        );
    }

    #[test]
    fn polygon_area_and_bbox() {
        let p = Polygon::from(Rect::lit(0.0, 0.0, 4.0, 3.0));
        assert!((p.area() - 12.0).abs() < 1e-12);
        assert_eq!(p.bbox(), Rect::lit(0.0, 0.0, 4.0, 3.0));
    }

    #[test]
    fn point_in_convex_polygon() {
        let p = Polygon::from(Rect::lit(0.0, 0.0, 4.0, 4.0));
        assert!(p.contains(Point::new(2.0, 2.0)));
        assert!(p.contains(Point::new(0.0, 2.0))); // boundary
        assert!(p.contains(Point::new(4.0, 4.0))); // corner
        assert!(!p.contains(Point::new(4.1, 2.0)));
    }

    #[test]
    fn point_in_concave_polygon() {
        // L-shape: big square minus the upper-right quadrant.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap();
        assert!(l.contains(Point::new(1.0, 3.0)));
        assert!(l.contains(Point::new(3.0, 1.0)));
        assert!(!l.contains(Point::new(3.0, 3.0))); // the notch
        assert!(l.contains(Point::new(2.0, 3.0))); // notch boundary
    }

    #[test]
    fn distance_is_euclidean() {
        assert!((Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)) - 5.0).abs() < 1e-12);
    }
}
