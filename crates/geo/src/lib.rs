//! Planar geometry substrate for LTAM's physical location boundaries.
//!
//! LTAM locations "are both semantic and physical. When represented
//! physically, a location is described by its absolute spatial coordinates"
//! (§3.1); the boundaries let the tracking infrastructure place users in
//! primitive locations. This crate provides the geometry ([`Point`],
//! [`Rect`], [`Polygon`]) and the position→location resolution
//! ([`BoundaryMap`], [`GridIndex`]) consumed by the movement simulator's
//! RFID pipeline.

#![warn(missing_docs)]

pub mod boundary;
pub mod primitives;

pub use boundary::{BoundaryMap, GridIndex};
pub use primitives::{GeoError, Point, Polygon, Rect};
