//! Mapping physical positions to primitive locations.
//!
//! §3.1: "the physical location information are used to define the spatial
//! boundaries of location so that it is possible to track users in
//! different locations". A [`BoundaryMap`] associates each primitive
//! location with a boundary polygon; [`BoundaryMap::locate`] resolves a
//! sensed position (an RFID/positioning reading) to the location containing
//! it. A uniform [`GridIndex`] accelerates lookups on large floor plans.

use crate::primitives::{GeoError, Point, Polygon, Rect};
use ltam_graph::LocationId;
use serde::{Deserialize, Serialize};

/// Boundaries of primitive locations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BoundaryMap {
    entries: Vec<(LocationId, Polygon)>,
}

impl BoundaryMap {
    /// An empty map.
    pub fn new() -> BoundaryMap {
        BoundaryMap::default()
    }

    /// Register a polygonal boundary for a location.
    pub fn insert(&mut self, location: LocationId, boundary: Polygon) {
        self.entries.push((location, boundary));
    }

    /// Register a rectangular room.
    pub fn insert_rect(&mut self, location: LocationId, rect: Rect) -> Result<(), GeoError> {
        self.insert(location, Polygon::from(rect));
        Ok(())
    }

    /// Number of registered boundaries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no boundaries are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The boundary of a location, if registered.
    pub fn boundary(&self, location: LocationId) -> Option<&Polygon> {
        self.entries
            .iter()
            .find(|(l, _)| *l == location)
            .map(|(_, p)| p)
    }

    /// All registered `(location, boundary)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LocationId, &Polygon)> {
        self.entries.iter().map(|(l, p)| (*l, p))
    }

    /// Resolve a position to the containing location by linear scan.
    ///
    /// Overlapping boundaries (a room inside a hall) resolve to the
    /// *smallest* containing boundary — the innermost room.
    pub fn locate(&self, p: Point) -> Option<LocationId> {
        self.entries
            .iter()
            .filter(|(_, poly)| poly.contains(p))
            .min_by(|(_, a), (_, b)| a.area().partial_cmp(&b.area()).expect("areas are finite"))
            .map(|(l, _)| *l)
    }

    /// Bounding box of all boundaries, `None` if empty.
    pub fn extent(&self) -> Option<Rect> {
        let mut it = self.entries.iter().map(|(_, p)| p.bbox());
        let first = it.next()?;
        Some(it.fold(first, |acc, r| acc.union(&r)))
    }

    /// Build a [`GridIndex`] over these boundaries.
    pub fn build_index(&self, cells_per_axis: usize) -> GridIndex {
        GridIndex::build(self, cells_per_axis)
    }
}

/// A uniform-grid spatial index over a [`BoundaryMap`].
///
/// Each cell stores the candidate locations whose bounding boxes intersect
/// it; a lookup tests only those candidates' polygons.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridIndex {
    extent: Rect,
    cells_per_axis: usize,
    /// Row-major `cells_per_axis²` buckets of candidate indices into the
    /// boundary map's entries.
    cells: Vec<Vec<u32>>,
    entries: Vec<(LocationId, Polygon)>,
}

impl GridIndex {
    fn build(map: &BoundaryMap, cells_per_axis: usize) -> GridIndex {
        let cells_per_axis = cells_per_axis.max(1);
        let extent = map
            .extent()
            .unwrap_or_else(|| Rect::lit(0.0, 0.0, 1.0, 1.0));
        let mut cells = vec![Vec::new(); cells_per_axis * cells_per_axis];
        let entries: Vec<(LocationId, Polygon)> = map.iter().map(|(l, p)| (l, p.clone())).collect();
        let w = (extent.max.x - extent.min.x).max(f64::MIN_POSITIVE);
        let h = (extent.max.y - extent.min.y).max(f64::MIN_POSITIVE);
        for (k, (_, poly)) in entries.iter().enumerate() {
            let bb = poly.bbox();
            let x0 = (((bb.min.x - extent.min.x) / w) * cells_per_axis as f64).floor() as usize;
            let x1 = (((bb.max.x - extent.min.x) / w) * cells_per_axis as f64).floor() as usize;
            let y0 = (((bb.min.y - extent.min.y) / h) * cells_per_axis as f64).floor() as usize;
            let y1 = (((bb.max.y - extent.min.y) / h) * cells_per_axis as f64).floor() as usize;
            for y in y0..=y1.min(cells_per_axis - 1) {
                for x in x0..=x1.min(cells_per_axis - 1) {
                    cells[y * cells_per_axis + x].push(k as u32);
                }
            }
        }
        GridIndex {
            extent,
            cells_per_axis,
            cells,
            entries,
        }
    }

    /// Resolve a position to the innermost containing location.
    pub fn locate(&self, p: Point) -> Option<LocationId> {
        if !self.extent.contains(p) {
            return None;
        }
        let w = (self.extent.max.x - self.extent.min.x).max(f64::MIN_POSITIVE);
        let h = (self.extent.max.y - self.extent.min.y).max(f64::MIN_POSITIVE);
        let cx = (((p.x - self.extent.min.x) / w) * self.cells_per_axis as f64).floor() as usize;
        let cy = (((p.y - self.extent.min.y) / h) * self.cells_per_axis as f64).floor() as usize;
        let cell = &self.cells[cy.min(self.cells_per_axis - 1) * self.cells_per_axis
            + cx.min(self.cells_per_axis - 1)];
        cell.iter()
            .map(|&k| &self.entries[k as usize])
            .filter(|(_, poly)| poly.contains(p))
            .min_by(|(_, a), (_, b)| a.area().partial_cmp(&b.area()).expect("areas are finite"))
            .map(|(l, _)| *l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three rooms in a row: [0,10]×[0,10] each.
    fn three_rooms() -> BoundaryMap {
        let mut m = BoundaryMap::new();
        for i in 0..3u32 {
            let x0 = 10.0 * i as f64;
            m.insert_rect(LocationId(i), Rect::lit(x0, 0.0, x0 + 10.0, 10.0))
                .unwrap();
        }
        m
    }

    #[test]
    fn locate_resolves_rooms() {
        let m = three_rooms();
        assert_eq!(m.locate(Point::new(5.0, 5.0)), Some(LocationId(0)));
        assert_eq!(m.locate(Point::new(15.0, 5.0)), Some(LocationId(1)));
        assert_eq!(m.locate(Point::new(25.0, 9.9)), Some(LocationId(2)));
        assert_eq!(m.locate(Point::new(35.0, 5.0)), None);
    }

    #[test]
    fn overlapping_boundaries_pick_innermost() {
        let mut m = BoundaryMap::new();
        m.insert_rect(LocationId(0), Rect::lit(0.0, 0.0, 100.0, 100.0))
            .unwrap(); // the hall
        m.insert_rect(LocationId(1), Rect::lit(40.0, 40.0, 60.0, 60.0))
            .unwrap(); // a room inside it
        assert_eq!(m.locate(Point::new(50.0, 50.0)), Some(LocationId(1)));
        assert_eq!(m.locate(Point::new(10.0, 10.0)), Some(LocationId(0)));
    }

    #[test]
    fn extent_covers_all() {
        let m = three_rooms();
        assert_eq!(m.extent(), Some(Rect::lit(0.0, 0.0, 30.0, 10.0)));
        assert_eq!(BoundaryMap::new().extent(), None);
    }

    #[test]
    fn grid_index_agrees_with_linear_scan() {
        let m = three_rooms();
        let idx = m.build_index(8);
        for xi in 0..70 {
            for yi in 0..25 {
                let p = Point::new(xi as f64 * 0.5, yi as f64 * 0.5);
                assert_eq!(idx.locate(p), m.locate(p), "at {p}");
            }
        }
    }

    #[test]
    fn grid_index_outside_extent_is_none() {
        let m = three_rooms();
        let idx = m.build_index(4);
        assert_eq!(idx.locate(Point::new(-1.0, 5.0)), None);
        assert_eq!(idx.locate(Point::new(5.0, 11.0)), None);
    }

    #[test]
    fn boundary_lookup() {
        let m = three_rooms();
        assert!(m.boundary(LocationId(1)).is_some());
        assert!(m.boundary(LocationId(9)).is_none());
        assert_eq!(m.len(), 3);
    }
}
