//! Property-based tests for the geometry substrate.

use ltam_geo::{BoundaryMap, Point, Polygon, Rect};
use ltam_graph::LocationId;
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..100.0, 0.0f64..100.0, 0.1f64..50.0, 0.1f64..50.0)
        .prop_map(|(x, y, w, h)| Rect::lit(x, y, x + w, y + h))
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-20.0f64..170.0, -20.0f64..170.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn polygon_containment_implies_bbox_containment(r in arb_rect(), p in arb_point()) {
        let poly = Polygon::from(r);
        if poly.contains(p) {
            prop_assert!(poly.bbox().contains(p));
        }
    }

    #[test]
    fn rect_and_its_polygon_agree(r in arb_rect(), p in arb_point()) {
        let poly = Polygon::from(r);
        // Interior points agree exactly; boundary handling may differ by
        // floating epsilon, so test strictly-inside and strictly-outside.
        let eps = 1e-7;
        let strictly_inside = p.x > r.min.x + eps
            && p.x < r.max.x - eps
            && p.y > r.min.y + eps
            && p.y < r.max.y - eps;
        let strictly_outside = p.x < r.min.x - eps
            || p.x > r.max.x + eps
            || p.y < r.min.y - eps
            || p.y > r.max.y + eps;
        if strictly_inside {
            prop_assert!(poly.contains(p) && r.contains(p));
        }
        if strictly_outside {
            prop_assert!(!poly.contains(p) && !r.contains(p));
        }
    }

    #[test]
    fn polygon_area_matches_rect_area(r in arb_rect()) {
        let poly = Polygon::from(r);
        prop_assert!((poly.area() - r.area()).abs() < 1e-9 * (1.0 + r.area()));
        prop_assert_eq!(poly.bbox(), r);
    }

    #[test]
    fn rect_union_contains_both(a in arb_rect(), b in arb_rect(), p in arb_point()) {
        let u = a.union(&b);
        if a.contains(p) || b.contains(p) {
            prop_assert!(u.contains(p));
        }
        prop_assert!(u.intersects(&a) && u.intersects(&b));
    }

    #[test]
    fn rect_intersection_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn grid_index_agrees_with_linear_scan(
        rects in prop::collection::vec(arb_rect(), 1..10),
        probes in prop::collection::vec(arb_point(), 1..30),
        cells in 1usize..12,
    ) {
        let mut map = BoundaryMap::new();
        for (k, r) in rects.iter().enumerate() {
            map.insert_rect(LocationId(k as u32), *r).unwrap();
        }
        let idx = map.build_index(cells);
        for p in probes {
            prop_assert_eq!(idx.locate(p), map.locate(p), "divergence at {}", p);
        }
    }

    #[test]
    fn locate_picks_a_containing_boundary(
        rects in prop::collection::vec(arb_rect(), 1..10),
        p in arb_point(),
    ) {
        let mut map = BoundaryMap::new();
        for (k, r) in rects.iter().enumerate() {
            map.insert_rect(LocationId(k as u32), *r).unwrap();
        }
        match map.locate(p) {
            Some(l) => {
                let poly = map.boundary(l).unwrap();
                prop_assert!(poly.contains(p));
                // And it is a minimal-area containing boundary.
                for (other, q) in map.iter() {
                    if q.contains(p) {
                        prop_assert!(poly.area() <= q.area() + 1e-9, "{other} is smaller");
                    }
                }
            }
            None => {
                for (_, poly) in map.iter() {
                    prop_assert!(!poly.contains(p));
                }
            }
        }
    }
}
