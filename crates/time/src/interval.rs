//! Non-empty closed time intervals with an optionally unbounded end.

use crate::point::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The upper endpoint of an [`Interval`]: a finite chronon or `∞`.
///
/// The paper writes unbounded windows as `[t, ∞]` (e.g. a missing exit
/// duration defaults to `[tᵢ₁, ∞]`, Definition 4). The derived ordering
/// places every finite bound before `Unbounded`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Bound {
    /// A finite, inclusive upper endpoint.
    At(Time),
    /// The interval extends forever (`∞`).
    Unbounded,
}

impl Bound {
    /// The finite endpoint, if any.
    #[inline]
    pub fn finite(self) -> Option<Time> {
        match self {
            Bound::At(t) => Some(t),
            Bound::Unbounded => None,
        }
    }

    /// True if the bound is `∞`.
    #[inline]
    pub fn is_unbounded(self) -> bool {
        matches!(self, Bound::Unbounded)
    }

    /// The smaller of two bounds (`∞` is the top element).
    #[inline]
    pub fn min(self, other: Bound) -> Bound {
        std::cmp::min(self, other)
    }

    /// The larger of two bounds.
    #[inline]
    pub fn max(self, other: Bound) -> Bound {
        std::cmp::max(self, other)
    }

    /// True if a time point lies at or below this bound.
    #[inline]
    pub fn admits(self, t: Time) -> bool {
        match self {
            Bound::At(e) => t <= e,
            Bound::Unbounded => true,
        }
    }
}

impl From<Time> for Bound {
    fn from(t: Time) -> Self {
        Bound::At(t)
    }
}

impl From<u64> for Bound {
    fn from(v: u64) -> Self {
        Bound::At(Time(v))
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::At(t) => write!(f, "{t}"),
            Bound::Unbounded => write!(f, "∞"),
        }
    }
}

/// Errors from interval construction and temporal arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeError {
    /// The requested interval `[start, end]` has `end < start` and would be
    /// empty — the paper's `NULL` interval, which is unrepresentable here.
    EmptyInterval {
        /// Requested start.
        start: Time,
        /// Requested (finite) end.
        end: Time,
    },
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::EmptyInterval { start, end } => {
                write!(f, "empty interval: [{start}, {end}] has end < start")
            }
        }
    }
}

impl std::error::Error for TimeError {}

/// A non-empty closed interval of chronons `[start, end]`, `end` possibly `∞`.
///
/// Invariant: `start ≤ end`. Empty intervals cannot be constructed —
/// deserialization re-validates — and operations that could produce one
/// (intersection, clamping) return `Option<Interval>` instead, matching the
/// paper's use of `NULL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "RawInterval", into = "RawInterval")]
pub struct Interval {
    start: Time,
    end: Bound,
}

/// Wire form of [`Interval`]; conversion re-runs validation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct RawInterval {
    start: Time,
    end: Bound,
}

impl TryFrom<RawInterval> for Interval {
    type Error = TimeError;
    fn try_from(raw: RawInterval) -> Result<Interval, TimeError> {
        Interval::new(raw.start, raw.end)
    }
}

impl From<Interval> for RawInterval {
    fn from(i: Interval) -> RawInterval {
        RawInterval {
            start: i.start,
            end: i.end,
        }
    }
}

impl Interval {
    /// `[start, end]`; fails if the interval would be empty.
    pub fn new(start: Time, end: Bound) -> Result<Interval, TimeError> {
        match end {
            Bound::At(e) if e < start => Err(TimeError::EmptyInterval { start, end: e }),
            _ => Ok(Interval { start, end }),
        }
    }

    /// `[a, b]` with finite endpoints; fails if `b < a`.
    pub fn closed(a: impl Into<Time>, b: impl Into<Time>) -> Result<Interval, TimeError> {
        Interval::new(a.into(), Bound::At(b.into()))
    }

    /// `[a, b]` with finite raw endpoints, panicking on `b < a`.
    ///
    /// Intended for literals in tests, examples and the paper-reproduction
    /// harness where the operands are constants from the paper.
    pub fn lit(a: u64, b: u64) -> Interval {
        Interval::closed(a, b).expect("literal interval must satisfy a <= b")
    }

    /// `[start, ∞]`.
    pub fn from_start(start: impl Into<Time>) -> Interval {
        Interval {
            start: start.into(),
            end: Bound::Unbounded,
        }
    }

    /// The single-chronon interval `[t, t]`.
    pub fn point(t: impl Into<Time>) -> Interval {
        let t = t.into();
        Interval {
            start: t,
            end: Bound::At(t),
        }
    }

    /// `[0, ∞]` — the whole timeline, Definition 8's access request duration.
    pub const ALL: Interval = Interval {
        start: Time::ZERO,
        end: Bound::Unbounded,
    };

    /// Inclusive lower endpoint.
    #[inline]
    pub fn start(self) -> Time {
        self.start
    }

    /// Inclusive upper endpoint.
    #[inline]
    pub fn end(self) -> Bound {
        self.end
    }

    /// True if the interval extends to `∞`.
    #[inline]
    pub fn is_unbounded(self) -> bool {
        self.end.is_unbounded()
    }

    /// Number of chronons in the interval (its *size*, §3.1), or `None` if
    /// unbounded.
    pub fn size(self) -> Option<u64> {
        match self.end {
            Bound::At(e) => Some(e.get() - self.start.get() + 1),
            Bound::Unbounded => None,
        }
    }

    /// True if `t ∈ [start, end]`.
    #[inline]
    pub fn contains(self, t: Time) -> bool {
        t >= self.start && self.end.admits(t)
    }

    /// True if `other` is entirely inside `self`.
    pub fn contains_interval(self, other: Interval) -> bool {
        other.start >= self.start
            && match (self.end, other.end) {
                (Bound::Unbounded, _) => true,
                (Bound::At(_), Bound::Unbounded) => false,
                (Bound::At(a), Bound::At(b)) => b <= a,
            }
    }

    /// True if the two intervals share at least one chronon.
    pub fn overlaps(self, other: Interval) -> bool {
        self.end.admits(other.start) && other.end.admits(self.start)
    }

    /// True if the intervals are disjoint but consecutive in discrete time
    /// (e.g. `[1,5]` and `[6,9]`), so their union is a single interval.
    pub fn adjacent(self, other: Interval) -> bool {
        let follows = |a: Interval, b: Interval| match a.end {
            Bound::At(e) => e.succ() == b.start && e != Time::MAX,
            Bound::Unbounded => false,
        };
        follows(self, other) || follows(other, self)
    }

    /// Intersection, or `None` if the intervals are disjoint — the paper's
    /// `INTERSECTION` operator returns `NULL` in that case (Definition 5).
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        Interval::new(start, end).ok()
    }

    /// Union of two overlapping or adjacent intervals, `None` if they are
    /// separated (their union would not be a single interval).
    pub fn merge(self, other: Interval) -> Option<Interval> {
        if self.overlaps(other) || self.adjacent(other) {
            Some(Interval {
                start: self.start.min(other.start),
                end: self.end.max(other.end),
            })
        } else {
            None
        }
    }

    /// `[max(start, t), end]`, or `None` if that is empty.
    ///
    /// This is the building block of §6's *grant duration*
    /// `[max(tp, tis), min(tq, tie)]` and *departure duration*
    /// `[max(tp, tos), toe]`.
    pub fn clamp_start(self, t: Time) -> Option<Interval> {
        Interval::new(self.start.max(t), self.end).ok()
    }

    /// `[start, min(end, b)]`, or `None` if that is empty.
    pub fn clamp_end(self, b: Bound) -> Option<Interval> {
        Interval::new(self.start, self.end.min(b)).ok()
    }

    /// Both intervals strictly ordered: every chronon of `self` precedes
    /// every chronon of `other`.
    pub fn strictly_before(self, other: Interval) -> bool {
        match self.end {
            Bound::At(e) => e < other.start,
            Bound::Unbounded => false,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_empty() {
        assert!(Interval::closed(10u64, 5u64).is_err());
        assert!(Interval::closed(5u64, 5u64).is_ok());
        assert_eq!(
            Interval::closed(10u64, 5u64).unwrap_err(),
            TimeError::EmptyInterval {
                start: Time(10),
                end: Time(5)
            }
        );
    }

    #[test]
    fn size_counts_chronons_inclusively() {
        assert_eq!(Interval::lit(5, 40).size(), Some(36));
        assert_eq!(Interval::point(7u64).size(), Some(1));
        assert_eq!(Interval::from_start(3u64).size(), None);
    }

    #[test]
    fn contains_checks_both_endpoints() {
        let i = Interval::lit(5, 40);
        assert!(i.contains(Time(5)));
        assert!(i.contains(Time(40)));
        assert!(!i.contains(Time(4)));
        assert!(!i.contains(Time(41)));
        assert!(Interval::from_start(5u64).contains(Time::MAX));
    }

    #[test]
    fn overlap_and_adjacency() {
        let a = Interval::lit(1, 5);
        let b = Interval::lit(5, 9);
        let c = Interval::lit(6, 9);
        let d = Interval::lit(8, 12);
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert!(a.adjacent(c));
        assert!(c.adjacent(a));
        assert!(!a.adjacent(d));
        assert!(!a.adjacent(a));
    }

    #[test]
    fn intersect_matches_paper_intersection_semantics() {
        // Definition 5: INTERSECTION([t0,t1],[t2,t3]) = [t2,t1] if t2 <= t1.
        let base = Interval::lit(5, 20);
        let op = Interval::lit(10, 30);
        assert_eq!(base.intersect(op), Some(Interval::lit(10, 20)));
        // Disjoint => NULL.
        assert_eq!(Interval::lit(1, 4).intersect(Interval::lit(6, 9)), None);
        // Unbounded operand.
        assert_eq!(
            Interval::from_start(10u64).intersect(Interval::lit(5, 12)),
            Some(Interval::lit(10, 12))
        );
    }

    #[test]
    fn merge_joins_overlapping_and_adjacent() {
        assert_eq!(
            Interval::lit(1, 5).merge(Interval::lit(4, 9)),
            Some(Interval::lit(1, 9))
        );
        assert_eq!(
            Interval::lit(1, 5).merge(Interval::lit(6, 9)),
            Some(Interval::lit(1, 9))
        );
        assert_eq!(Interval::lit(1, 5).merge(Interval::lit(7, 9)), None);
        assert_eq!(
            Interval::lit(1, 5).merge(Interval::from_start(2u64)),
            Some(Interval::from_start(1u64))
        );
    }

    #[test]
    fn grant_duration_building_blocks() {
        // Grant duration of [tp,tq]=[20,50] against entry [40,60]:
        // [max(20,40), min(50,60)] = [40,50] (Table 2, Update B).
        let entry = Interval::lit(40, 60);
        let window = Interval::lit(20, 50);
        let grant = entry.intersect(window);
        assert_eq!(grant, Some(Interval::lit(40, 50)));
        // Departure duration [max(tp,55), 80] = [55,80].
        let exit = Interval::lit(55, 80);
        assert_eq!(exit.clamp_start(Time(20)), Some(Interval::lit(55, 80)));
        assert_eq!(exit.clamp_start(Time(60)), Some(Interval::lit(60, 80)));
        assert_eq!(exit.clamp_start(Time(90)), None);
    }

    #[test]
    fn containment_of_intervals() {
        assert!(Interval::lit(1, 10).contains_interval(Interval::lit(3, 7)));
        assert!(!Interval::lit(1, 10).contains_interval(Interval::lit(3, 11)));
        assert!(Interval::from_start(0u64).contains_interval(Interval::from_start(5u64)));
        assert!(!Interval::lit(1, 10).contains_interval(Interval::from_start(5u64)));
    }

    #[test]
    fn ordering_is_lexicographic_start_then_end() {
        assert!(Interval::lit(1, 5) < Interval::lit(2, 3));
        assert!(Interval::lit(1, 5) < Interval::from_start(1u64));
    }

    #[test]
    fn display_formats_like_the_paper() {
        assert_eq!(Interval::lit(5, 40).to_string(), "[5, 40]");
        assert_eq!(Interval::from_start(5u64).to_string(), "[5, ∞]");
    }

    #[test]
    fn strictly_before_is_a_strict_order() {
        assert!(Interval::lit(1, 4).strictly_before(Interval::lit(5, 9)));
        assert!(!Interval::lit(1, 5).strictly_before(Interval::lit(5, 9)));
        assert!(!Interval::from_start(0u64).strictly_before(Interval::lit(5, 9)));
    }
}
