//! An interval index for the authorization database.
//!
//! Definition 7 asks, for an access request `(t, s, l)`, whether *any*
//! authorization window contains `t`; §6 repeatedly intersects request
//! windows with authorization windows. Both are classic *stabbing* and
//! *overlap* queries. [`IntervalTree`] supports them in `O(log n + k)`
//! using a treap (randomized BST) keyed by interval start and augmented
//! with the maximum end bound of each subtree.
//!
//! The tree is deterministic: priorities come from a SplitMix64 sequence
//! seeded at construction, so identical insertion orders produce identical
//! shapes — keeping benches and the repro harness reproducible without a
//! `rand` dependency.

use crate::interval::{Bound, Interval};
use crate::point::Time;
use serde::{Deserialize, Serialize};

/// Stable handle to an entry in an [`IntervalTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntryId(pub u64);

#[derive(Debug, Clone)]
struct Node<V> {
    interval: Interval,
    id: EntryId,
    value: V,
    priority: u64,
    /// Maximum end bound in this node's subtree (the augmentation).
    max_end: Bound,
    left: Option<usize>,
    right: Option<usize>,
}

/// Deterministic SplitMix64 PRNG for treap priorities.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A treap-based interval tree mapping intervals to values.
///
/// Duplicate intervals are allowed (two authorizations may share a window);
/// each insertion gets a fresh [`EntryId`] used for removal.
///
/// This is the index behind the authorization database's hot path: a
/// Definition 7 check stabs the tree with the request time instead of
/// scanning every window.
///
/// ```
/// use ltam_time::{Interval, IntervalTree, Time};
///
/// let mut tree = IntervalTree::new();
/// tree.insert(Interval::lit(5, 40), "entry window of a1");
/// tree.insert(Interval::lit(20, 100), "exit window of a1");
/// let id = tree.insert(Interval::from_start(Time(50)), "an open-ended window");
///
/// // Stabbing: which windows contain chronon 25?
/// let mut hit: Vec<&&str> = tree.stab(Time(25)).into_iter().map(|(_, v)| v).collect();
/// hit.sort();
/// assert_eq!(hit, [&"entry window of a1", &"exit window of a1"]);
///
/// // Overlap: which windows intersect [90, 200]?
/// assert_eq!(tree.overlapping(Interval::lit(90, 200)).len(), 2);
///
/// // Entries are removable by (interval, id).
/// tree.remove(Interval::from_start(Time(50)), id);
/// assert_eq!(tree.len(), 2);
/// assert!(tree.stab(Time(1_000)).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct IntervalTree<V> {
    nodes: Vec<Node<V>>,
    free: Vec<usize>,
    root: Option<usize>,
    len: usize,
    next_id: u64,
    rng: SplitMix64,
}

impl<V> Default for IntervalTree<V> {
    fn default() -> Self {
        IntervalTree::new()
    }
}

impl<V> IntervalTree<V> {
    /// An empty tree.
    pub fn new() -> IntervalTree<V> {
        IntervalTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: None,
            len: 0,
            next_id: 0,
            rng: SplitMix64(0x5EED_1DEA_CAFE_F00D),
        }
    }

    /// Number of stored intervals.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no intervals are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn max_end_of(&self, idx: Option<usize>) -> Option<Bound> {
        idx.map(|i| self.nodes[i].max_end)
    }

    fn update(&mut self, idx: usize) {
        let mut m = self.nodes[idx].interval.end();
        if let Some(b) = self.max_end_of(self.nodes[idx].left) {
            m = m.max(b);
        }
        if let Some(b) = self.max_end_of(self.nodes[idx].right) {
            m = m.max(b);
        }
        self.nodes[idx].max_end = m;
    }

    fn key(&self, idx: usize) -> (Time, Bound, EntryId) {
        let n = &self.nodes[idx];
        (n.interval.start(), n.interval.end(), n.id)
    }

    /// Split subtree `idx` into (< key, >= key) by the node ordering key.
    fn split(
        &mut self,
        idx: Option<usize>,
        key: &(Time, Bound, EntryId),
    ) -> (Option<usize>, Option<usize>) {
        let Some(i) = idx else {
            return (None, None);
        };
        if self.key(i) < *key {
            let (l, r) = self.split(self.nodes[i].right, key);
            self.nodes[i].right = l;
            self.update(i);
            (Some(i), r)
        } else {
            let (l, r) = self.split(self.nodes[i].left, key);
            self.nodes[i].left = r;
            self.update(i);
            (l, Some(i))
        }
    }

    fn merge(&mut self, a: Option<usize>, b: Option<usize>) -> Option<usize> {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some(l), Some(r)) => {
                if self.nodes[l].priority >= self.nodes[r].priority {
                    let merged = self.merge(self.nodes[l].right, Some(r));
                    self.nodes[l].right = merged;
                    self.update(l);
                    Some(l)
                } else {
                    let merged = self.merge(Some(l), self.nodes[r].left);
                    self.nodes[r].left = merged;
                    self.update(r);
                    Some(r)
                }
            }
        }
    }

    /// Insert an interval with its payload; returns a handle for removal.
    pub fn insert(&mut self, interval: Interval, value: V) -> EntryId {
        let id = EntryId(self.next_id);
        self.next_id += 1;
        let priority = self.rng.next();
        let node = Node {
            interval,
            id,
            value,
            priority,
            max_end: interval.end(),
            left: None,
            right: None,
        };
        let idx = if let Some(slot) = self.free.pop() {
            self.nodes[slot] = node;
            slot
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        let key = self.key(idx);
        let (l, r) = self.split(self.root, &key);
        let left = self.merge(l, Some(idx));
        self.root = self.merge(left, r);
        self.len += 1;
        id
    }

    /// Remove the entry with handle `id` if its interval is known.
    ///
    /// Returns the payload, or `None` if no such entry exists.
    pub fn remove(&mut self, interval: Interval, id: EntryId) -> Option<V>
    where
        V: Clone,
    {
        let key = (interval.start(), interval.end(), id);
        let (l, rest) = self.split(self.root, &key);
        let next_key = (interval.start(), interval.end(), EntryId(id.0 + 1));
        let (target, r) = self.split(rest, &next_key);
        let result = target.map(|idx| {
            self.free.push(idx);
            self.len -= 1;
            self.nodes[idx].value.clone()
        });
        let keep = if result.is_some() { None } else { target };
        let merged = self.merge(l, keep);
        self.root = self.merge(merged, r);
        result
    }

    /// All entries whose interval contains `t` (a stabbing query).
    pub fn stab(&self, t: Time) -> Vec<(Interval, &V)> {
        let mut out = Vec::new();
        self.stab_rec(self.root, t, &mut out);
        out
    }

    fn stab_rec<'a>(&'a self, idx: Option<usize>, t: Time, out: &mut Vec<(Interval, &'a V)>) {
        let Some(i) = idx else { return };
        let n = &self.nodes[i];
        // Prune: nothing in this subtree reaches t.
        if !n.max_end.admits(t) {
            return;
        }
        self.stab_rec(n.left, t, out);
        if n.interval.contains(t) {
            out.push((n.interval, &n.value));
        }
        // Subtree keys to the right all start after n; if they start past t,
        // none can contain it.
        if n.interval.start() <= t {
            self.stab_rec(n.right, t, out);
        }
    }

    /// All entries whose interval overlaps `query`.
    pub fn overlapping(&self, query: Interval) -> Vec<(Interval, &V)> {
        let mut out = Vec::new();
        self.overlap_rec(self.root, query, &mut out);
        out
    }

    fn overlap_rec<'a>(
        &'a self,
        idx: Option<usize>,
        query: Interval,
        out: &mut Vec<(Interval, &'a V)>,
    ) {
        let Some(i) = idx else { return };
        let n = &self.nodes[i];
        if !n.max_end.admits(query.start()) {
            return;
        }
        self.overlap_rec(n.left, query, out);
        if n.interval.overlaps(query) {
            out.push((n.interval, &n.value));
        }
        if query.end().admits(n.interval.start()) {
            self.overlap_rec(n.right, query, out);
        }
    }

    /// Iterate all entries in key order.
    pub fn iter(&self) -> Vec<(Interval, EntryId, &V)> {
        let mut out = Vec::with_capacity(self.len);
        self.collect_rec(self.root, &mut out);
        out
    }

    fn collect_rec<'a>(&'a self, idx: Option<usize>, out: &mut Vec<(Interval, EntryId, &'a V)>) {
        let Some(i) = idx else { return };
        let n = &self.nodes[i];
        self.collect_rec(n.left, out);
        out.push((n.interval, n.id, &n.value));
        self.collect_rec(n.right, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_of(pairs: &[(u64, u64)]) -> IntervalTree<usize> {
        let mut t = IntervalTree::new();
        for (k, &(a, b)) in pairs.iter().enumerate() {
            t.insert(Interval::lit(a, b), k);
        }
        t
    }

    #[test]
    fn stab_finds_all_containing_intervals() {
        let t = tree_of(&[(1, 10), (5, 7), (6, 20), (15, 30), (25, 40)]);
        let mut hit: Vec<usize> = t.stab(Time(6)).into_iter().map(|(_, v)| *v).collect();
        hit.sort_unstable();
        assert_eq!(hit, vec![0, 1, 2]);
        assert!(t.stab(Time(50)).is_empty());
        assert!(t.stab(Time(0)).is_empty());
    }

    #[test]
    fn overlap_query_matches_definition() {
        let t = tree_of(&[(1, 4), (5, 9), (10, 14), (20, 24)]);
        let mut hit: Vec<usize> = t
            .overlapping(Interval::lit(4, 10))
            .into_iter()
            .map(|(_, v)| *v)
            .collect();
        hit.sort_unstable();
        assert_eq!(hit, vec![0, 1, 2]);
    }

    #[test]
    fn unbounded_intervals_always_reachable() {
        let mut t = IntervalTree::new();
        t.insert(Interval::from_start(100u64), "late");
        t.insert(Interval::lit(1, 5), "early");
        let hit: Vec<&&str> = t
            .stab(Time(1_000_000))
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        assert_eq!(hit, vec![&"late"]);
    }

    #[test]
    fn remove_deletes_exactly_one_entry() {
        let mut t = IntervalTree::new();
        let i = Interval::lit(5, 10);
        let a = t.insert(i, "a");
        let b = t.insert(i, "b");
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(i, a), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(i, a), None);
        let hit: Vec<&&str> = t.stab(Time(7)).into_iter().map(|(_, v)| v).collect();
        assert_eq!(hit, vec![&"b"]);
        assert_eq!(t.remove(i, b), Some("b"));
        assert!(t.is_empty());
    }

    #[test]
    fn iter_returns_key_order() {
        let t = tree_of(&[(9, 12), (1, 3), (5, 6)]);
        let starts: Vec<u64> = t.iter().iter().map(|(i, _, _)| i.start().get()).collect();
        assert_eq!(starts, vec![1, 5, 9]);
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut t = IntervalTree::new();
        let i = Interval::lit(0, 1);
        for _ in 0..100 {
            let id = t.insert(i, 0u32);
            assert_eq!(t.remove(i, id), Some(0));
        }
        assert!(t.nodes.len() <= 2, "free list should recycle slots");
    }

    #[test]
    fn large_tree_stab_matches_naive_scan() {
        // Deterministic pseudo-random intervals; compare against linear scan.
        let mut x = 0x1234_5678_u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut tree = IntervalTree::new();
        let mut naive = Vec::new();
        for k in 0..500usize {
            let a = next() % 1000;
            let b = a + next() % 50;
            let iv = Interval::lit(a, b);
            tree.insert(iv, k);
            naive.push((iv, k));
        }
        for q in (0..1050).step_by(7) {
            let mut fast: Vec<usize> = tree.stab(Time(q)).into_iter().map(|(_, v)| *v).collect();
            fast.sort_unstable();
            let mut slow: Vec<usize> = naive
                .iter()
                .filter(|(iv, _)| iv.contains(Time(q)))
                .map(|&(_, k)| k)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow, "stab({q}) diverged from naive scan");
        }
    }
}
