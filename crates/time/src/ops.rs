//! Temporal operators of Definition 5.
//!
//! Authorization rules transform the entry/exit durations of a *base
//! authorization* into durations for *derived authorizations* using four
//! operators: `WHENEVER`, `WHENEVERNOT`, `UNION`, and `INTERSECTION`.
//! All four return an [`IntervalSet`]: `WHENEVERNOT` and `UNION` may produce
//! two intervals, `INTERSECTION` may produce none (the paper's `NULL`).

use crate::interval::Interval;
use crate::point::Time;
use crate::set::IntervalSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A temporal operator applied to a base authorization's duration.
///
/// The binary operators (`UNION`, `INTERSECTION`) carry their second operand,
/// as in the paper's rule `r2: ⟨7: a1, (INTERSECTION([10,30]), …)⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemporalOp {
    /// Unary: returns the base duration unchanged.
    Whenever,
    /// Unary: the complement of the base duration from the rule's validity
    /// time `tr` onwards — `[tr, t0−1]` and `[t1+1, ∞]`.
    WheneverNot,
    /// Binary: the union of the base duration with the operand.
    Union(Interval),
    /// Binary: the intersection of the base duration with the operand;
    /// `NULL` (empty set) if they are disjoint.
    Intersection(Interval),
}

impl TemporalOp {
    /// Apply the operator to `base`, with `tr` the time from which the rule
    /// is valid (used only by `WHENEVERNOT`).
    pub fn apply(self, base: Interval, tr: Time) -> IntervalSet {
        match self {
            TemporalOp::Whenever => IntervalSet::of(base),
            TemporalOp::WheneverNot => {
                IntervalSet::of(base).complement_within(Interval::from_start(tr))
            }
            TemporalOp::Union(operand) => {
                let mut s = IntervalSet::of(base);
                s.insert(operand);
                s
            }
            TemporalOp::Intersection(operand) => match base.intersect(operand) {
                Some(i) => IntervalSet::of(i),
                None => IntervalSet::empty(),
            },
        }
    }

    /// True for `WHENEVER`/`WHENEVERNOT` (no second operand).
    pub fn is_unary(self) -> bool {
        matches!(self, TemporalOp::Whenever | TemporalOp::WheneverNot)
    }
}

impl Default for TemporalOp {
    /// Definition 5: "if any of the rule elements is not specified in a rule,
    /// the default value will be copied from the base authorization" —
    /// i.e. the identity operator.
    fn default() -> Self {
        TemporalOp::Whenever
    }
}

impl fmt::Display for TemporalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalOp::Whenever => write!(f, "WHENEVER"),
            TemporalOp::WheneverNot => write!(f, "WHENEVERNOT"),
            TemporalOp::Union(i) => write!(f, "UNION({i})"),
            TemporalOp::Intersection(i) => write!(f, "INTERSECTION({i})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whenever_is_identity() {
        let base = Interval::lit(5, 20);
        assert_eq!(
            TemporalOp::Whenever.apply(base, Time(7)),
            IntervalSet::of(base)
        );
    }

    #[test]
    fn whenevernot_returns_both_flanks() {
        // Definition 5: on [t0,t1] returns [tr, t0-1] and [t1+1, ∞].
        let base = Interval::lit(10, 20);
        let got = TemporalOp::WheneverNot.apply(base, Time(2));
        let mut expect = IntervalSet::of(Interval::lit(2, 9));
        expect.insert(Interval::from_start(21u64));
        assert_eq!(got, expect);
    }

    #[test]
    fn whenevernot_drops_empty_leading_flank() {
        // tr after t0 - 1: only the tail remains.
        let base = Interval::lit(10, 20);
        let got = TemporalOp::WheneverNot.apply(base, Time(10));
        assert_eq!(got, IntervalSet::of(Interval::from_start(21u64)));
    }

    #[test]
    fn whenevernot_of_unbounded_base_keeps_only_prefix() {
        let base = Interval::from_start(10u64);
        let got = TemporalOp::WheneverNot.apply(base, Time(0));
        assert_eq!(got, IntervalSet::of(Interval::lit(0, 9)));
    }

    #[test]
    fn union_merges_when_overlapping() {
        // Definition 5: UNION([t0,t1],[t2,t3]) = [t0,t3] if t2 <= t1.
        let got = TemporalOp::Union(Interval::lit(15, 30)).apply(Interval::lit(5, 20), Time(0));
        assert_eq!(got, IntervalSet::of(Interval::lit(5, 30)));
    }

    #[test]
    fn union_keeps_two_intervals_when_separated() {
        // ... or [t0,t1] and [t2,t3] if t2 > t1.
        let got = TemporalOp::Union(Interval::lit(30, 40)).apply(Interval::lit(5, 20), Time(0));
        let mut expect = IntervalSet::of(Interval::lit(5, 20));
        expect.insert(Interval::lit(30, 40));
        assert_eq!(expect.len(), 2);
        assert_eq!(got, expect);
    }

    #[test]
    fn intersection_matches_rule_r2_example() {
        // r2 derives entry duration INTERSECTION([5,20],[10,30]) = [10,20].
        let got =
            TemporalOp::Intersection(Interval::lit(10, 30)).apply(Interval::lit(5, 20), Time(7));
        assert_eq!(got, IntervalSet::of(Interval::lit(10, 20)));
    }

    #[test]
    fn intersection_of_disjoint_is_null() {
        let got =
            TemporalOp::Intersection(Interval::lit(25, 30)).apply(Interval::lit(5, 20), Time(0));
        assert!(got.is_empty());
    }

    #[test]
    fn default_is_whenever() {
        assert_eq!(TemporalOp::default(), TemporalOp::Whenever);
    }

    #[test]
    fn display_matches_paper_syntax() {
        assert_eq!(TemporalOp::Whenever.to_string(), "WHENEVER");
        assert_eq!(
            TemporalOp::Intersection(Interval::lit(10, 30)).to_string(),
            "INTERSECTION([10, 30])"
        );
    }
}
