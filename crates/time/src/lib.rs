//! Discrete time substrate for the LTAM authorization model.
//!
//! LTAM (Yu & Lim, SDM/VLDB Workshop 2004, §3.1) adopts the temporal model of
//! Bertino, Bettini and Samarati's TAM: time is a sequence of *chronons* (the
//! smallest indivisible unit of time), a *time interval* is a set of
//! consecutive time units, and authorization windows are closed intervals that
//! may extend to infinity (`[t, ∞]`).
//!
//! This crate provides:
//!
//! * [`Time`] — a chronon-indexed time point,
//! * [`Interval`] — a non-empty closed interval with an optionally unbounded
//!   end ([`Bound`]),
//! * [`IntervalSet`] — a normalized (sorted, disjoint, non-adjacent) set of
//!   intervals, the value domain of Algorithm 1's overall grant/departure
//!   times `T^g` / `T^d`,
//! * [`IntervalTree`] — an augmented search tree indexing intervals for
//!   stabbing and overlap queries (used by the authorization database),
//! * [`TemporalOp`] — the four temporal operators of Definition 5
//!   (`WHENEVER`, `WHENEVERNOT`, `UNION`, `INTERSECTION`),
//! * [`Periodic`] — periodic time expressions (an extension the paper lists
//!   as future work; used to generate recurring authorizations).
//!
//! Empty intervals are unrepresentable: constructors return
//! `Result`/`Option`, mirroring the paper's `NULL` results.

#![warn(missing_docs)]

pub mod index;
pub mod interval;
pub mod ops;
pub mod periodic;
pub mod point;
pub mod set;

pub use index::{EntryId, IntervalTree};
pub use interval::{Bound, Interval, TimeError};
pub use ops::TemporalOp;
pub use periodic::Periodic;
pub use point::Time;
pub use set::IntervalSet;
