//! Periodic time expressions.
//!
//! The paper's future-work section plans "more access constraints" for
//! authorizations; the temporal-authorization literature it builds on
//! (Bertino et al.'s TAM) expresses recurring validity such as *working
//! hours* with periodic expressions. [`Periodic`] provides that extension:
//! a repeating cycle of chronons with one or more open windows per cycle,
//! expandable to a concrete [`IntervalSet`] over any bounded range.

use crate::interval::{Bound, Interval};
use crate::point::Time;
use crate::set::IntervalSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from periodic-expression construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeriodicError {
    /// The cycle length must be at least one chronon.
    ZeroCycle,
    /// A window starts at or beyond the cycle length.
    WindowOutOfCycle {
        /// Offending window offset.
        offset: u64,
        /// Cycle length.
        cycle: u64,
    },
    /// A window has zero length.
    EmptyWindow,
}

impl fmt::Display for PeriodicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeriodicError::ZeroCycle => write!(f, "periodic cycle must be non-zero"),
            PeriodicError::WindowOutOfCycle { offset, cycle } => {
                write!(f, "window offset {offset} outside cycle of length {cycle}")
            }
            PeriodicError::EmptyWindow => write!(f, "periodic window must be non-empty"),
        }
    }
}

impl std::error::Error for PeriodicError {}

/// A repeating pattern of time windows.
///
/// With chronons as hours, "business hours" is
/// `Periodic::new(anchor, 24, [(9, 8)])`: every 24 chronons, a window of
/// length 8 starting 9 chronons into the cycle. Windows may wrap past the
/// end of the cycle (night shifts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Periodic {
    /// Time at which cycle 0 begins.
    anchor: Time,
    /// Cycle length in chronons (> 0).
    cycle: u64,
    /// `(offset, len)` pairs: window of `len` chronons starting `offset`
    /// chronons into each cycle.
    windows: Vec<(u64, u64)>,
}

impl Periodic {
    /// Build a periodic expression; validates cycle and window shapes.
    pub fn new(
        anchor: Time,
        cycle: u64,
        windows: impl IntoIterator<Item = (u64, u64)>,
    ) -> Result<Periodic, PeriodicError> {
        if cycle == 0 {
            return Err(PeriodicError::ZeroCycle);
        }
        let windows: Vec<(u64, u64)> = windows.into_iter().collect();
        for &(offset, len) in &windows {
            if offset >= cycle {
                return Err(PeriodicError::WindowOutOfCycle { offset, cycle });
            }
            if len == 0 {
                return Err(PeriodicError::EmptyWindow);
            }
        }
        Ok(Periodic {
            anchor,
            cycle,
            windows,
        })
    }

    /// Cycle length in chronons.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// True if `t` falls inside one of the repeating windows.
    pub fn contains(&self, t: Time) -> bool {
        let Some(since) = t.checked_since(self.anchor) else {
            return false;
        };
        let phase = since % self.cycle;
        self.windows.iter().any(|&(offset, len)| {
            if offset + len <= self.cycle {
                phase >= offset && phase < offset + len
            } else {
                // Wrapping window (e.g. 22:00–02:00 with cycle 24). The
                // wrapped tail belongs to the *previous* cycle's window, so
                // it only exists once a full cycle has elapsed.
                let wrap = (offset + len) - self.cycle;
                phase >= offset || (phase < wrap && since >= self.cycle)
            }
        })
    }

    /// Expand to the concrete intervals intersecting `range`.
    ///
    /// `range` must be bounded; expansion of `[t, ∞]` would be infinite.
    /// Returns `None` if `range` is unbounded.
    pub fn expand(&self, range: Interval) -> Option<IntervalSet> {
        let Bound::At(range_end) = range.end() else {
            return None;
        };
        let mut out = IntervalSet::empty();
        let lo = range.start().max(self.anchor);
        if range_end < lo {
            return Some(out);
        }
        // First cycle that could intersect the range.
        let since = lo.checked_since(self.anchor).unwrap_or(0);
        let first_cycle = since / self.cycle;
        let mut cycle_idx = first_cycle.saturating_sub(1); // catch wrapping windows
        loop {
            let cycle_start = self
                .anchor
                .get()
                .checked_add(cycle_idx.checked_mul(self.cycle)?)?;
            if cycle_start > range_end.get() {
                break;
            }
            for &(offset, len) in &self.windows {
                let w_start = cycle_start.checked_add(offset)?;
                let w_end = w_start.checked_add(len - 1)?;
                let Ok(window) = Interval::closed(w_start, w_end) else {
                    continue;
                };
                if let Some(clipped) = window.intersect(range) {
                    out.insert(clipped);
                }
            }
            cycle_idx += 1;
        }
        Some(out)
    }
}

impl fmt::Display for Periodic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "every {} from {}: ", self.cycle, self.anchor)?;
        for (k, (o, l)) in self.windows.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "+{o}..+{}", o + l)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn business_hours() -> Periodic {
        Periodic::new(Time(0), 24, [(9, 8)]).unwrap()
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert_eq!(
            Periodic::new(Time(0), 0, [(0, 1)]).unwrap_err(),
            PeriodicError::ZeroCycle
        );
        assert_eq!(
            Periodic::new(Time(0), 10, [(10, 1)]).unwrap_err(),
            PeriodicError::WindowOutOfCycle {
                offset: 10,
                cycle: 10
            }
        );
        assert_eq!(
            Periodic::new(Time(0), 10, [(3, 0)]).unwrap_err(),
            PeriodicError::EmptyWindow
        );
    }

    #[test]
    fn contains_respects_phase() {
        let p = business_hours();
        assert!(!p.contains(Time(8)));
        assert!(p.contains(Time(9)));
        assert!(p.contains(Time(16)));
        assert!(!p.contains(Time(17)));
        assert!(p.contains(Time(24 + 9)));
        assert!(!p.contains(Time(24 + 17)));
    }

    #[test]
    fn contains_before_anchor_is_false() {
        let p = Periodic::new(Time(100), 10, [(0, 5)]).unwrap();
        assert!(!p.contains(Time(99)));
        assert!(p.contains(Time(100)));
    }

    #[test]
    fn wrapping_window_covers_cycle_boundary() {
        // Night shift: starts at 22, length 4 (wraps to hour 2 of next day).
        let p = Periodic::new(Time(0), 24, [(22, 4)]).unwrap();
        assert!(p.contains(Time(22)));
        assert!(p.contains(Time(23)));
        assert!(p.contains(Time(24))); // next cycle, phase 0
        assert!(p.contains(Time(25)));
        assert!(!p.contains(Time(26)));
    }

    #[test]
    fn expand_produces_clipped_intervals() {
        let p = business_hours();
        let got = p.expand(Interval::lit(0, 48)).unwrap();
        let expect: IntervalSet = [Interval::lit(9, 16), Interval::lit(33, 40)]
            .into_iter()
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn expand_clips_partial_windows() {
        let p = business_hours();
        let got = p.expand(Interval::lit(12, 34)).unwrap();
        let expect: IntervalSet = [Interval::lit(12, 16), Interval::lit(33, 34)]
            .into_iter()
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn expand_unbounded_range_refused() {
        assert!(business_hours()
            .expand(Interval::from_start(0u64))
            .is_none());
    }

    #[test]
    fn expand_agrees_with_contains() {
        let p = Periodic::new(Time(3), 7, [(1, 2), (5, 3)]).unwrap();
        let range = Interval::lit(0, 100);
        let set = p.expand(range).unwrap();
        for t in 0..=100u64 {
            assert_eq!(
                set.contains(Time(t)),
                p.contains(Time(t)),
                "disagreement at t={t}"
            );
        }
    }
}
