//! Chronon-indexed time points.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in discrete time, measured in chronons since an arbitrary epoch.
///
/// The paper leaves the chronon length abstract ("a chronon refers to the
/// smallest indivisible unit of time"); worked examples use small integers
/// such as `[5, 40]`. `Time` is a transparent `u64` newtype so callers can
/// pick any granularity (seconds, minutes, simulation ticks).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(pub u64);

impl Time {
    /// The epoch, chronon zero.
    pub const ZERO: Time = Time(0);
    /// The largest representable finite time point.
    pub const MAX: Time = Time(u64::MAX);

    /// Raw chronon count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The next chronon, saturating at [`Time::MAX`].
    #[inline]
    pub const fn succ(self) -> Time {
        Time(self.0.saturating_add(1))
    }

    /// The previous chronon, or `None` at the epoch.
    #[inline]
    pub const fn pred(self) -> Option<Time> {
        match self.0.checked_sub(1) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// `self + delta` chronons, saturating at [`Time::MAX`].
    #[inline]
    pub const fn saturating_add(self, delta: u64) -> Time {
        Time(self.0.saturating_add(delta))
    }

    /// `self - delta` chronons, saturating at [`Time::ZERO`].
    #[inline]
    pub const fn saturating_sub(self, delta: u64) -> Time {
        Time(self.0.saturating_sub(delta))
    }

    /// `self + delta`, or `None` on overflow.
    #[inline]
    pub const fn checked_add(self, delta: u64) -> Option<Time> {
        match self.0.checked_add(delta) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Chronons elapsed from `earlier` to `self`, or `None` if `earlier`
    /// is after `self`.
    #[inline]
    pub const fn checked_since(self, earlier: Time) -> Option<u64> {
        self.0.checked_sub(earlier.0)
    }

    /// The later of two time points.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two time points.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl From<u64> for Time {
    fn from(v: u64) -> Self {
        Time(v)
    }
}

impl From<Time> for u64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succ_and_pred_round_trip() {
        let t = Time(41);
        assert_eq!(t.succ(), Time(42));
        assert_eq!(t.succ().pred(), Some(Time(41)));
        assert_eq!(Time::ZERO.pred(), None);
        assert_eq!(Time::MAX.succ(), Time::MAX);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(Time(5).saturating_add(10), Time(15));
        assert_eq!(Time::MAX.saturating_add(1), Time::MAX);
        assert_eq!(Time(5).saturating_sub(10), Time::ZERO);
        assert_eq!(Time(10).checked_add(u64::MAX), None);
    }

    #[test]
    fn since_measures_elapsed_chronons() {
        assert_eq!(Time(50).checked_since(Time(20)), Some(30));
        assert_eq!(Time(20).checked_since(Time(50)), None);
    }

    #[test]
    fn min_max_follow_ordering() {
        assert_eq!(Time(3).max(Time(9)), Time(9));
        assert_eq!(Time(3).min(Time(9)), Time(3));
    }

    #[test]
    fn display_is_raw_number() {
        assert_eq!(Time(17).to_string(), "17");
    }
}
