//! Normalized sets of time intervals.
//!
//! Algorithm 1 (FindInaccessible) associates with every location an *overall
//! grant time* `T^g` and an *overall departure time* `T^d`, each "a set of
//! time intervals". [`IntervalSet`] is that representation: sorted, pairwise
//! disjoint, and non-adjacent (maximal) intervals, so two sets denote the
//! same chronons iff they compare equal.

use crate::interval::{Bound, Interval};
use crate::point::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A normalized set of chronons represented as maximal disjoint intervals.
///
/// The empty set plays the role of the paper's `null`/`φ` durations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct IntervalSet {
    /// Sorted by start; disjoint; no two intervals adjacent.
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set (the paper's `φ`).
    pub fn empty() -> IntervalSet {
        IntervalSet::default()
    }

    /// A set containing a single interval.
    pub fn of(interval: Interval) -> IntervalSet {
        IntervalSet {
            intervals: vec![interval],
        }
    }

    /// True if the set contains no chronons.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Number of maximal intervals.
    #[inline]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// The maximal intervals, in increasing order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = Interval> + '_ {
        self.intervals.iter().copied()
    }

    /// The maximal intervals as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Interval] {
        &self.intervals
    }

    /// Earliest chronon in the set.
    pub fn first_time(&self) -> Option<Time> {
        self.intervals.first().map(|i| i.start())
    }

    /// Latest chronon in the set (`None` if empty or unbounded).
    pub fn last_bound(&self) -> Option<Bound> {
        self.intervals.last().map(|i| i.end())
    }

    /// Total number of chronons, `None` if any interval is unbounded.
    pub fn total_size(&self) -> Option<u64> {
        self.intervals
            .iter()
            .try_fold(0u64, |acc, i| i.size().map(|s| acc.saturating_add(s)))
    }

    /// True if `t` is in the set.
    pub fn contains(&self, t: Time) -> bool {
        // Binary search over sorted starts, then check the candidate.
        match self.intervals.binary_search_by(|i| i.start().cmp(&t)) {
            Ok(_) => true,
            Err(0) => false,
            Err(pos) => self.intervals[pos - 1].contains(t),
        }
    }

    /// True if the whole of `interval` is covered by the set.
    ///
    /// Because the representation is normalized (maximal intervals), an
    /// interval is covered iff a single member contains it.
    pub fn covers(&self, interval: Interval) -> bool {
        let t = interval.start();
        match self.intervals.binary_search_by(|i| i.start().cmp(&t)) {
            Ok(pos) => self.intervals[pos].contains_interval(interval),
            Err(0) => false,
            Err(pos) => self.intervals[pos - 1].contains_interval(interval),
        }
    }

    /// Insert one interval, merging with any overlapping/adjacent members.
    pub fn insert(&mut self, interval: Interval) {
        // Find the insertion window: all members that merge with `interval`.
        let mut merged = interval;
        let mut lo = self
            .intervals
            .partition_point(|i| i.strictly_before(merged) && !i.adjacent(merged));
        let mut hi = lo;
        while hi < self.intervals.len() {
            if let Some(m) = merged.merge(self.intervals[hi]) {
                merged = m;
                hi += 1;
            } else {
                break;
            }
        }
        // Members before `lo` neither overlap nor touch; re-check the one
        // immediately before in case adjacency was missed by partition_point.
        if lo > 0 {
            if let Some(m) = merged.merge(self.intervals[lo - 1]) {
                merged = m;
                lo -= 1;
            }
        }
        self.intervals.splice(lo..hi, std::iter::once(merged));
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = self.clone();
        for i in other.iter() {
            out.insert(i);
        }
        out
    }

    /// In-place union; returns true if the set changed.
    ///
    /// Algorithm 1 re-flags neighbors only "if `l.T^d ≠ l.T_old_d`"
    /// (line 28); the change report supports that check without cloning.
    pub fn union_in_place(&mut self, other: &IntervalSet) -> bool {
        if other.is_empty() {
            return false;
        }
        let before = self.intervals.clone();
        for i in other.iter() {
            self.insert(i);
        }
        self.intervals != before
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.intervals.len() && b < other.intervals.len() {
            let (ia, ib) = (self.intervals[a], other.intervals[b]);
            if let Some(x) = ia.intersect(ib) {
                out.push(x);
            }
            // Advance whichever interval ends first.
            match (ia.end(), ib.end()) {
                (Bound::At(ea), Bound::At(eb)) => {
                    if ea <= eb {
                        a += 1;
                    } else {
                        b += 1;
                    }
                }
                (Bound::At(_), Bound::Unbounded) => a += 1,
                (Bound::Unbounded, Bound::At(_)) => b += 1,
                (Bound::Unbounded, Bound::Unbounded) => break,
            }
        }
        IntervalSet { intervals: out }
    }

    /// Chronons of `domain` that are *not* in the set.
    ///
    /// `WHENEVERNOT` (Definition 5) is `complement_within([tr, ∞])` of the
    /// base interval.
    pub fn complement_within(&self, domain: Interval) -> IntervalSet {
        let mut out = IntervalSet::empty();
        let mut cursor = domain.start();
        for i in self.iter() {
            // Portion of the gap before `i` that lies inside the domain.
            if i.start() > cursor {
                if let Some(gap_end) = i.start().pred() {
                    if let Ok(gap) = Interval::new(cursor, Bound::At(gap_end)) {
                        if let Some(g) = gap.intersect(domain) {
                            out.insert(g);
                        }
                    }
                }
            }
            match i.end() {
                Bound::At(e) => {
                    cursor = cursor.max(e.succ());
                    if e == Time::MAX {
                        return out;
                    }
                }
                Bound::Unbounded => return out,
            }
        }
        if domain.end().admits(cursor) {
            if let Ok(tail) = Interval::new(cursor, domain.end()) {
                out.insert(tail);
            }
        }
        out
    }

    /// Chronons in `self` but not in `other`.
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        if self.is_empty() {
            return IntervalSet::empty();
        }
        let span = self.span().expect("non-empty set has a span");
        self.intersect(&other.complement_within(span))
    }

    /// The smallest single interval containing the whole set.
    pub fn span(&self) -> Option<Interval> {
        let first = self.intervals.first()?;
        let last = self.intervals.last()?;
        Some(Interval::new(first.start(), last.end()).expect("span is non-empty"))
    }

    /// Verify the normalization invariant (debug aid and test oracle).
    pub fn is_normalized(&self) -> bool {
        self.intervals
            .windows(2)
            .all(|w| w[0].strictly_before(w[1]) && !w[0].adjacent(w[1]) && !w[0].overlaps(w[1]))
    }
}

impl From<Interval> for IntervalSet {
    fn from(i: Interval) -> Self {
        IntervalSet::of(i)
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        let mut s = IntervalSet::empty();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            // The paper prints null durations as φ (Table 2).
            return write!(f, "φ");
        }
        let mut first = true;
        for i in &self.intervals {
            if !first {
                write!(f, " ∪ ")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(u64, u64)]) -> IntervalSet {
        pairs.iter().map(|&(a, b)| Interval::lit(a, b)).collect()
    }

    #[test]
    fn insert_merges_overlaps_and_adjacency() {
        let mut s = IntervalSet::empty();
        s.insert(Interval::lit(10, 20));
        s.insert(Interval::lit(30, 40));
        s.insert(Interval::lit(18, 29)); // bridges both
        assert_eq!(s, set(&[(10, 40)]));
        assert!(s.is_normalized());
    }

    #[test]
    fn insert_keeps_disjoint_intervals_sorted() {
        let s = set(&[(30, 40), (1, 5), (10, 20)]);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![
                Interval::lit(1, 5),
                Interval::lit(10, 20),
                Interval::lit(30, 40)
            ]
        );
    }

    #[test]
    fn insert_adjacent_before_first_member_merges() {
        let mut s = set(&[(10, 20)]);
        s.insert(Interval::lit(5, 9));
        assert_eq!(s, set(&[(5, 20)]));
    }

    #[test]
    fn insert_unbounded_swallows_tail() {
        let mut s = set(&[(1, 5), (10, 20), (30, 40)]);
        s.insert(Interval::from_start(8u64));
        assert_eq!(s.len(), 2);
        assert_eq!(s.as_slice()[1], Interval::from_start(8u64));
        assert!(s.is_normalized());
    }

    #[test]
    fn contains_uses_binary_search() {
        let s = set(&[(1, 5), (10, 20), (30, 40)]);
        assert!(s.contains(Time(1)));
        assert!(s.contains(Time(15)));
        assert!(!s.contains(Time(7)));
        assert!(!s.contains(Time(41)));
        assert!(!s.contains(Time(0)));
    }

    #[test]
    fn covers_requires_single_member_containment() {
        let s = set(&[(1, 5), (10, 20)]);
        assert!(s.covers(Interval::lit(11, 19)));
        assert!(s.covers(Interval::lit(10, 20)));
        assert!(!s.covers(Interval::lit(4, 11)));
    }

    #[test]
    fn union_of_table2_update_a() {
        // Table 2, final row: T^g = [2,35] ∪ [20,35] = [2,35].
        let a = set(&[(2, 35)]);
        let b = set(&[(20, 35)]);
        assert_eq!(a.union(&b), set(&[(2, 35)]));
        // T^d = [20,50] ∪ [30,50] = [20,50].
        let c = set(&[(20, 50)]);
        let d = set(&[(30, 50)]);
        assert_eq!(c.union(&d), set(&[(20, 50)]));
    }

    #[test]
    fn union_in_place_reports_changes() {
        let mut a = set(&[(1, 5)]);
        assert!(!a.union_in_place(&set(&[(2, 4)])));
        assert!(a.union_in_place(&set(&[(2, 9)])));
        assert_eq!(a, set(&[(1, 9)]));
    }

    #[test]
    fn intersect_walks_both_sets() {
        let a = set(&[(1, 10), (20, 30), (40, 50)]);
        let b = set(&[(5, 25), (45, 60)]);
        assert_eq!(a.intersect(&b), set(&[(5, 10), (20, 25), (45, 50)]));
    }

    #[test]
    fn intersect_with_unbounded() {
        let mut a = IntervalSet::of(Interval::from_start(10u64));
        let b = set(&[(1, 5), (8, 12), (20, 25)]);
        assert_eq!(a.intersect(&b), set(&[(10, 12), (20, 25)]));
        a = IntervalSet::of(Interval::from_start(0u64));
        assert_eq!(
            a.intersect(&IntervalSet::of(Interval::from_start(7u64))),
            IntervalSet::of(Interval::from_start(7u64))
        );
    }

    #[test]
    fn complement_within_bounded_domain() {
        let s = set(&[(5, 10), (20, 25)]);
        let c = s.complement_within(Interval::lit(0, 30));
        assert_eq!(c, set(&[(0, 4), (11, 19), (26, 30)]));
    }

    #[test]
    fn complement_within_unbounded_domain_matches_whenevernot() {
        // WHENEVERNOT on [t0,t1]=[5,20] valid from tr=7:
        // returns [7, 4]→empty? No: [tr, t0-1] = [7,4] is empty (tr > t0-1),
        // so only [21, ∞] remains.
        let s = set(&[(5, 20)]);
        let c = s.complement_within(Interval::from_start(7u64));
        assert_eq!(c, IntervalSet::of(Interval::from_start(21u64)));
        // With tr=2 both parts are produced: [2,4] and [21,∞].
        let c2 = s.complement_within(Interval::from_start(2u64));
        let mut expect = IntervalSet::of(Interval::lit(2, 4));
        expect.insert(Interval::from_start(21u64));
        assert_eq!(c2, expect);
    }

    #[test]
    fn complement_of_empty_is_domain() {
        let s = IntervalSet::empty();
        assert_eq!(s.complement_within(Interval::lit(3, 9)), set(&[(3, 9)]));
    }

    #[test]
    fn complement_of_unbounded_tail_stops() {
        let s = IntervalSet::of(Interval::from_start(10u64));
        assert_eq!(
            s.complement_within(Interval::from_start(0u64)),
            set(&[(0, 9)])
        );
    }

    #[test]
    fn subtract_removes_members() {
        let a = set(&[(1, 10), (20, 30)]);
        let b = set(&[(5, 22)]);
        assert_eq!(a.subtract(&b), set(&[(1, 4), (23, 30)]));
        assert_eq!(a.subtract(&IntervalSet::empty()), a);
        assert_eq!(IntervalSet::empty().subtract(&a), IntervalSet::empty());
    }

    #[test]
    fn total_size_sums_members() {
        assert_eq!(set(&[(1, 5), (10, 12)]).total_size(), Some(8));
        let mut s = set(&[(1, 5)]);
        s.insert(Interval::from_start(100u64));
        assert_eq!(s.total_size(), None);
    }

    #[test]
    fn display_uses_phi_for_empty() {
        assert_eq!(IntervalSet::empty().to_string(), "φ");
        assert_eq!(set(&[(2, 35)]).to_string(), "[2, 35]");
        assert_eq!(set(&[(1, 2), (5, 6)]).to_string(), "[1, 2] ∪ [5, 6]");
    }

    #[test]
    fn span_covers_everything() {
        let s = set(&[(3, 5), (9, 11)]);
        assert_eq!(s.span(), Some(Interval::lit(3, 11)));
        assert_eq!(IntervalSet::empty().span(), None);
    }
}
