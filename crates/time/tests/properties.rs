//! Property-based tests for the interval algebra and the interval index.

use ltam_time::{Bound, Interval, IntervalSet, IntervalTree, TemporalOp, Time};
use proptest::prelude::*;

/// Bounded or occasionally unbounded intervals over a small domain so that
/// overlaps and adjacency are common.
fn arb_interval() -> impl Strategy<Value = Interval> {
    (0u64..200, 0u64..40, prop::bool::weighted(0.1)).prop_map(|(a, len, unbounded)| {
        if unbounded {
            Interval::from_start(a)
        } else {
            Interval::lit(a, a + len)
        }
    })
}

fn arb_set() -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec(arb_interval(), 0..12).prop_map(|v| v.into_iter().collect())
}

/// Reference semantics: the set of chronons in [0, 400] (plus a marker for
/// "everything from some point onward", encoded by checking a far point).
fn chronons(s: &IntervalSet) -> Vec<bool> {
    (0..=400u64).map(|t| s.contains(Time(t))).collect()
}

proptest! {
    #[test]
    fn insert_preserves_normalization(intervals in prop::collection::vec(arb_interval(), 0..20)) {
        let s: IntervalSet = intervals.into_iter().collect();
        prop_assert!(s.is_normalized());
    }

    #[test]
    fn union_is_commutative(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn union_is_associative(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn union_is_idempotent(a in arb_set()) {
        prop_assert_eq!(a.union(&a), a);
    }

    #[test]
    fn union_matches_pointwise_or(a in arb_set(), b in arb_set()) {
        let u = a.union(&b);
        let (ca, cb, cu) = (chronons(&a), chronons(&b), chronons(&u));
        for t in 0..=400usize {
            prop_assert_eq!(cu[t], ca[t] || cb[t], "mismatch at {}", t);
        }
    }

    #[test]
    fn intersect_matches_pointwise_and(a in arb_set(), b in arb_set()) {
        let i = a.intersect(&b);
        prop_assert!(i.is_normalized());
        let (ca, cb, ci) = (chronons(&a), chronons(&b), chronons(&i));
        for t in 0..=400usize {
            prop_assert_eq!(ci[t], ca[t] && cb[t], "mismatch at {}", t);
        }
    }

    #[test]
    fn complement_matches_pointwise_not(a in arb_set(), lo in 0u64..100, len in 0u64..300) {
        let domain = Interval::lit(lo, lo + len);
        let c = a.complement_within(domain);
        prop_assert!(c.is_normalized());
        let (ca, cc) = (chronons(&a), chronons(&c));
        for t in 0..=400u64 {
            let in_domain = domain.contains(Time(t));
            prop_assert_eq!(
                cc[t as usize],
                in_domain && !ca[t as usize],
                "mismatch at {}", t
            );
        }
    }

    #[test]
    fn complement_involution_within_domain(a in arb_set(), lo in 0u64..50, len in 50u64..300) {
        let domain = Interval::lit(lo, lo + len);
        let restricted = a.intersect(&IntervalSet::of(domain));
        let twice = a.complement_within(domain).complement_within(domain);
        prop_assert_eq!(twice, restricted);
    }

    #[test]
    fn subtract_then_union_restores_superset(a in arb_set(), b in arb_set()) {
        // (a - b) ∪ (a ∩ b) == a
        let diff = a.subtract(&b);
        let meet = a.intersect(&b);
        prop_assert_eq!(diff.union(&meet), a);
    }

    #[test]
    fn de_morgan_within_domain(a in arb_set(), b in arb_set()) {
        let domain = Interval::lit(0, 400);
        let lhs = a.union(&b).complement_within(domain);
        let rhs = a
            .complement_within(domain)
            .intersect(&b.complement_within(domain));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn covers_iff_intersection_is_identity(s in arb_set(), i in arb_interval()) {
        let covered = s.covers(i);
        let meet = s.intersect(&IntervalSet::of(i));
        prop_assert_eq!(covered, meet == IntervalSet::of(i));
    }

    #[test]
    fn merge_agrees_with_set_insertion(a in arb_interval(), b in arb_interval()) {
        let merged = a.merge(b);
        let mut s = IntervalSet::of(a);
        s.insert(b);
        match merged {
            Some(m) => prop_assert_eq!(s, IntervalSet::of(m)),
            None => prop_assert_eq!(s.len(), 2),
        }
    }

    #[test]
    fn temporal_ops_produce_normalized_sets(
        base in arb_interval(),
        operand in arb_interval(),
        tr in 0u64..100,
    ) {
        for op in [
            TemporalOp::Whenever,
            TemporalOp::WheneverNot,
            TemporalOp::Union(operand),
            TemporalOp::Intersection(operand),
        ] {
            let out = op.apply(base, Time(tr));
            prop_assert!(out.is_normalized(), "{} not normalized", op);
        }
    }

    #[test]
    fn whenevernot_never_intersects_base(base in arb_interval(), tr in 0u64..250) {
        let out = TemporalOp::WheneverNot.apply(base, Time(tr));
        prop_assert!(out.intersect(&IntervalSet::of(base)).is_empty());
    }

    #[test]
    fn tree_stab_matches_naive(
        intervals in prop::collection::vec(arb_interval(), 0..40),
        probes in prop::collection::vec(0u64..250, 1..20),
    ) {
        let mut tree = IntervalTree::new();
        for (k, iv) in intervals.iter().enumerate() {
            tree.insert(*iv, k);
        }
        for t in probes {
            let mut fast: Vec<usize> =
                tree.stab(Time(t)).into_iter().map(|(_, v)| *v).collect();
            fast.sort_unstable();
            let mut slow: Vec<usize> = intervals
                .iter()
                .enumerate()
                .filter(|(_, iv)| iv.contains(Time(t)))
                .map(|(k, _)| k)
                .collect();
            slow.sort_unstable();
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn tree_overlap_matches_naive(
        intervals in prop::collection::vec(arb_interval(), 0..40),
        query in arb_interval(),
    ) {
        let mut tree = IntervalTree::new();
        for (k, iv) in intervals.iter().enumerate() {
            tree.insert(*iv, k);
        }
        let mut fast: Vec<usize> =
            tree.overlapping(query).into_iter().map(|(_, v)| *v).collect();
        fast.sort_unstable();
        let mut slow: Vec<usize> = intervals
            .iter()
            .enumerate()
            .filter(|(_, iv)| iv.overlaps(query))
            .map(|(k, _)| k)
            .collect();
        slow.sort_unstable();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn tree_remove_then_queries_consistent(
        intervals in prop::collection::vec(arb_interval(), 1..30),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..10),
    ) {
        let mut tree = IntervalTree::new();
        let handles: Vec<_> = intervals
            .iter()
            .enumerate()
            .map(|(k, iv)| (*iv, tree.insert(*iv, k), k))
            .collect();
        let mut removed = std::collections::HashSet::new();
        for r in removals {
            let (iv, id, k) = handles[r.index(handles.len())];
            if removed.insert(k) {
                prop_assert_eq!(tree.remove(iv, id), Some(k));
            } else {
                prop_assert_eq!(tree.remove(iv, id), None);
            }
        }
        prop_assert_eq!(tree.len(), intervals.len() - removed.len());
        for t in [0u64, 50, 100, 150, 200, 249] {
            let mut fast: Vec<usize> =
                tree.stab(Time(t)).into_iter().map(|(_, v)| *v).collect();
            fast.sort_unstable();
            let mut slow: Vec<usize> = intervals
                .iter()
                .enumerate()
                .filter(|(k, iv)| !removed.contains(k) && iv.contains(Time(t)))
                .map(|(k, _)| k)
                .collect();
            slow.sort_unstable();
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn serde_round_trip_interval_set(s in arb_set()) {
        let json = serde_json::to_string(&s).unwrap();
        let back: IntervalSet = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(s, back);
    }

    #[test]
    fn interval_size_matches_enumeration(a in 0u64..300, len in 0u64..50) {
        let iv = Interval::lit(a, a + len);
        let counted = (0..=400u64).filter(|&t| iv.contains(Time(t))).count() as u64;
        prop_assert_eq!(iv.size(), Some(counted));
        prop_assert_eq!(iv.end(), Bound::At(Time(a + len)));
    }
}
