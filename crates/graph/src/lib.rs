//! Location model for the LTAM authorization model.
//!
//! LTAM (§3.1) organizes protected space as a *multilevel location graph*:
//!
//! * a **primitive location** cannot be subdivided (a room),
//! * a **composite location** groups related locations (a building),
//! * a **location graph** `(L, E)` connects primitive locations with
//!   bidirectional edges (Definition 1),
//! * a **multilevel location graph** connects location graphs (or further
//!   multilevel graphs) with mutually disjoint locations (Definition 2),
//! * every (multilevel) location graph designates at least one **entry
//!   location** — the first and last location visited inside it.
//!
//! [`LocationModel`] is a single arena holding the whole hierarchy: nodes
//! carry a parent pointer (which guarantees the disjointness Definition 2
//! demands), edges connect siblings only, and entry flags mark entries of
//! their parent's graph.
//!
//! [`EffectiveGraph`] flattens the hierarchy to a primitive-level adjacency
//! structure implementing the paper's *complex route* rule: an edge between
//! composites `X–Y` becomes edges between every entry primitive of `X` and
//! every entry primitive of `Y`. Route search, the `all_route_from` rule
//! operator, and Algorithm 1 all run on this flat view.
//!
//! [`examples`] reconstructs the paper's Figure 1/2 NTU campus and the
//! Figure 4 four-location cycle.

#![warn(missing_docs)]

pub mod dot;
pub mod effective;
pub mod examples;
pub mod model;
pub mod route;

pub use effective::EffectiveGraph;
pub use model::{GraphError, LocationId, LocationKind, LocationModel};
pub use route::{Route, RouteError};
