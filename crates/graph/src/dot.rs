//! Graphviz DOT export of multilevel location graphs.
//!
//! Composites render as clusters, entry locations with double borders
//! (`peripheries=2`), matching the paper's Figure 2 convention ("locations
//! with double lines denote the entry locations"). The repro harness uses
//! this to regenerate Figure 2.

use crate::model::{LocationId, LocationKind, LocationModel};
use std::fmt::Write as _;

/// Render the whole model as a Graphviz `graph` (undirected).
pub fn to_dot(model: &LocationModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", escape(model.name(model.root())));
    let _ = writeln!(out, "  node [shape=box];");
    emit_children(model, model.root(), 1, &mut out);
    // Edges: each undirected edge once; cluster-level edges are emitted
    // between representative nodes with logical head/tail clusters noted.
    for id in model.ids() {
        for &nb in model.neighbors(id) {
            if id < nb {
                let (a, ca) = representative(model, id);
                let (b, cb) = representative(model, nb);
                let mut attrs: Vec<String> = Vec::new();
                if let Some(c) = ca {
                    attrs.push(format!("ltail=\"cluster_{}\"", c.0));
                }
                if let Some(c) = cb {
                    attrs.push(format!("lhead=\"cluster_{}\"", c.0));
                }
                let attr_str = if attrs.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", attrs.join(", "))
                };
                let _ = writeln!(
                    out,
                    "  \"{}\" -- \"{}\"{};",
                    escape(model.name(a)),
                    escape(model.name(b)),
                    attr_str
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

/// A concrete (primitive) node to anchor an edge on, plus the cluster the
/// edge logically attaches to when the endpoint is a composite.
fn representative(model: &LocationModel, id: LocationId) -> (LocationId, Option<LocationId>) {
    match model.kind(id) {
        LocationKind::Primitive => (id, None),
        LocationKind::Composite => {
            let entries = model.entry_primitives(id);
            let anchor = entries
                .first()
                .copied()
                .or_else(|| model.primitives_under(id).first().copied())
                .unwrap_or(id);
            (anchor, Some(id))
        }
    }
}

fn emit_children(model: &LocationModel, id: LocationId, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    for &child in model.children(id) {
        match model.kind(child) {
            LocationKind::Primitive => {
                let peripheries = if model.is_entry(child) { 2 } else { 1 };
                let _ = writeln!(
                    out,
                    "{indent}\"{}\" [peripheries={peripheries}];",
                    escape(model.name(child))
                );
            }
            LocationKind::Composite => {
                let _ = writeln!(out, "{indent}subgraph \"cluster_{}\" {{", child.0);
                let _ = writeln!(out, "{indent}  label=\"{}\";", escape(model.name(child)));
                if model.is_entry(child) {
                    let _ = writeln!(out, "{indent}  penwidth=2;");
                }
                emit_children(model, child, depth + 1, out);
                let _ = writeln!(out, "{indent}}}");
            }
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LocationModel;

    #[test]
    fn dot_contains_clusters_nodes_and_edges() {
        let mut m = LocationModel::new("NTU");
        let sce = m.add_composite(m.root(), "SCE").unwrap();
        let go = m.add_primitive(sce, "SCE.GO").unwrap();
        let cais = m.add_primitive(sce, "CAIS").unwrap();
        m.add_edge(go, cais).unwrap();
        m.set_entry(go).unwrap();
        m.set_entry(sce).unwrap();
        let dot = to_dot(&m);
        assert!(dot.contains("graph \"NTU\""));
        assert!(dot.contains("subgraph \"cluster_1\""));
        assert!(dot.contains("label=\"SCE\""));
        assert!(dot.contains("\"SCE.GO\" [peripheries=2]"));
        assert!(dot.contains("\"CAIS\" [peripheries=1]"));
        assert!(dot.contains("\"SCE.GO\" -- \"CAIS\""));
    }

    #[test]
    fn composite_edges_anchor_on_entry_primitives() {
        let mut m = LocationModel::new("C");
        let b1 = m.add_composite(m.root(), "B1").unwrap();
        let b2 = m.add_composite(m.root(), "B2").unwrap();
        let x = m.add_primitive(b1, "x").unwrap();
        let y = m.add_primitive(b2, "y").unwrap();
        m.set_entry(x).unwrap();
        m.set_entry(y).unwrap();
        m.set_entry(b1).unwrap();
        m.add_edge(b1, b2).unwrap();
        let dot = to_dot(&m);
        assert!(dot.contains("\"x\" -- \"y\" [ltail=\"cluster_1\", lhead=\"cluster_2\"]"));
    }

    #[test]
    fn names_are_escaped() {
        let mut m = LocationModel::new("A\"B");
        let p = m.add_primitive(m.root(), "room \"1\"").unwrap();
        m.set_entry(p).unwrap();
        let dot = to_dot(&m);
        assert!(dot.contains("room \\\"1\\\""));
        assert!(dot.contains("graph \"A\\\"B\""));
    }
}
