//! The flattened, primitive-level view of a multilevel location graph.
//!
//! The paper's *complex route* rule (§3.1) lets a subject cross between two
//! composite locations `l'ᵢ – l'ᵢ₊₁` (connected by an edge in their common
//! parent graph) by leaving through an entry location of `l'ᵢ` and entering
//! through an entry location of `l'ᵢ₊₁`. [`EffectiveGraph`] materializes
//! exactly those crossings: its vertices are all primitive locations and its
//! edges are
//!
//! * sibling edges between primitives, plus
//! * `entry_primitives(X) × entry_primitives(Y)` for every edge `X – Y`
//!   involving a composite.
//!
//! A sequence of primitives is a complex route iff consecutive elements are
//! adjacent in the effective graph; Algorithm 1 and the route operators run
//! directly on this view.

use crate::model::{LocationId, LocationKind, LocationModel};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Primitive-level adjacency derived from a [`LocationModel`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EffectiveGraph {
    /// Sorted adjacency per primitive location.
    adjacency: BTreeMap<LocationId, Vec<LocationId>>,
    /// Primitive entry locations of the whole infrastructure — where a
    /// subject can enter from outside (Definition 8 requires routes "from
    /// every entry location of G").
    global_entries: Vec<LocationId>,
}

impl EffectiveGraph {
    /// Flatten `model` into its primitive-level adjacency.
    pub fn build(model: &LocationModel) -> EffectiveGraph {
        let mut edges: BTreeSet<(LocationId, LocationId)> = BTreeSet::new();
        let mut add = |a: LocationId, b: LocationId| {
            if a != b {
                edges.insert((a.min(b), a.max(b)));
            }
        };
        for id in model.ids() {
            for &nb in model.neighbors(id) {
                if id >= nb {
                    continue; // visit each undirected edge once
                }
                match (model.kind(id), model.kind(nb)) {
                    (LocationKind::Primitive, LocationKind::Primitive) => add(id, nb),
                    _ => {
                        // Complex-route bridging through entry primitives.
                        for &p in &model.entry_primitives(id) {
                            for &q in &model.entry_primitives(nb) {
                                add(p, q);
                            }
                        }
                    }
                }
            }
        }
        let mut adjacency: BTreeMap<LocationId, Vec<LocationId>> =
            model.primitives().map(|p| (p, Vec::new())).collect();
        for (a, b) in edges {
            adjacency
                .get_mut(&a)
                .expect("edge endpoint is primitive")
                .push(b);
            adjacency
                .get_mut(&b)
                .expect("edge endpoint is primitive")
                .push(a);
        }
        for v in adjacency.values_mut() {
            v.sort_unstable();
        }
        EffectiveGraph {
            adjacency,
            global_entries: model.entry_primitives(model.root()),
        }
    }

    /// All primitive locations.
    pub fn locations(&self) -> impl Iterator<Item = LocationId> + '_ {
        self.adjacency.keys().copied()
    }

    /// Number of primitive locations.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// True if there are no primitive locations.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(Vec::len).sum::<usize>() / 2
    }

    /// Neighbors of a primitive location (empty for unknown ids).
    pub fn neighbors(&self, id: LocationId) -> &[LocationId] {
        self.adjacency.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if `a` and `b` are adjacent (one complex-route step apart).
    pub fn adjacent(&self, a: LocationId, b: LocationId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// True if `id` is a primitive location of this graph.
    pub fn contains(&self, id: LocationId) -> bool {
        self.adjacency.contains_key(&id)
    }

    /// Primitive entry locations of the whole infrastructure.
    pub fn global_entries(&self) -> &[LocationId] {
        &self.global_entries
    }

    /// Maximum degree over all locations (the paper's `N_d`).
    pub fn max_degree(&self) -> usize {
        self.adjacency.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Restrict the view to the primitives under one composite, keeping
    /// only edges internal to it. Entry locations become the composite's
    /// entry primitives. Used by the per-composite pass of the multilevel
    /// inaccessibility analysis (Lemma 1).
    pub fn restrict_to(&self, model: &LocationModel, composite: LocationId) -> EffectiveGraph {
        let members: BTreeSet<LocationId> = model.primitives_under(composite).into_iter().collect();
        let adjacency = members
            .iter()
            .map(|&p| {
                let nbs = self
                    .neighbors(p)
                    .iter()
                    .copied()
                    .filter(|q| members.contains(q))
                    .collect();
                (p, nbs)
            })
            .collect();
        EffectiveGraph {
            adjacency,
            global_entries: model.entry_primitives(composite),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LocationModel;

    /// Two buildings of two rooms each; buildings linked at the top level.
    fn campus() -> (LocationModel, [LocationId; 4]) {
        let mut m = LocationModel::new("Campus");
        let b1 = m.add_composite(m.root(), "B1").unwrap();
        let b2 = m.add_composite(m.root(), "B2").unwrap();
        let lobby1 = m.add_primitive(b1, "B1.Lobby").unwrap();
        let office1 = m.add_primitive(b1, "B1.Office").unwrap();
        let lobby2 = m.add_primitive(b2, "B2.Lobby").unwrap();
        let office2 = m.add_primitive(b2, "B2.Office").unwrap();
        m.add_edge(lobby1, office1).unwrap();
        m.add_edge(lobby2, office2).unwrap();
        m.add_edge(b1, b2).unwrap();
        m.set_entry(lobby1).unwrap();
        m.set_entry(lobby2).unwrap();
        m.set_entry(b1).unwrap();
        m.validate().unwrap();
        (m, [lobby1, office1, lobby2, office2])
    }

    #[test]
    fn composite_edges_bridge_entry_primitives() {
        let (m, [lobby1, office1, lobby2, office2]) = campus();
        let g = EffectiveGraph::build(&m);
        assert_eq!(g.len(), 4);
        assert!(g.adjacent(lobby1, office1));
        assert!(g.adjacent(lobby2, office2));
        // The B1–B2 edge bridges the two lobbies (the entry primitives)...
        assert!(g.adjacent(lobby1, lobby2));
        // ... and nothing else.
        assert!(!g.adjacent(office1, office2));
        assert!(!g.adjacent(office1, lobby2));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (m, _) = campus();
        let g = EffectiveGraph::build(&m);
        for a in g.locations() {
            for &b in g.neighbors(a) {
                assert!(g.adjacent(b, a), "asymmetric edge {a} – {b}");
            }
        }
    }

    #[test]
    fn global_entries_follow_entry_designations() {
        let (m, [lobby1, ..]) = campus();
        let g = EffectiveGraph::build(&m);
        // Only B1 is an entry of the campus; its entry primitive is lobby1.
        assert_eq!(g.global_entries(), &[lobby1]);
    }

    #[test]
    fn multi_entry_composites_bridge_all_entries() {
        let mut m = LocationModel::new("C");
        let b1 = m.add_composite(m.root(), "B1").unwrap();
        let x = m.add_primitive(b1, "x").unwrap();
        let y = m.add_primitive(b1, "y").unwrap();
        m.add_edge(x, y).unwrap();
        m.set_entry(x).unwrap();
        m.set_entry(y).unwrap();
        let z = m.add_primitive(m.root(), "z").unwrap();
        m.add_edge(b1, z).unwrap();
        m.set_entry(b1).unwrap();
        let g = EffectiveGraph::build(&m);
        assert!(g.adjacent(x, z));
        assert!(g.adjacent(y, z));
    }

    #[test]
    fn nested_composites_recurse_entries() {
        let mut m = LocationModel::new("W");
        let outer = m.add_composite(m.root(), "outer").unwrap();
        let inner = m.add_composite(outer, "inner").unwrap();
        let core = m.add_primitive(inner, "core").unwrap();
        let hall = m.add_primitive(outer, "hall").unwrap();
        let gate = m.add_primitive(m.root(), "gate").unwrap();
        m.add_edge(inner, hall).unwrap();
        m.add_edge(outer, gate).unwrap();
        m.set_entry(core).unwrap();
        m.set_entry(inner).unwrap();
        m.set_entry(gate).unwrap();
        // outer's entry is the nested composite `inner`, whose entry is `core`.
        let g = EffectiveGraph::build(&m);
        assert!(g.adjacent(core, hall)); // inner–hall edge
        assert!(g.adjacent(core, gate)); // outer–gate edge recurses to core
    }

    #[test]
    fn restrict_to_keeps_internal_edges_only() {
        let (m, [lobby1, office1, ..]) = campus();
        let g = EffectiveGraph::build(&m);
        let b1 = m.id("B1").unwrap();
        let r = g.restrict_to(&m, b1);
        assert_eq!(r.len(), 2);
        assert!(r.adjacent(lobby1, office1));
        assert_eq!(r.global_entries(), &[lobby1]);
        assert_eq!(r.edge_count(), 1);
    }

    #[test]
    fn max_degree_reports_nd() {
        let (m, _) = campus();
        let g = EffectiveGraph::build(&m);
        assert_eq!(g.max_degree(), 2);
    }
}
