//! The paper's running examples as ready-made location models.
//!
//! * [`ntu_campus`] — the NTU campus of Figures 1 and 2: schools SCE, EEE,
//!   CEE, SME and NBS under the NTU multilevel location graph.
//! * [`fig4_cycle`] — the four-location cycle of Figure 4 used by the
//!   inaccessible-location example (Tables 1 and 2).
//!
//! Where the figures leave details unstated (exact edges inside EEE, the
//! contents of CEE/SME/NBS, NTU-level entries) we make the smallest
//! consistent choice and record it in `EXPERIMENTS.md`. Every route the
//! paper states explicitly is validated by tests here:
//!
//! * simple route `⟨SCE.DeanOffice, SCE.SectionA, SCE.SectionB, CAIS⟩`,
//! * complex route `⟨EEE.DeanOffice, EEE.SectionA, EEE.GO, SCE.GO,
//!   SCE.SectionA, SCE.DeanOffice⟩`,
//! * "the edge between SCE.SectionB and CAIS",
//! * entry locations SCE.GO and SCE.SectionC of SCE.

use crate::model::{LocationId, LocationModel};

/// Handles to the named locations of the NTU campus (Figures 1 and 2).
#[derive(Debug, Clone)]
pub struct NtuCampus {
    /// The campus model; root is `NTU`.
    pub model: LocationModel,
    /// School of Computer Engineering (composite).
    pub sce: LocationId,
    /// SCE general office — entry location of SCE.
    pub sce_go: LocationId,
    /// SCE dean's office.
    pub sce_dean: LocationId,
    /// SCE section A.
    pub sce_a: LocationId,
    /// SCE section B.
    pub sce_b: LocationId,
    /// SCE section C — entry location of SCE.
    pub sce_c: LocationId,
    /// Centre for Advanced Information Systems (research centre in SCE).
    pub cais: LocationId,
    /// CHIPES research centre in SCE.
    pub chipes: LocationId,
    /// School of Electrical and Electronic Engineering (composite).
    pub eee: LocationId,
    /// EEE general office — entry location of EEE.
    pub eee_go: LocationId,
    /// EEE dean's office.
    pub eee_dean: LocationId,
    /// EEE section A.
    pub eee_a: LocationId,
    /// EEE section B.
    pub eee_b: LocationId,
    /// EEE section C — entry location of EEE.
    pub eee_c: LocationId,
    /// Lab 1 in EEE.
    pub lab1: LocationId,
    /// Lab 2 in EEE.
    pub lab2: LocationId,
    /// School of Civil and Environmental Engineering (composite).
    pub cee: LocationId,
    /// School of Mechanical Engineering (composite).
    pub sme: LocationId,
    /// Nanyang Business School (composite).
    pub nbs: LocationId,
}

/// Build the NTU campus of Figures 1 and 2.
///
/// SCE and EEE are laid out exactly as the figures and §3.1's route examples
/// dictate; CEE, SME and NBS are shown unexpanded in Figure 2, so each gets
/// a minimal interior (a general office serving as entry plus one office).
/// NTU-level edges form `SCE – EEE` (required by the complex-route example)
/// plus a chain through the remaining schools; SCE and EEE are the campus
/// entry locations.
pub fn ntu_campus() -> NtuCampus {
    let mut m = LocationModel::new("NTU");
    let root = m.root();

    // --- SCE -------------------------------------------------------------
    let sce = m.add_composite(root, "SCE").expect("fresh name");
    let sce_go = m.add_primitive(sce, "SCE.GO").expect("fresh name");
    let sce_dean = m.add_primitive(sce, "SCE.DeanOffice").expect("fresh name");
    let sce_a = m.add_primitive(sce, "SCE.SectionA").expect("fresh name");
    let sce_b = m.add_primitive(sce, "SCE.SectionB").expect("fresh name");
    let sce_c = m.add_primitive(sce, "SCE.SectionC").expect("fresh name");
    let cais = m.add_primitive(sce, "CAIS").expect("fresh name");
    let chipes = m.add_primitive(sce, "CHIPES").expect("fresh name");
    for (a, b) in [
        (sce_go, sce_a),
        (sce_a, sce_b),
        (sce_b, sce_c),
        (sce_dean, sce_a),
        (sce_b, cais),   // stated in §3.1
        (sce_c, chipes), // Figure 2 layout
        (cais, chipes),  // Figure 2 layout
    ] {
        m.add_edge(a, b).expect("siblings");
    }
    m.set_entry(sce_go).expect("valid id");
    m.set_entry(sce_c).expect("valid id");

    // --- EEE (mirror of SCE per Figure 1) ---------------------------------
    let eee = m.add_composite(root, "EEE").expect("fresh name");
    let eee_go = m.add_primitive(eee, "EEE.GO").expect("fresh name");
    let eee_dean = m.add_primitive(eee, "EEE.DeanOffice").expect("fresh name");
    let eee_a = m.add_primitive(eee, "EEE.SectionA").expect("fresh name");
    let eee_b = m.add_primitive(eee, "EEE.SectionB").expect("fresh name");
    let eee_c = m.add_primitive(eee, "EEE.SectionC").expect("fresh name");
    let lab1 = m.add_primitive(eee, "Lab1").expect("fresh name");
    let lab2 = m.add_primitive(eee, "Lab2").expect("fresh name");
    for (a, b) in [
        (eee_go, eee_a),
        (eee_a, eee_b),
        (eee_b, eee_c),
        (eee_dean, eee_a),
        (eee_b, lab1),
        (eee_c, lab2),
        (lab1, lab2),
    ] {
        m.add_edge(a, b).expect("siblings");
    }
    m.set_entry(eee_go).expect("valid id");
    m.set_entry(eee_c).expect("valid id");

    // --- CEE / SME / NBS (unexpanded in Figure 2) --------------------------
    let school = |m: &mut LocationModel, name: &str| {
        let comp = m.add_composite(root, name).expect("fresh name");
        let go = m
            .add_primitive(comp, format!("{name}.GO"))
            .expect("fresh name");
        let office = m
            .add_primitive(comp, format!("{name}.Office"))
            .expect("fresh name");
        m.add_edge(go, office).expect("siblings");
        m.set_entry(go).expect("valid id");
        comp
    };
    let cee = school(&mut m, "CEE");
    let sme = school(&mut m, "SME");
    let nbs = school(&mut m, "NBS");

    // --- NTU level ----------------------------------------------------------
    for (a, b) in [(sce, eee), (eee, cee), (cee, sme), (sme, nbs), (nbs, sce)] {
        m.add_edge(a, b).expect("siblings");
    }
    m.set_entry(sce).expect("valid id");
    m.set_entry(eee).expect("valid id");

    m.validate().expect("campus model is well-formed");

    NtuCampus {
        model: m,
        sce,
        sce_go,
        sce_dean,
        sce_a,
        sce_b,
        sce_c,
        cais,
        chipes,
        eee,
        eee_go,
        eee_dean,
        eee_a,
        eee_b,
        eee_c,
        lab1,
        lab2,
        cee,
        sme,
        nbs,
    }
}

/// Handles to the Figure 4 example graph.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// The model; root `G` contains the four primitives.
    pub model: LocationModel,
    /// Entry location A.
    pub a: LocationId,
    /// Location B.
    pub b: LocationId,
    /// Location C.
    pub c: LocationId,
    /// Location D.
    pub d: LocationId,
}

/// Build Figure 4: locations A, B, C, D in a cycle `A–B–C–D–A`; A is the
/// entry location. ("Its neighboring locations B and D are to be examined"
/// and "the flags of A and C are set to true because they are the neighbors
/// of B and D" fix the topology.)
pub fn fig4_cycle() -> Fig4 {
    let mut m = LocationModel::new("G");
    let a = m.add_primitive(m.root(), "A").expect("fresh name");
    let b = m.add_primitive(m.root(), "B").expect("fresh name");
    let c = m.add_primitive(m.root(), "C").expect("fresh name");
    let d = m.add_primitive(m.root(), "D").expect("fresh name");
    for (x, y) in [(a, b), (b, c), (c, d), (d, a)] {
        m.add_edge(x, y).expect("siblings");
    }
    m.set_entry(a).expect("valid id");
    m.validate().expect("fig4 model is well-formed");
    Fig4 {
        model: m,
        a,
        b,
        c,
        d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effective::EffectiveGraph;
    use crate::route::{shortest_route, Route};

    #[test]
    fn campus_validates() {
        let ntu = ntu_campus();
        assert!(ntu.model.validate().is_ok());
        // 14 SCE/EEE primitives + 6 school-stub primitives.
        assert_eq!(ntu.model.primitives().count(), 20);
    }

    #[test]
    fn paper_simple_route_holds() {
        // §3.1: ⟨SCE.DeanOffice, SCE.SectionA, SCE.SectionB, CAIS⟩.
        let ntu = ntu_campus();
        let r = Route::simple(&ntu.model, &[ntu.sce_dean, ntu.sce_a, ntu.sce_b, ntu.cais]);
        assert!(r.is_ok(), "{r:?}");
    }

    #[test]
    fn paper_complex_route_holds() {
        // §3.1: ⟨EEE.DeanOffice, EEE.SectionA, EEE.GO, SCE.GO, SCE.SectionA,
        // SCE.DeanOffice⟩.
        let ntu = ntu_campus();
        let g = EffectiveGraph::build(&ntu.model);
        let r = Route::complex(
            &g,
            &[
                ntu.eee_dean,
                ntu.eee_a,
                ntu.eee_go,
                ntu.sce_go,
                ntu.sce_a,
                ntu.sce_dean,
            ],
        );
        assert!(r.is_ok(), "{r:?}");
    }

    #[test]
    fn sce_entries_match_paper() {
        let ntu = ntu_campus();
        let entries = ntu.model.entries_of(ntu.sce);
        assert_eq!(entries, vec![ntu.sce_go, ntu.sce_c]);
    }

    #[test]
    fn school_crossing_requires_entries() {
        // The SCE–EEE edge must bridge entry primitives only: EEE.GO–SCE.GO
        // is an effective edge, EEE.Lab1–CAIS must not be.
        let ntu = ntu_campus();
        let g = EffectiveGraph::build(&ntu.model);
        assert!(g.adjacent(ntu.eee_go, ntu.sce_go));
        assert!(g.adjacent(ntu.eee_c, ntu.sce_c));
        assert!(g.adjacent(ntu.eee_go, ntu.sce_c));
        assert!(!g.adjacent(ntu.lab1, ntu.cais));
        assert!(!g.adjacent(ntu.eee_a, ntu.sce_a));
    }

    #[test]
    fn campus_is_fully_reachable_from_global_entries() {
        let ntu = ntu_campus();
        let g = EffectiveGraph::build(&ntu.model);
        let entries = g.global_entries().to_vec();
        assert!(!entries.is_empty());
        for dst in g.locations() {
            assert!(
                entries
                    .iter()
                    .any(|&e| shortest_route(&g, e, dst).is_some()),
                "{} unreachable from campus entries",
                ntu.model.name(dst)
            );
        }
    }

    #[test]
    fn fig4_topology_matches_the_walkthrough() {
        let f = fig4_cycle();
        // "its neighboring locations B and D" (of entry A).
        assert_eq!(f.model.neighbors(f.a), &[f.b, f.d]);
        // "the flags of A and C ... because they are the neighbors of B and D".
        assert_eq!(f.model.neighbors(f.b), &[f.a, f.c]);
        assert_eq!(f.model.neighbors(f.d), &[f.a, f.c]);
        assert!(f.model.is_entry(f.a));
        assert!(!f.model.is_entry(f.b));
    }
}
