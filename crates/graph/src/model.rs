//! The location arena: primitive/composite locations, sibling edges,
//! entry designations, and structural validation.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a location (primitive or composite) within a
/// [`LocationModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocationId(pub u32);

impl fmt::Display for LocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Whether a location can be subdivided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocationKind {
    /// Cannot be further divided (a room). Only primitive locations appear
    /// in authorizations (Definition 3) and routes.
    Primitive,
    /// A collection of related locations (a building, a school); owns a
    /// (multilevel) location graph formed by its children.
    Composite,
}

/// Errors from building or validating a [`LocationModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A location name was used twice (names are globally unique, matching
    /// the paper's qualified names such as `SCE.GO`).
    DuplicateName(String),
    /// A referenced location does not exist.
    UnknownLocation(String),
    /// A referenced id is not part of this model.
    UnknownId(LocationId),
    /// Locations must be added under a composite parent.
    ParentNotComposite(String),
    /// Edges connect a location to itself.
    SelfEdge(String),
    /// Edges may only connect siblings — locations of the same (multilevel)
    /// location graph. Definition 2 requires mutually disjoint members;
    /// cross-level edges would break the hierarchy.
    NotSiblings {
        /// One endpoint's name.
        a: String,
        /// The other endpoint's name.
        b: String,
    },
    /// Every (multilevel) location graph must designate at least one entry
    /// location (§3.1).
    NoEntry(String),
    /// Location graphs are connected graphs (§3.1); this composite's
    /// children are not.
    Disconnected {
        /// The composite whose graph is disconnected.
        composite: String,
        /// A child unreachable from the first child.
        unreachable: String,
    },
    /// The root composite cannot carry an entry flag (it has no parent
    /// graph); designate entries among its children instead.
    RootEntry,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateName(n) => write!(f, "duplicate location name {n:?}"),
            GraphError::UnknownLocation(n) => write!(f, "unknown location {n:?}"),
            GraphError::UnknownId(id) => write!(f, "unknown location id {id}"),
            GraphError::ParentNotComposite(n) => {
                write!(f, "parent {n:?} is primitive; cannot contain locations")
            }
            GraphError::SelfEdge(n) => write!(f, "self edge on {n:?}"),
            GraphError::NotSiblings { a, b } => {
                write!(f, "edge {a:?} – {b:?} does not connect siblings")
            }
            GraphError::NoEntry(n) => {
                write!(f, "location graph of {n:?} has no entry location")
            }
            GraphError::Disconnected {
                composite,
                unreachable,
            } => write!(
                f,
                "location graph of {composite:?} is disconnected: {unreachable:?} unreachable"
            ),
            GraphError::RootEntry => write!(f, "the root composite cannot be an entry"),
        }
    }
}

impl std::error::Error for GraphError {}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeData {
    name: String,
    kind: LocationKind,
    parent: Option<LocationId>,
    children: Vec<LocationId>,
    /// True if this location is a designated entry of its parent's graph.
    entry: bool,
    /// Sibling adjacency (sorted, deduplicated).
    neighbors: Vec<LocationId>,
}

/// A whole multilevel location graph: one arena of locations rooted at a
/// composite (the infrastructure — e.g. the NTU campus).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocationModel {
    nodes: Vec<NodeData>,
    names: HashMap<String, LocationId>,
    root: LocationId,
}

impl LocationModel {
    /// Create a model whose root composite is named `root_name`.
    pub fn new(root_name: impl Into<String>) -> LocationModel {
        let name = root_name.into();
        let mut names = HashMap::new();
        names.insert(name.clone(), LocationId(0));
        LocationModel {
            nodes: vec![NodeData {
                name,
                kind: LocationKind::Composite,
                parent: None,
                children: Vec::new(),
                entry: false,
                neighbors: Vec::new(),
            }],
            names,
            root: LocationId(0),
        }
    }

    /// The root composite (the whole infrastructure).
    #[inline]
    pub fn root(&self) -> LocationId {
        self.root
    }

    /// Number of locations, including composites and the root.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if only the root exists.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    fn node(&self, id: LocationId) -> Result<&NodeData, GraphError> {
        self.nodes
            .get(id.0 as usize)
            .ok_or(GraphError::UnknownId(id))
    }

    /// Look up a location by its (globally unique) name.
    pub fn id(&self, name: &str) -> Result<LocationId, GraphError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| GraphError::UnknownLocation(name.to_string()))
    }

    /// The location's name.
    pub fn name(&self, id: LocationId) -> &str {
        &self.nodes[id.0 as usize].name
    }

    /// Primitive or composite.
    pub fn kind(&self, id: LocationId) -> LocationKind {
        self.nodes[id.0 as usize].kind
    }

    /// The parent composite, `None` for the root.
    pub fn parent(&self, id: LocationId) -> Option<LocationId> {
        self.nodes[id.0 as usize].parent
    }

    /// Children of a composite (empty for primitives).
    pub fn children(&self, id: LocationId) -> &[LocationId] {
        &self.nodes[id.0 as usize].children
    }

    /// Sibling neighbors of a location within its parent's graph.
    pub fn neighbors(&self, id: LocationId) -> &[LocationId] {
        &self.nodes[id.0 as usize].neighbors
    }

    /// True if the location is a designated entry of its parent's graph.
    pub fn is_entry(&self, id: LocationId) -> bool {
        self.nodes[id.0 as usize].entry
    }

    /// All location ids, root included.
    pub fn ids(&self) -> impl Iterator<Item = LocationId> + '_ {
        (0..self.nodes.len() as u32).map(LocationId)
    }

    /// All primitive location ids.
    pub fn primitives(&self) -> impl Iterator<Item = LocationId> + '_ {
        self.ids()
            .filter(|&id| self.kind(id) == LocationKind::Primitive)
    }

    /// Add a primitive location under `parent`.
    pub fn add_primitive(
        &mut self,
        parent: LocationId,
        name: impl Into<String>,
    ) -> Result<LocationId, GraphError> {
        self.add_node(parent, name.into(), LocationKind::Primitive)
    }

    /// Add a composite location under `parent`.
    pub fn add_composite(
        &mut self,
        parent: LocationId,
        name: impl Into<String>,
    ) -> Result<LocationId, GraphError> {
        self.add_node(parent, name.into(), LocationKind::Composite)
    }

    fn add_node(
        &mut self,
        parent: LocationId,
        name: String,
        kind: LocationKind,
    ) -> Result<LocationId, GraphError> {
        let pnode = self.node(parent)?;
        if pnode.kind != LocationKind::Composite {
            return Err(GraphError::ParentNotComposite(pnode.name.clone()));
        }
        if self.names.contains_key(&name) {
            return Err(GraphError::DuplicateName(name));
        }
        let id = LocationId(self.nodes.len() as u32);
        self.names.insert(name.clone(), id);
        self.nodes.push(NodeData {
            name,
            kind,
            parent: Some(parent),
            children: Vec::new(),
            entry: false,
            neighbors: Vec::new(),
        });
        self.nodes[parent.0 as usize].children.push(id);
        Ok(id)
    }

    /// Connect two sibling locations with a bidirectional edge
    /// (Definition 1: "by definition, an edge is bidirectional").
    pub fn add_edge(&mut self, a: LocationId, b: LocationId) -> Result<(), GraphError> {
        let na = self.node(a)?;
        let nb = self.node(b)?;
        if a == b {
            return Err(GraphError::SelfEdge(na.name.clone()));
        }
        if na.parent != nb.parent || na.parent.is_none() {
            return Err(GraphError::NotSiblings {
                a: na.name.clone(),
                b: nb.name.clone(),
            });
        }
        let insert = |v: &mut Vec<LocationId>, x: LocationId| {
            if let Err(pos) = v.binary_search(&x) {
                v.insert(pos, x);
            }
        };
        insert(&mut self.nodes[a.0 as usize].neighbors, b);
        insert(&mut self.nodes[b.0 as usize].neighbors, a);
        Ok(())
    }

    /// Designate `id` as an entry location of its parent's graph.
    pub fn set_entry(&mut self, id: LocationId) -> Result<(), GraphError> {
        let node = self.node(id)?;
        if node.parent.is_none() {
            return Err(GraphError::RootEntry);
        }
        self.nodes[id.0 as usize].entry = true;
        Ok(())
    }

    /// True if `id` is `ancestor` or directly/indirectly belongs to it —
    /// the paper's "`li` is part of `H`".
    pub fn is_part_of(&self, id: LocationId, ancestor: LocationId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// All primitive locations directly or indirectly inside `id`
    /// (`id` itself if primitive).
    pub fn primitives_under(&self, id: LocationId) -> Vec<LocationId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            match self.kind(n) {
                LocationKind::Primitive => out.push(n),
                LocationKind::Composite => stack.extend(self.children(n).iter().copied()),
            }
        }
        out.sort_unstable();
        out
    }

    /// The *entry primitives* of a location: for a primitive, itself; for a
    /// composite, the primitives reached by recursively following entry
    /// designations. These are the locations through which a complex route
    /// enters or leaves the composite.
    pub fn entry_primitives(&self, id: LocationId) -> Vec<LocationId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            match self.kind(n) {
                LocationKind::Primitive => out.push(n),
                LocationKind::Composite => {
                    stack.extend(
                        self.children(n)
                            .iter()
                            .copied()
                            .filter(|&c| self.is_entry(c)),
                    );
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Entry locations (direct children flagged as entries) of a composite.
    pub fn entries_of(&self, composite: LocationId) -> Vec<LocationId> {
        self.children(composite)
            .iter()
            .copied()
            .filter(|&c| self.is_entry(c))
            .collect()
    }

    /// Validate the structural invariants of §3.1:
    ///
    /// * every composite with children designates at least one entry;
    /// * every composite's children graph is connected.
    ///
    /// Edge/sibling/disjointness invariants are enforced at construction.
    pub fn validate(&self) -> Result<(), GraphError> {
        for id in self.ids() {
            if self.kind(id) != LocationKind::Composite {
                continue;
            }
            let children = self.children(id);
            if children.is_empty() {
                continue;
            }
            if !children.iter().any(|&c| self.is_entry(c)) {
                return Err(GraphError::NoEntry(self.name(id).to_string()));
            }
            // Connectivity of the sibling graph.
            let mut seen = vec![children[0]];
            let mut stack = vec![children[0]];
            while let Some(n) = stack.pop() {
                for &m in self.neighbors(n) {
                    if !seen.contains(&m) {
                        seen.push(m);
                        stack.push(m);
                    }
                }
            }
            if let Some(&miss) = children.iter().find(|c| !seen.contains(c)) {
                return Err(GraphError::Disconnected {
                    composite: self.name(id).to_string(),
                    unreachable: self.name(miss).to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_room_building() -> (LocationModel, LocationId, LocationId) {
        let mut m = LocationModel::new("B");
        let a = m.add_primitive(m.root(), "a").unwrap();
        let b = m.add_primitive(m.root(), "b").unwrap();
        m.add_edge(a, b).unwrap();
        m.set_entry(a).unwrap();
        (m, a, b)
    }

    #[test]
    fn build_and_look_up() {
        let (m, a, b) = two_room_building();
        assert_eq!(m.id("a").unwrap(), a);
        assert_eq!(m.name(b), "b");
        assert_eq!(m.kind(a), LocationKind::Primitive);
        assert_eq!(m.kind(m.root()), LocationKind::Composite);
        assert_eq!(m.parent(a), Some(m.root()));
        assert_eq!(m.len(), 3);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut m = LocationModel::new("B");
        m.add_primitive(m.root(), "a").unwrap();
        assert_eq!(
            m.add_primitive(m.root(), "a").unwrap_err(),
            GraphError::DuplicateName("a".into())
        );
        assert_eq!(
            m.add_primitive(m.root(), "B").unwrap_err(),
            GraphError::DuplicateName("B".into())
        );
    }

    #[test]
    fn edges_must_connect_siblings() {
        let mut m = LocationModel::new("B");
        let wing = m.add_composite(m.root(), "wing").unwrap();
        let a = m.add_primitive(m.root(), "a").unwrap();
        let x = m.add_primitive(wing, "x").unwrap();
        assert!(matches!(
            m.add_edge(a, x).unwrap_err(),
            GraphError::NotSiblings { .. }
        ));
        assert!(matches!(
            m.add_edge(a, a).unwrap_err(),
            GraphError::SelfEdge(_)
        ));
        // Composite siblings may be connected (multilevel edge).
        let wing2 = m.add_composite(m.root(), "wing2").unwrap();
        assert!(m.add_edge(wing, wing2).is_ok());
        let _ = x;
    }

    #[test]
    fn edge_insertion_is_idempotent_and_sorted() {
        let (mut m, a, b) = two_room_building();
        m.add_edge(a, b).unwrap();
        m.add_edge(b, a).unwrap();
        assert_eq!(m.neighbors(a), &[b]);
        assert_eq!(m.neighbors(b), &[a]);
    }

    #[test]
    fn primitives_cannot_have_children() {
        let (mut m, a, _) = two_room_building();
        assert!(matches!(
            m.add_primitive(a, "inner").unwrap_err(),
            GraphError::ParentNotComposite(_)
        ));
    }

    #[test]
    fn root_cannot_be_entry() {
        let mut m = LocationModel::new("B");
        assert_eq!(m.set_entry(m.root()).unwrap_err(), GraphError::RootEntry);
    }

    #[test]
    fn validate_requires_entry() {
        let mut m = LocationModel::new("B");
        let a = m.add_primitive(m.root(), "a").unwrap();
        let b = m.add_primitive(m.root(), "b").unwrap();
        m.add_edge(a, b).unwrap();
        assert_eq!(m.validate().unwrap_err(), GraphError::NoEntry("B".into()));
    }

    #[test]
    fn validate_requires_connectivity() {
        let mut m = LocationModel::new("B");
        let a = m.add_primitive(m.root(), "a").unwrap();
        let _b = m.add_primitive(m.root(), "b").unwrap();
        m.set_entry(a).unwrap();
        assert!(matches!(
            m.validate().unwrap_err(),
            GraphError::Disconnected { .. }
        ));
    }

    #[test]
    fn part_of_walks_ancestry() {
        let mut m = LocationModel::new("NTU");
        let sce = m.add_composite(m.root(), "SCE").unwrap();
        let cais = m.add_primitive(sce, "CAIS").unwrap();
        assert!(m.is_part_of(cais, sce));
        assert!(m.is_part_of(cais, m.root()));
        assert!(m.is_part_of(sce, m.root()));
        assert!(!m.is_part_of(sce, cais));
    }

    #[test]
    fn entry_primitives_recurse_through_composites() {
        let mut m = LocationModel::new("NTU");
        let sce = m.add_composite(m.root(), "SCE").unwrap();
        let go = m.add_primitive(sce, "SCE.GO").unwrap();
        let lab = m.add_primitive(sce, "CAIS").unwrap();
        m.add_edge(go, lab).unwrap();
        m.set_entry(go).unwrap();
        m.set_entry(sce).unwrap();
        assert_eq!(m.entry_primitives(sce), vec![go]);
        assert_eq!(m.entry_primitives(m.root()), vec![go]);
        assert_eq!(m.entry_primitives(lab), vec![lab]);
        assert_eq!(m.entries_of(sce), vec![go]);
    }

    #[test]
    fn primitives_under_collects_descendants() {
        let mut m = LocationModel::new("NTU");
        let sce = m.add_composite(m.root(), "SCE").unwrap();
        let go = m.add_primitive(sce, "GO").unwrap();
        let cais = m.add_primitive(sce, "CAIS").unwrap();
        let eee = m.add_composite(m.root(), "EEE").unwrap();
        let lab = m.add_primitive(eee, "Lab1").unwrap();
        assert_eq!(m.primitives_under(sce), vec![go, cais]);
        assert_eq!(m.primitives_under(m.root()), vec![go, cais, lab]);
    }

    #[test]
    fn serde_round_trip() {
        let (m, a, _) = two_room_building();
        let json = serde_json::to_string(&m).unwrap();
        let back: LocationModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id("a").unwrap(), a);
        assert_eq!(back.len(), m.len());
        assert!(back.validate().is_ok());
    }
}
