//! Routes through (multilevel) location graphs.
//!
//! §3.1 defines a *simple route* as a series of primitive locations inside
//! one location graph with consecutive elements connected by edges, and a
//! *complex route* as one that may additionally cross between composite
//! locations through their entry locations. [`Route`] validates both forms
//! and provides search: shortest routes (BFS) and bounded enumeration of all
//! simple paths (used by the `all_route_from` rule operator of §4 Example 3
//! and by the naive inaccessibility baseline).

use crate::effective::EffectiveGraph;
use crate::model::{LocationId, LocationKind, LocationModel};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

/// Why a location sequence is not a route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Routes have at least one location.
    Empty,
    /// Route element is not a primitive location.
    NotPrimitive(LocationId),
    /// Two consecutive elements are not connected by a permitted step.
    Disconnected {
        /// Index of the first element of the failing pair.
        index: usize,
        /// The pair itself.
        from: LocationId,
        /// Second element.
        to: LocationId,
    },
    /// For simple routes: an element lies outside the shared location graph.
    NotSameGraph(LocationId),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Empty => write!(f, "route must contain at least one location"),
            RouteError::NotPrimitive(l) => write!(f, "route element {l} is not primitive"),
            RouteError::Disconnected { index, from, to } => {
                write!(f, "no step from {from} to {to} at position {index}")
            }
            RouteError::NotSameGraph(l) => {
                write!(f, "{l} is not in the same location graph as the route head")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A validated series of primitive locations `⟨l₁, …, l_k⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    locations: Vec<LocationId>,
}

impl Route {
    /// Validate a *simple route*: all elements primitive, all in the same
    /// location graph (same parent composite), consecutive elements joined
    /// by sibling edges.
    pub fn simple(model: &LocationModel, seq: &[LocationId]) -> Result<Route, RouteError> {
        let (&first, rest) = seq.split_first().ok_or(RouteError::Empty)?;
        if model.kind(first) != LocationKind::Primitive {
            return Err(RouteError::NotPrimitive(first));
        }
        let parent = model.parent(first);
        let mut prev = first;
        for (i, &l) in rest.iter().enumerate() {
            if model.kind(l) != LocationKind::Primitive {
                return Err(RouteError::NotPrimitive(l));
            }
            if model.parent(l) != parent {
                return Err(RouteError::NotSameGraph(l));
            }
            if !model.neighbors(prev).contains(&l) {
                return Err(RouteError::Disconnected {
                    index: i,
                    from: prev,
                    to: l,
                });
            }
            prev = l;
        }
        Ok(Route {
            locations: seq.to_vec(),
        })
    }

    /// Validate a *complex route*: consecutive elements adjacent in the
    /// effective graph (direct edge, or entry-to-entry crossing between
    /// composites connected at some level).
    pub fn complex(graph: &EffectiveGraph, seq: &[LocationId]) -> Result<Route, RouteError> {
        let (&first, rest) = seq.split_first().ok_or(RouteError::Empty)?;
        if !graph.contains(first) {
            return Err(RouteError::NotPrimitive(first));
        }
        let mut prev = first;
        for (i, &l) in rest.iter().enumerate() {
            if !graph.contains(l) {
                return Err(RouteError::NotPrimitive(l));
            }
            if !graph.adjacent(prev, l) {
                return Err(RouteError::Disconnected {
                    index: i,
                    from: prev,
                    to: l,
                });
            }
            prev = l;
        }
        Ok(Route {
            locations: seq.to_vec(),
        })
    }

    /// The source `l₁`.
    pub fn source(&self) -> LocationId {
        *self.locations.first().expect("routes are non-empty")
    }

    /// The destination `l_k`.
    pub fn destination(&self) -> LocationId {
        *self.locations.last().expect("routes are non-empty")
    }

    /// The locations of the route in order.
    pub fn locations(&self) -> &[LocationId] {
        &self.locations
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Routes are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Render with location names, e.g. `⟨SCE.GO, SCE.SectionA, CAIS⟩`.
    pub fn display<'a>(&'a self, model: &'a LocationModel) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Route, &'a LocationModel);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "⟨")?;
                for (i, &l) in self.0.locations.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", self.1.name(l))?;
                }
                write!(f, "⟩")
            }
        }
        D(self, model)
    }
}

/// Breadth-first shortest route between two primitives in the effective
/// graph; `None` if unreachable.
pub fn shortest_route(graph: &EffectiveGraph, src: LocationId, dst: LocationId) -> Option<Route> {
    if !graph.contains(src) || !graph.contains(dst) {
        return None;
    }
    if src == dst {
        return Some(Route {
            locations: vec![src],
        });
    }
    let mut pred: HashMap<LocationId, LocationId> = HashMap::new();
    let mut queue = VecDeque::from([src]);
    while let Some(cur) = queue.pop_front() {
        for &nb in graph.neighbors(cur) {
            if nb != src && !pred.contains_key(&nb) {
                pred.insert(nb, cur);
                if nb == dst {
                    let mut path = vec![dst];
                    let mut at = dst;
                    while at != src {
                        at = pred[&at];
                        path.push(at);
                    }
                    path.reverse();
                    return Some(Route { locations: path });
                }
                queue.push_back(nb);
            }
        }
    }
    None
}

/// Enumerate all simple paths (no repeated location) from `src` to `dst`,
/// depth-first, bounded by `max_len` locations and `max_routes` results.
///
/// Path counts are exponential in general; the bounds keep the naive
/// inaccessibility baseline and the `all_route_from` operator total.
pub fn all_routes(
    graph: &EffectiveGraph,
    src: LocationId,
    dst: LocationId,
    max_len: usize,
    max_routes: usize,
) -> Vec<Route> {
    let mut out = Vec::new();
    if !graph.contains(src) || !graph.contains(dst) || max_len == 0 || max_routes == 0 {
        return out;
    }
    let mut stack = vec![src];
    let mut on_path: BTreeSet<LocationId> = BTreeSet::from([src]);
    // Iterative DFS with an explicit neighbor cursor per level.
    let mut cursors = vec![0usize];
    loop {
        let depth = stack.len() - 1;
        let cur = stack[depth];
        if cur == dst && cursors[depth] == 0 {
            out.push(Route {
                locations: stack.clone(),
            });
            if out.len() >= max_routes {
                return out;
            }
            // Do not extend past the destination: a simple path through dst
            // and back would revisit it.
            on_path.remove(&cur);
            stack.pop();
            cursors.pop();
            if stack.is_empty() {
                return out;
            }
            continue;
        }
        let nbs = graph.neighbors(cur);
        let mut advanced = false;
        while cursors[depth] < nbs.len() {
            let nb = nbs[cursors[depth]];
            cursors[depth] += 1;
            if stack.len() < max_len && !on_path.contains(&nb) {
                stack.push(nb);
                on_path.insert(nb);
                cursors.push(0);
                advanced = true;
                break;
            }
        }
        if !advanced {
            on_path.remove(&cur);
            stack.pop();
            cursors.pop();
            if stack.is_empty() {
                return out;
            }
        }
    }
}

/// Union of the locations appearing on any simple path from `src` to `dst`
/// (the §4 `all_route_from` location operator), bounded like [`all_routes`].
pub fn locations_on_routes(
    graph: &EffectiveGraph,
    src: LocationId,
    dst: LocationId,
    max_len: usize,
    max_routes: usize,
) -> Vec<LocationId> {
    let mut set: BTreeSet<LocationId> = BTreeSet::new();
    for r in all_routes(graph, src, dst, max_len, max_routes) {
        set.extend(r.locations().iter().copied());
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LocationModel;

    /// Line graph a–b–c–d plus chord b–d, all in one location graph.
    fn line_with_chord() -> (LocationModel, EffectiveGraph, [LocationId; 4]) {
        let mut m = LocationModel::new("G");
        let a = m.add_primitive(m.root(), "a").unwrap();
        let b = m.add_primitive(m.root(), "b").unwrap();
        let c = m.add_primitive(m.root(), "c").unwrap();
        let d = m.add_primitive(m.root(), "d").unwrap();
        m.add_edge(a, b).unwrap();
        m.add_edge(b, c).unwrap();
        m.add_edge(c, d).unwrap();
        m.add_edge(b, d).unwrap();
        m.set_entry(a).unwrap();
        let g = EffectiveGraph::build(&m);
        (m, g, [a, b, c, d])
    }

    #[test]
    fn simple_route_validates_edges_and_graph_membership() {
        let (m, _, [a, b, c, d]) = line_with_chord();
        assert!(Route::simple(&m, &[a, b, c, d]).is_ok());
        assert!(Route::simple(&m, &[a, b, d]).is_ok());
        assert_eq!(
            Route::simple(&m, &[a, c]).unwrap_err(),
            RouteError::Disconnected {
                index: 0,
                from: a,
                to: c
            }
        );
        assert_eq!(Route::simple(&m, &[]).unwrap_err(), RouteError::Empty);
    }

    #[test]
    fn simple_route_rejects_cross_graph_elements() {
        let mut m = LocationModel::new("W");
        let b1 = m.add_composite(m.root(), "B1").unwrap();
        let b2 = m.add_composite(m.root(), "B2").unwrap();
        let x = m.add_primitive(b1, "x").unwrap();
        let y = m.add_primitive(b2, "y").unwrap();
        m.set_entry(x).unwrap();
        m.set_entry(y).unwrap();
        m.add_edge(b1, b2).unwrap();
        assert_eq!(
            Route::simple(&m, &[x, y]).unwrap_err(),
            RouteError::NotSameGraph(y)
        );
        // But it is a valid complex route.
        let g = EffectiveGraph::build(&m);
        assert!(Route::complex(&g, &[x, y]).is_ok());
    }

    #[test]
    fn simple_route_rejects_composites() {
        let mut m = LocationModel::new("W");
        let b1 = m.add_composite(m.root(), "B1").unwrap();
        let x = m.add_primitive(b1, "x").unwrap();
        m.set_entry(x).unwrap();
        assert_eq!(
            Route::simple(&m, &[b1]).unwrap_err(),
            RouteError::NotPrimitive(b1)
        );
    }

    #[test]
    fn source_and_destination() {
        let (m, _, [a, b, c, d]) = line_with_chord();
        let r = Route::simple(&m, &[a, b, c, d]).unwrap();
        assert_eq!(r.source(), a);
        assert_eq!(r.destination(), d);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn shortest_route_takes_the_chord() {
        let (_, g, [a, _, _, d]) = line_with_chord();
        let r = shortest_route(&g, a, d).unwrap();
        assert_eq!(r.len(), 3); // a–b–d beats a–b–c–d
        assert_eq!(r.source(), a);
        assert_eq!(r.destination(), d);
    }

    #[test]
    fn shortest_route_to_self_is_singleton() {
        let (_, g, [a, ..]) = line_with_chord();
        let r = shortest_route(&g, a, a).unwrap();
        assert_eq!(r.locations(), &[a]);
    }

    #[test]
    fn shortest_route_unreachable_is_none() {
        let mut m = LocationModel::new("W");
        let a = m.add_primitive(m.root(), "a").unwrap();
        let b = m.add_primitive(m.root(), "b").unwrap();
        m.set_entry(a).unwrap();
        let g = EffectiveGraph::build(&m);
        assert!(shortest_route(&g, a, b).is_none());
    }

    #[test]
    fn all_routes_enumerates_simple_paths() {
        let (_, g, [a, _, _, d]) = line_with_chord();
        let routes = all_routes(&g, a, d, 10, 100);
        // a-b-d and a-b-c-d.
        assert_eq!(routes.len(), 2);
        let lens: Vec<usize> = routes.iter().map(Route::len).collect();
        assert!(lens.contains(&3) && lens.contains(&4));
    }

    #[test]
    fn all_routes_respects_bounds() {
        let (_, g, [a, _, _, d]) = line_with_chord();
        assert_eq!(all_routes(&g, a, d, 3, 100).len(), 1); // only a-b-d fits
        assert_eq!(all_routes(&g, a, d, 10, 1).len(), 1);
        assert!(all_routes(&g, a, d, 0, 10).is_empty());
    }

    #[test]
    fn all_routes_to_self() {
        let (_, g, [a, ..]) = line_with_chord();
        let routes = all_routes(&g, a, a, 5, 10);
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].locations(), &[a]);
    }

    #[test]
    fn locations_on_routes_unions_paths() {
        let (_, g, [a, b, c, d]) = line_with_chord();
        let locs = locations_on_routes(&g, a, d, 10, 100);
        assert_eq!(locs, vec![a, b, c, d]);
        let locs_short = locations_on_routes(&g, a, d, 3, 100);
        assert_eq!(locs_short, vec![a, b, d]);
    }

    #[test]
    fn display_renders_names() {
        let (m, _, [a, b, ..]) = line_with_chord();
        let r = Route::simple(&m, &[a, b]).unwrap();
        assert_eq!(r.display(&m).to_string(), "⟨a, b⟩");
    }
}
