//! Property-based tests for the location model and effective graph.

use ltam_graph::{dot, route, EffectiveGraph, LocationId, LocationKind, LocationModel, Route};
use proptest::prelude::*;

/// Generate a random two-level campus: `b` buildings with `r` rooms each,
/// rooms chained inside each building, buildings chained at the top level;
/// pseudo-random extra edges inside buildings; first room of each building
/// is its entry; building 0 is the campus entry.
fn arb_campus() -> impl Strategy<Value = LocationModel> {
    (1usize..5, 1usize..5, any::<u64>()).prop_map(|(b, r, seed)| {
        let mut m = LocationModel::new("Campus");
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut comps = Vec::new();
        for bi in 0..b {
            let comp = m.add_composite(m.root(), format!("B{bi}")).unwrap();
            let mut rooms = Vec::new();
            for ri in 0..r {
                rooms.push(m.add_primitive(comp, format!("B{bi}R{ri}")).unwrap());
            }
            for w in rooms.windows(2) {
                m.add_edge(w[0], w[1]).unwrap();
            }
            // Extra chords.
            for _ in 0..(next() % 3) {
                let a = rooms[(next() as usize) % rooms.len()];
                let c = rooms[(next() as usize) % rooms.len()];
                if a != c {
                    m.add_edge(a, c).unwrap();
                }
            }
            m.set_entry(rooms[0]).unwrap();
            // Sometimes a second entry.
            if rooms.len() > 1 && next() % 2 == 0 {
                m.set_entry(rooms[rooms.len() - 1]).unwrap();
            }
            comps.push(comp);
        }
        for w in comps.windows(2) {
            m.add_edge(w[0], w[1]).unwrap();
        }
        m.set_entry(comps[0]).unwrap();
        m.validate().unwrap();
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn effective_graph_is_symmetric_and_loop_free(model in arb_campus()) {
        let g = EffectiveGraph::build(&model);
        for a in g.locations() {
            prop_assert!(!g.adjacent(a, a), "self loop at {a}");
            for &b in g.neighbors(a) {
                prop_assert!(g.adjacent(b, a), "asymmetric edge {a}–{b}");
            }
        }
    }

    #[test]
    fn effective_vertices_are_exactly_the_primitives(model in arb_campus()) {
        let g = EffectiveGraph::build(&model);
        let prims: Vec<LocationId> = model.primitives().collect();
        let verts: Vec<LocationId> = g.locations().collect();
        prop_assert_eq!(prims, verts);
        for e in g.global_entries() {
            prop_assert_eq!(model.kind(*e), LocationKind::Primitive);
        }
    }

    #[test]
    fn entry_primitives_are_contained_and_consistent(model in arb_campus()) {
        for id in model.ids() {
            let under = model.primitives_under(id);
            for e in model.entry_primitives(id) {
                prop_assert!(under.contains(&e), "entry {e} outside its composite");
            }
        }
    }

    #[test]
    fn restriction_is_a_subgraph(model in arb_campus()) {
        let g = EffectiveGraph::build(&model);
        for c in model.ids() {
            if model.kind(c) != LocationKind::Composite || c == model.root() {
                continue;
            }
            let r = g.restrict_to(&model, c);
            for a in r.locations() {
                prop_assert!(g.contains(a));
                for &b in r.neighbors(a) {
                    prop_assert!(g.adjacent(a, b), "restricted edge {a}–{b} not in full graph");
                }
            }
        }
    }

    #[test]
    fn bfs_routes_validate_as_complex_routes(model in arb_campus()) {
        let g = EffectiveGraph::build(&model);
        let entries = g.global_entries().to_vec();
        prop_assume!(!entries.is_empty());
        for target in g.locations() {
            if let Some(r) = route::shortest_route(&g, entries[0], target) {
                prop_assert!(Route::complex(&g, r.locations()).is_ok());
                prop_assert_eq!(r.source(), entries[0]);
                prop_assert_eq!(r.destination(), target);
            }
        }
    }

    #[test]
    fn all_routes_are_simple_paths_and_include_shortest(model in arb_campus()) {
        let g = EffectiveGraph::build(&model);
        let entry = g.global_entries()[0];
        let targets: Vec<LocationId> = g.locations().take(3).collect();
        for target in targets {
            let routes = route::all_routes(&g, entry, target, g.len(), 500);
            let shortest = route::shortest_route(&g, entry, target);
            match shortest {
                Some(s) => {
                    prop_assert!(!routes.is_empty());
                    let min_len = routes.iter().map(Route::len).min().unwrap();
                    prop_assert_eq!(min_len, s.len(), "shortest not among enumerated");
                }
                None => prop_assert!(routes.is_empty()),
            }
            for r in &routes {
                prop_assert!(Route::complex(&g, r.locations()).is_ok());
                // Simple path: no repeated locations.
                let mut sorted = r.locations().to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), r.len(), "repeated location in route");
            }
        }
    }

    #[test]
    fn dot_mentions_every_primitive(model in arb_campus()) {
        let text = dot::to_dot(&model);
        for p in model.primitives() {
            prop_assert!(
                text.contains(&format!("\"{}\"", model.name(p))),
                "{} missing from DOT", model.name(p)
            );
        }
    }

    #[test]
    fn serde_round_trip_preserves_structure(model in arb_campus()) {
        let json = serde_json::to_string(&model).unwrap();
        let back: LocationModel = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.len(), model.len());
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(EffectiveGraph::build(&back), EffectiveGraph::build(&model));
    }

    #[test]
    fn is_part_of_is_transitive_over_parents(model in arb_campus()) {
        for id in model.ids() {
            let mut cur = id;
            while let Some(p) = model.parent(cur) {
                prop_assert!(model.is_part_of(id, p));
                cur = p;
            }
            prop_assert!(model.is_part_of(id, model.root()));
        }
    }
}
