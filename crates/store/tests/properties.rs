//! Property tests for the durability layer's on-disk formats.
//!
//! The codec contract: arbitrary events round-trip bit-exactly, and
//! arbitrary *bytes* — truncations, bit flips, garbage — decode to an
//! error, never a panic. The WAL contract: whatever survives a damaged
//! tail is an exact prefix of what was appended.

use ltam_core::subject::SubjectId;
use ltam_engine::batch::Event;
use ltam_graph::LocationId;
use ltam_store::{decode_event, decode_event_exact, event_bytes, ScratchDir, Wal, WalConfig};
use ltam_time::Time;
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    let fields = || (0u64..=u64::MAX, 0u32..=u32::MAX, 0u32..=u32::MAX);
    prop_oneof![
        fields().prop_map(|(t, s, l)| Event::Request {
            time: Time(t),
            subject: SubjectId(s),
            location: LocationId(l),
        }),
        fields().prop_map(|(t, s, l)| Event::Enter {
            time: Time(t),
            subject: SubjectId(s),
            location: LocationId(l),
        }),
        fields().prop_map(|(t, s, l)| Event::Exit {
            time: Time(t),
            subject: SubjectId(s),
            location: LocationId(l),
        }),
        (0u64..=u64::MAX).prop_map(|t| Event::Tick { now: Time(t) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary events encode → decode to the identical event, and the
    /// decoder consumes exactly the bytes the encoder produced.
    #[test]
    fn codec_round_trips_arbitrary_events(event in arb_event()) {
        let bytes = event_bytes(&event);
        let (back, consumed) = decode_event(&bytes).expect("encoded events decode");
        prop_assert_eq!(back, event);
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decode_event_exact(&bytes).expect("exact decode"), event);
    }

    /// Every strict prefix of an encoding is a decode error — never a
    /// panic, never a silent success.
    #[test]
    fn truncated_encodings_always_error(event in arb_event(), cut in 0usize..64) {
        let bytes = event_bytes(&event);
        prop_assume!(cut < bytes.len());
        prop_assert!(decode_event(&bytes[..cut]).is_err());
        prop_assert!(decode_event_exact(&bytes[..cut]).is_err());
    }

    /// Bit-flipped encodings never panic: they decode to some event or
    /// return an error. (Framing CRCs catch the flips the codec cannot.)
    #[test]
    fn bit_flipped_encodings_never_panic(
        event in arb_event(),
        byte in 0usize..64,
        bit in 0u8..8,
    ) {
        let mut bytes = event_bytes(&event);
        let i = byte % bytes.len();
        bytes[i] ^= 1 << bit;
        let _ = decode_event(&bytes); // must return, Ok or Err
        let _ = decode_event_exact(&bytes);
    }

    /// Arbitrary garbage buffers decode without panicking.
    #[test]
    fn arbitrary_buffers_never_panic(bytes in prop::collection::vec(0u8..=255, 0..40)) {
        let _ = decode_event(&bytes);
        let _ = decode_event_exact(&bytes);
    }

    /// A concatenated stream of encodings decodes back event by event
    /// (the WAL payload framing relies on per-record lengths, but the
    /// codec itself must also self-delimit).
    #[test]
    fn streams_decode_event_by_event(events in prop::collection::vec(arb_event(), 0..32)) {
        let mut buf = Vec::new();
        for e in &events {
            buf.extend_from_slice(&event_bytes(e));
        }
        let mut at = 0usize;
        let mut back = Vec::new();
        while at < buf.len() {
            let (event, consumed) = decode_event(&buf[at..]).expect("stream decodes");
            back.push(event);
            at += consumed;
        }
        prop_assert_eq!(back, events);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cut a WAL at an arbitrary byte offset: reopening recovers an exact
    /// prefix of the appended events and repairs the log so a second open
    /// is clean.
    #[test]
    fn damaged_wal_recovers_an_exact_prefix(
        events in prop::collection::vec(arb_event(), 1..120),
        segment_bytes in 64u64..2048,
        cut_fraction in 0.0f64..1.0,
    ) {
        let dir = ScratchDir::new("prop-wal-cut");
        let config = WalConfig { segment_bytes, fsync: false };
        {
            let (mut wal, _) = Wal::open(dir.path(), config).expect("open");
            for chunk in events.chunks(7) {
                wal.append_batch(chunk).expect("append");
            }
        }
        // Damage the newest segment at a random offset.
        let mut segments: Vec<_> = std::fs::read_dir(dir.path())
            .expect("list dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        segments.sort();
        let last = segments.last().expect("segment exists");
        let len = std::fs::metadata(last).expect("metadata").len();
        let cut = (len as f64 * cut_fraction) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(last).expect("open segment");
        f.set_len(cut).expect("truncate");
        drop(f);

        let (_, recovery) = Wal::open(dir.path(), config).expect("recover");
        let got: Vec<Event> = recovery.events.iter().map(|&(_, e)| e).collect();
        prop_assert!(got.len() <= events.len());
        prop_assert_eq!(&got[..], &events[..got.len()]);
        // The repaired log reopens with zero further truncation.
        let (_, second) = Wal::open(dir.path(), config).expect("reopen");
        prop_assert_eq!(second.events.len(), got.len());
        prop_assert_eq!(second.truncated_bytes, 0);
    }
}
