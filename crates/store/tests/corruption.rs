//! Corrupt-WAL smoke tests — the drill CI runs on every push: write a
//! fixture log, flip a byte, and assert recovery truncates cleanly at the
//! damage without panicking or losing any committed record before it.

use ltam_core::subject::SubjectId;
use ltam_engine::batch::Event;
use ltam_graph::LocationId;
use ltam_store::{Wal, WalConfig};
use ltam_time::Time;

fn fixture_events(n: u64) -> Vec<Event> {
    (0..n)
        .map(|i| {
            let subject = SubjectId((i % 31) as u32);
            let location = LocationId((i % 7) as u32);
            match i % 4 {
                0 => Event::Request {
                    time: Time(i),
                    subject,
                    location,
                },
                1 => Event::Enter {
                    time: Time(i),
                    subject,
                    location,
                },
                2 => Event::Exit {
                    time: Time(i + 1),
                    subject,
                    location,
                },
                _ => Event::Tick { now: Time(i + 2) },
            }
        })
        .collect()
}

/// Flip one byte at `offset` within the newest WAL segment; returns the
/// segment's length for offset bookkeeping.
fn flip_byte_in_newest_segment(dir: &std::path::Path, offset_from_end: u64) -> u64 {
    let segments = Wal::segment_files(dir).expect("list store dir");
    let last = segments.last().expect("a WAL segment exists");
    let mut bytes = std::fs::read(last).expect("read segment");
    let len = bytes.len() as u64;
    let at = (len - 1 - offset_from_end.min(len - 1)) as usize;
    bytes[at] ^= 0x20;
    std::fs::write(last, &bytes).expect("write damaged segment");
    len
}

#[test]
fn flipped_byte_truncates_cleanly_and_preserves_the_prefix() {
    let dir = ltam_store::ScratchDir::new("corruption-smoke");
    let config = WalConfig {
        segment_bytes: 8 * 1024,
        fsync: false,
    };
    let events = fixture_events(512);
    {
        let (mut wal, _) = Wal::open(dir.path(), config).expect("create fixture log");
        for chunk in events.chunks(64) {
            wal.append_batch(chunk).expect("append fixture batch");
        }
    }

    // Flip a byte deep in the newest segment's record area.
    flip_byte_in_newest_segment(dir.path(), 200);

    // Recovery must not panic, must report truncation, and must hand back
    // an exact prefix of the committed events.
    let (_, recovery) = Wal::open(dir.path(), config).expect("recovery never errors on a flip");
    assert!(
        recovery.truncated_bytes > 0,
        "the flip must be detected and truncated"
    );
    let got: Vec<Event> = recovery.events.iter().map(|&(_, e)| e).collect();
    assert!(!got.is_empty(), "records before the flip survive");
    assert!(got.len() < events.len(), "records after the flip are cut");
    assert_eq!(
        got[..],
        events[..got.len()],
        "recovered events are an exact prefix — nothing before the damage is dropped"
    );

    // The repaired log is appendable and a further open is clean.
    {
        let (mut wal, second) = Wal::open(dir.path(), config).expect("reopen repaired log");
        assert_eq!(second.truncated_bytes, 0, "repair already happened");
        assert_eq!(second.events.len(), got.len());
        wal.append_batch(&fixture_events(8))
            .expect("append after repair");
    }
    let (_, third) = Wal::open(dir.path(), config).expect("final open");
    assert_eq!(third.events.len(), got.len() + 8);
}

#[test]
fn flipped_segment_header_drops_only_that_segment_and_later() {
    let dir = ltam_store::ScratchDir::new("corruption-header");
    let config = WalConfig {
        segment_bytes: 512, // force several segments
        fsync: false,
    };
    let events = fixture_events(400);
    {
        let (mut wal, _) = Wal::open(dir.path(), config).expect("create fixture log");
        for chunk in events.chunks(16) {
            wal.append_batch(chunk).expect("append fixture batch");
        }
    }
    let segments = Wal::segment_files(dir.path()).expect("list store dir");
    assert!(segments.len() >= 3, "fixture spans several segments");
    // Damage the *middle* segment's magic: everything from that segment on
    // is untrusted; everything before survives.
    let mid = &segments[segments.len() / 2];
    let mut bytes = std::fs::read(mid).expect("read segment");
    bytes[0] ^= 0xFF;
    std::fs::write(mid, &bytes).expect("write damaged segment");

    let (_, recovery) = Wal::open(dir.path(), config).expect("recovery handles a dead segment");
    let got: Vec<Event> = recovery.events.iter().map(|&(_, e)| e).collect();
    assert!(!got.is_empty());
    assert!(got.len() < events.len());
    assert_eq!(
        got[..],
        events[..got.len()],
        "prefix property holds across segments"
    );
    assert!(
        recovery.dropped_segments > 0,
        "later segments were discarded"
    );
}
