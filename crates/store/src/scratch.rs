//! Unique scratch directories for tests, benches and the `repro`
//! durability experiment (the workspace vendors its dependencies, so no
//! `tempfile` crate).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Create `"$TMPDIR/ltam-store-<tag>-<pid>-<n>"`.
    pub fn new(tag: &str) -> ScratchDir {
        let path = std::env::temp_dir().join(format!(
            "ltam-store-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create scratch dir");
        ScratchDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Keep the directory on drop (debugging aid); returns the path.
    pub fn into_path(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

/// Copy every regular file of `src` into `dst` (created if missing) —
/// clone a store directory so tests and benches can damage the copy.
pub fn copy_flat_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name()))?;
        }
    }
    Ok(())
}
