//! Tier-aware historical queries: live state within the retention
//! horizon, transparently merged with archive reads beyond it.
//!
//! The merge is sound because retention partitions history cleanly: a
//! stay (or audit record, or violation) lives in **exactly one** tier —
//! it is pruned to the archive only when it can no longer intersect the
//! live window (a stay's *exit* precedes the watermark), and a stay
//! straddling the watermark stays live. One crash window breaks the
//! partition: between a run's archive-write and the snapshot that
//! persists its prune, recovery resurrects the stranded segment's
//! records into live state while the archive also holds them. The
//! merges therefore filter the archive side by **segment provenance**:
//! a record counts only if its segment starts below the querying
//! class's live watermark — applied segments always do, while a
//! stranded segment starts exactly at the watermark and its contents
//! (including late-arriving records whose *timestamps* sit below the
//! watermark) are counted from the live side only. In steady state the
//! filter is vacuous. Union-then-sort then reproduces exactly what an
//! unpruned engine would answer; the workspace's
//! `retention_equivalence` test asserts this on a 100k-event trace
//! with a mid-trace crash.
//!
//! When the merge *cannot* be sound — the query dips below the
//! watermark and the archive does not reach it (segments deleted, or
//! retention ran without archiving) — the entry points refuse with
//! [`HistoryError::Unarchived`] instead of under-reporting. For the
//! paper's SARS contact-tracing motivation a silently shortened contact
//! list is the worst failure mode; an error the operator can see is the
//! correct one.

use crate::archive::ArchiveData;
use ltam_core::subject::SubjectId;
use ltam_engine::batch::ShardedEngine;
use ltam_engine::movement::{Contact, Stay};
use ltam_engine::Violation;
use ltam_graph::LocationId;
use ltam_time::{Interval, Time};
use std::fmt;
use std::io;

/// Why a tier-aware historical query could not answer.
#[derive(Debug)]
pub enum HistoryError {
    /// The query needs history that was pruned from live state but is
    /// not in the archive — answering from what remains would silently
    /// under-report, so the query refuses instead.
    Unarchived {
        /// The earliest chronon the query needs.
        requested: Time,
        /// Archive coverage end (exclusive); 0 for no archive at all.
        archived_to: u64,
        /// The chronon live history is complete from.
        live_from: Time,
    },
    /// The archive tier could not be read (missing, gappy, or corrupt
    /// segments — the underlying error says which).
    Io(io::Error),
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Unarchived {
                requested,
                archived_to,
                live_from,
            } => write!(
                f,
                "query needs history at t={requested}, but live history starts at t={live_from} \
                 and the archive covers only [0, {archived_to}); the gap was discarded without \
                 archiving — refusing to answer rather than under-report"
            ),
            HistoryError::Io(e) => write!(f, "archive tier unreadable: {e}"),
        }
    }
}

impl std::error::Error for HistoryError {}

impl From<io::Error> for HistoryError {
    fn from(e: io::Error) -> Self {
        HistoryError::Io(e)
    }
}

/// Every stay of `subject` still in live state (one shard holds them all).
fn live_stays_of(engine: &ShardedEngine, subject: SubjectId) -> Vec<Stay> {
    let shard = engine.shard_for(subject);
    engine.read_shard(shard, |st| st.movements().timeline(subject).to_vec())
}

/// Live presences in `location` over `window`, across all shards.
fn live_present_during(
    engine: &ShardedEngine,
    location: LocationId,
    window: Interval,
) -> Vec<(SubjectId, Interval)> {
    let mut out = Vec::new();
    for shard in 0..engine.shard_count() {
        out.extend(engine.read_shard(shard, |st| st.movements().present_during(location, window)));
    }
    out
}

/// Tier-merged whereabouts. Live answers win (a live stay straddling
/// the watermark is the latest stay that can contain `t`); the archive
/// answers only when live state has no stay containing `t`, and only
/// from applied segments (see the module docs).
pub fn merged_whereabouts(
    engine: &ShardedEngine,
    archive: Option<&ArchiveData>,
    subject: SubjectId,
    t: Time,
) -> Option<LocationId> {
    let live_from = engine.watermarks().movements;
    let shard = engine.shard_for(subject);
    engine
        .read_shard(shard, |st| st.movements().whereabouts(subject, t))
        .or_else(|| archive.and_then(|a| a.whereabouts(subject, t, live_from)))
}

/// Tier-merged presence rows, clipped to `window` and sorted by
/// `(subject, start)` — the same contract as the live query. The
/// archive side is filtered by segment provenance (a stranded
/// segment's records are counted from the live side only).
pub fn merged_present_during(
    engine: &ShardedEngine,
    archive: Option<&ArchiveData>,
    location: LocationId,
    window: Interval,
) -> Vec<(SubjectId, Interval)> {
    let live_from = engine.watermarks().movements;
    let mut out = archive
        .map(|a| a.present_during(location, window, live_from))
        .unwrap_or_default();
    out.extend(live_present_during(engine, location, window));
    out.sort_by_key(|&(s, i)| (s, i.start()));
    out
}

/// Tier-merged contact tracing: the subject's archived + live stays
/// drive the same co-location join
/// [`MovementsDb::contacts`](ltam_engine::movement::MovementsDb::contacts)
/// runs, with each exposure's presence lookup itself tier-merged (and
/// both archive sides provenance-filtered at the movements watermark).
pub fn merged_contacts(
    engine: &ShardedEngine,
    archive: Option<&ArchiveData>,
    subject: SubjectId,
    window: Interval,
) -> Vec<Contact> {
    let live_from = engine.watermarks().movements;
    let mut stays: Vec<Stay> = archive
        .map(|a| {
            a.stays_of(subject)
                .iter()
                .filter(|&&(seg_from, _)| seg_from < live_from.get())
                .map(|&(_, s)| s)
                .collect()
        })
        .unwrap_or_default();
    stays.extend(live_stays_of(engine, subject));
    let mut out = Vec::new();
    for s in &stays {
        let Some(exposure) = s.interval().intersect(window) else {
            continue;
        };
        for (other, overlap) in merged_present_during(engine, archive, s.location, exposure) {
            if other != subject {
                out.push(Contact {
                    other,
                    location: s.location,
                    overlap,
                });
            }
        }
    }
    out.sort_by_key(|c| (c.other, c.overlap.start()));
    out
}

/// Tier-merged violation report over `window` (archived first, then
/// live in shard order; compare as a multiset). The archive side is
/// provenance-filtered at the live *violations* watermark.
pub fn merged_violations(
    engine: &ShardedEngine,
    archive: Option<&ArchiveData>,
    window: Interval,
) -> Vec<Violation> {
    let live_from = engine.watermarks().violations;
    let mut out = archive
        .map(|a| a.violations_in(window, live_from))
        .unwrap_or_default();
    out.extend(
        engine
            .violations()
            .into_iter()
            .filter(|v| window.contains(v.time())),
    );
    out
}
