//! Compact binary codec for [`Event`] — the WAL record payload.
//!
//! Layout: a one-byte variant tag followed by LEB128 varints for the
//! timestamp, subject and location. A typical campus event (small ids,
//! small times) encodes in 4–8 bytes, roughly 10× smaller than its JSON
//! form, which is what makes fsync-per-batch WAL appends cheap.
//!
//! Decoding is **total**: any byte slice either decodes to an event or
//! returns a [`DecodeError`] — never a panic — so torn or bit-flipped WAL
//! tails degrade into clean truncation, not a crashed recovery. (Framing
//! corruption is normally caught by the per-record CRC first; the decoder
//! is the second line of defense.)

use ltam_core::subject::SubjectId;
use ltam_engine::batch::Event;
use ltam_graph::LocationId;
use ltam_situate::SituationOp;
use ltam_time::Time;
use std::fmt;

/// Variant tags of the binary event encoding (format version 1).
const TAG_REQUEST: u8 = 0;
const TAG_ENTER: u8 = 1;
const TAG_EXIT: u8 = 2;
const TAG_TICK: u8 = 3;

/// Sentinel first byte of a **quarantine** record payload. Deliberately
/// far outside the event tag range: a pre-quarantine decoder rejects it
/// as `BadTag` (truncating at the record, never misreading it as
/// events), and an event can never alias it.
pub const QUARANTINE_SENTINEL: u8 = 0x51;

/// Sentinel first byte of a **situation** record payload (a durable
/// [`SituationOp`]: mode declaration, responder/pin registration, or a
/// workflow-constraint edit). Same rationale as [`QUARANTINE_SENTINEL`]:
/// outside the event tag range, so older decoders truncate at the record
/// instead of misreading it. The body is the op's JSON — situation ops
/// are rare control records, so self-describing beats compact.
pub const SITUATION_SENTINEL: u8 = 0x52;

/// Why a buffer failed to decode as an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the event did.
    UnexpectedEof,
    /// The leading variant tag is not a known event kind.
    BadTag(u8),
    /// A varint ran past 10 bytes or overflowed 64 bits.
    VarintOverflow,
    /// A subject or location id exceeded its 32-bit domain.
    IdOutOfRange(u64),
    /// The event decoded cleanly but bytes remained (record framing
    /// promises exactly one event per payload).
    TrailingBytes {
        /// Bytes consumed by the event.
        consumed: usize,
        /// Total bytes in the payload.
        len: usize,
    },
    /// A situation record's JSON body did not parse as a [`SituationOp`].
    BadSituation,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::UnexpectedEof => write!(f, "buffer ended before the event did"),
            DecodeError::BadTag(t) => write!(f, "unknown event tag {t}"),
            DecodeError::VarintOverflow => write!(f, "varint overflowed 64 bits"),
            DecodeError::IdOutOfRange(v) => write!(f, "id {v} exceeds the 32-bit id domain"),
            DecodeError::TrailingBytes { consumed, len } => {
                write!(f, "{} trailing bytes after the event", len - consumed)
            }
            DecodeError::BadSituation => {
                write!(f, "situation record body is not a valid situation op")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append `v` as an LEB128 varint (the integer encoding every binary
/// format in the workspace shares: WAL payloads, archive event blocks,
/// and the `ltam-serve` wire protocol).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an LEB128 varint from `buf[*at..]`, advancing `*at`. Total like
/// [`decode_event`]: arbitrary bytes yield a value or a [`DecodeError`],
/// never a panic.
pub fn get_varint(buf: &[u8], at: &mut usize) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    for i in 0..10 {
        let &byte = buf.get(*at).ok_or(DecodeError::UnexpectedEof)?;
        *at += 1;
        let payload = (byte & 0x7F) as u64;
        // The 10th byte may only carry the final bit of a u64.
        if i == 9 && payload > 1 {
            return Err(DecodeError::VarintOverflow);
        }
        v |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeError::VarintOverflow)
}

fn get_id(buf: &[u8], at: &mut usize) -> Result<u32, DecodeError> {
    let v = get_varint(buf, at)?;
    u32::try_from(v).map_err(|_| DecodeError::IdOutOfRange(v))
}

/// Append the binary encoding of `event` to `out`.
pub fn encode_event(event: &Event, out: &mut Vec<u8>) {
    match *event {
        Event::Request {
            time,
            subject,
            location,
        } => {
            out.push(TAG_REQUEST);
            put_varint(out, time.get());
            put_varint(out, subject.0 as u64);
            put_varint(out, location.0 as u64);
        }
        Event::Enter {
            time,
            subject,
            location,
        } => {
            out.push(TAG_ENTER);
            put_varint(out, time.get());
            put_varint(out, subject.0 as u64);
            put_varint(out, location.0 as u64);
        }
        Event::Exit {
            time,
            subject,
            location,
        } => {
            out.push(TAG_EXIT);
            put_varint(out, time.get());
            put_varint(out, subject.0 as u64);
            put_varint(out, location.0 as u64);
        }
        Event::Tick { now } => {
            out.push(TAG_TICK);
            put_varint(out, now.get());
        }
    }
}

/// The binary encoding of `event` as a fresh buffer.
pub fn event_bytes(event: &Event) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_event(event, &mut out);
    out
}

/// Decode one event from the front of `buf`; returns the event and the
/// bytes consumed. Never panics: arbitrary input yields a [`DecodeError`].
pub fn decode_event(buf: &[u8]) -> Result<(Event, usize), DecodeError> {
    let mut at = 0usize;
    let &tag = buf.get(at).ok_or(DecodeError::UnexpectedEof)?;
    at += 1;
    let event = match tag {
        TAG_TICK => Event::Tick {
            now: Time(get_varint(buf, &mut at)?),
        },
        TAG_REQUEST | TAG_ENTER | TAG_EXIT => {
            let time = Time(get_varint(buf, &mut at)?);
            let subject = SubjectId(get_id(buf, &mut at)?);
            let location = LocationId(get_id(buf, &mut at)?);
            match tag {
                TAG_REQUEST => Event::Request {
                    time,
                    subject,
                    location,
                },
                TAG_ENTER => Event::Enter {
                    time,
                    subject,
                    location,
                },
                _ => Event::Exit {
                    time,
                    subject,
                    location,
                },
            }
        }
        other => return Err(DecodeError::BadTag(other)),
    };
    Ok((event, at))
}

/// Decode a payload that must contain exactly one event (the WAL record
/// contract).
pub fn decode_event_exact(buf: &[u8]) -> Result<Event, DecodeError> {
    let (event, consumed) = decode_event(buf)?;
    if consumed != buf.len() {
        return Err(DecodeError::TrailingBytes {
            consumed,
            len: buf.len(),
        });
    }
    Ok(event)
}

/// A decoded WAL record payload: either a plain ingest batch or a
/// quarantine batch (events from an under-trusted source, logged for
/// the quarantine ledger but never enforced). Both kinds occupy WAL
/// sequence numbers — one per event — so replication cursors and the
/// applied watermark advance uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordPayload {
    /// One or more concatenated events — the classic record shape.
    Events(Vec<Event>),
    /// A quarantined batch: [`QUARANTINE_SENTINEL`], then the source and
    /// its trust level as varints, then the events.
    Quarantine {
        /// The authenticated source whose events were quarantined.
        source: SubjectId,
        /// The source's trust level at ingest time.
        level: u8,
        /// The quarantined events (non-empty).
        events: Vec<Event>,
    },
    /// A durable situation op: [`SITUATION_SENTINEL`], then the op as
    /// JSON. Carries no events but still consumes one sequence number so
    /// followers replay it at the same position in the stream.
    Situation(SituationOp),
}

impl RecordPayload {
    /// The events the record carries, whichever kind it is.
    pub fn events(&self) -> &[Event] {
        match self {
            RecordPayload::Events(events) | RecordPayload::Quarantine { events, .. } => events,
            RecordPayload::Situation(_) => &[],
        }
    }

    /// Number of WAL sequence numbers the record consumes. Situation
    /// records carry no events but still take one slot: replication
    /// cursors must pass through them at a well-defined position.
    pub fn seq_count(&self) -> u64 {
        match self {
            RecordPayload::Situation(_) => 1,
            _ => self.events().len() as u64,
        }
    }
}

/// Append the quarantine-record encoding of `events` from `source` at
/// trust `level` to `out`.
pub fn encode_quarantine(source: SubjectId, level: u8, events: &[Event], out: &mut Vec<u8>) {
    out.push(QUARANTINE_SENTINEL);
    put_varint(out, source.0 as u64);
    put_varint(out, level as u64);
    for event in events {
        encode_event(event, out);
    }
}

/// Append the situation-record encoding of `op` to `out`: the sentinel
/// followed by the op's JSON.
pub fn encode_situation(op: &SituationOp, out: &mut Vec<u8>) {
    out.push(SITUATION_SENTINEL);
    let json = serde_json::to_string(op).expect("situation ops always serialize");
    out.extend_from_slice(json.as_bytes());
}

/// Decode a whole record payload — quarantine or situation if it opens
/// with the matching sentinel, a concatenated event batch otherwise.
/// Total, like every decoder here: arbitrary bytes yield a payload or a
/// [`DecodeError`], never a panic; an empty batch (of either kind) is an
/// error, matching the WAL's one-or-more-events record contract.
pub fn decode_record_payload(buf: &[u8]) -> Result<RecordPayload, DecodeError> {
    let decode_events = |buf: &[u8]| -> Result<Vec<Event>, DecodeError> {
        let mut at = 0usize;
        let mut events = Vec::new();
        while at < buf.len() {
            let (event, used) = decode_event(&buf[at..])?;
            events.push(event);
            at += used;
        }
        if events.is_empty() {
            return Err(DecodeError::UnexpectedEof);
        }
        Ok(events)
    };
    match buf.first() {
        Some(&QUARANTINE_SENTINEL) => {
            let mut at = 1usize;
            let source = get_id(buf, &mut at)?;
            let level = get_varint(buf, &mut at)?;
            let level = u8::try_from(level).map_err(|_| DecodeError::IdOutOfRange(level))?;
            let events = decode_events(&buf[at..])?;
            Ok(RecordPayload::Quarantine {
                source: SubjectId(source),
                level,
                events,
            })
        }
        Some(&SITUATION_SENTINEL) => {
            let op = std::str::from_utf8(&buf[1..])
                .ok()
                .and_then(|json| serde_json::from_str(json).ok())
                .ok_or(DecodeError::BadSituation)?;
            Ok(RecordPayload::Situation(op))
        }
        _ => Ok(RecordPayload::Events(decode_events(buf)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::Request {
                time: Time(10),
                subject: SubjectId(0),
                location: LocationId(3),
            },
            Event::Enter {
                time: Time(u64::MAX),
                subject: SubjectId(u32::MAX),
                location: LocationId(u32::MAX),
            },
            Event::Exit {
                time: Time(0),
                subject: SubjectId(1),
                location: LocationId(2),
            },
            Event::Tick { now: Time(1 << 40) },
        ]
    }

    #[test]
    fn round_trips_every_variant() {
        for e in samples() {
            let bytes = event_bytes(&e);
            assert_eq!(decode_event_exact(&bytes).unwrap(), e, "{e:?}");
        }
    }

    #[test]
    fn small_events_are_compact() {
        let e = Event::Request {
            time: Time(10),
            subject: SubjectId(0),
            location: LocationId(3),
        };
        assert_eq!(event_bytes(&e).len(), 4);
        assert_eq!(event_bytes(&Event::Tick { now: Time(5) }).len(), 2);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        for e in samples() {
            let bytes = event_bytes(&e);
            for cut in 0..bytes.len() {
                assert!(decode_event(&bytes[..cut]).is_err(), "{e:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn bad_tag_and_overflow_are_rejected() {
        assert_eq!(decode_event(&[9, 0, 0, 0]), Err(DecodeError::BadTag(9)));
        // An 11-byte continuation chain overflows.
        let overflowing = [
            TAG_TICK, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
        ];
        assert_eq!(decode_event(&overflowing), Err(DecodeError::VarintOverflow));
        // A 33-bit subject id is out of range.
        let mut buf = vec![TAG_ENTER];
        put_varint(&mut buf, 1); // time
        put_varint(&mut buf, u64::from(u32::MAX) + 1); // subject
        put_varint(&mut buf, 0); // location
        assert_eq!(
            decode_event(&buf),
            Err(DecodeError::IdOutOfRange(u64::from(u32::MAX) + 1))
        );
    }

    #[test]
    fn quarantine_payloads_round_trip_and_truncation_errors() {
        let events = samples();
        let mut buf = Vec::new();
        encode_quarantine(SubjectId(9), 3, &events, &mut buf);
        assert_eq!(
            decode_record_payload(&buf).unwrap(),
            RecordPayload::Quarantine {
                source: SubjectId(9),
                level: 3,
                events: events.clone(),
            }
        );
        // Truncation mid-event (or mid-header) always errors. A cut on
        // an event boundary decodes as a valid *shorter* quarantine
        // batch — the payload encoding is a concatenation; whole-record
        // integrity is the WAL/frame CRC's job, not the decoder's.
        let mut header = Vec::new();
        encode_quarantine(SubjectId(9), 3, &[], &mut header);
        let mut boundaries = std::collections::HashSet::new();
        let mut off = header.len();
        for e in &events[..events.len() - 1] {
            off += event_bytes(e).len();
            boundaries.insert(off);
        }
        for cut in 0..buf.len() {
            let decoded = decode_record_payload(&buf[..cut]);
            if boundaries.contains(&cut) {
                assert!(
                    matches!(decoded, Ok(RecordPayload::Quarantine { .. })),
                    "boundary cut {cut}"
                );
            } else {
                assert!(decoded.is_err(), "cut {cut}");
            }
        }
        // A plain event batch decodes as the Events kind — the sentinel
        // can never alias an event tag.
        let mut plain = Vec::new();
        for e in &events {
            encode_event(e, &mut plain);
        }
        assert_eq!(
            decode_record_payload(&plain).unwrap(),
            RecordPayload::Events(events)
        );
        // An empty quarantine batch is invalid, like an empty record.
        let mut empty = Vec::new();
        encode_quarantine(SubjectId(0), 0, &[], &mut empty);
        assert!(decode_record_payload(&empty).is_err());
    }

    #[test]
    fn situation_payloads_round_trip_and_bad_json_errors() {
        use ltam_situate::{IncidentId, SituationMode};
        let op = SituationOp::Declare(SituationMode::Emergency {
            incident: IncidentId(7),
            until: Time(500),
        });
        let mut buf = Vec::new();
        encode_situation(&op, &mut buf);
        assert_eq!(buf[0], SITUATION_SENTINEL);
        assert_eq!(
            decode_record_payload(&buf).unwrap(),
            RecordPayload::Situation(op.clone())
        );
        assert_eq!(RecordPayload::Situation(op).seq_count(), 1);
        // Any truncation breaks the JSON and is an error, never a panic.
        for cut in 0..buf.len() {
            assert!(decode_record_payload(&buf[..cut]).is_err(), "cut {cut}");
        }
        // Garbage after the sentinel is rejected, not misread.
        assert_eq!(
            decode_record_payload(&[SITUATION_SENTINEL, b'{', b'x']),
            Err(DecodeError::BadSituation)
        );
        // The two sentinels never alias each other or any event tag.
        assert_ne!(SITUATION_SENTINEL, QUARANTINE_SENTINEL);
        const { assert!(SITUATION_SENTINEL > TAG_TICK) };
    }

    #[test]
    fn trailing_bytes_are_rejected_by_exact_decode() {
        let mut bytes = event_bytes(&Event::Tick { now: Time(1) });
        bytes.push(0);
        assert!(matches!(
            decode_event_exact(&bytes),
            Err(DecodeError::TrailingBytes { .. })
        ));
    }
}
