//! A compact, self-describing binary encoding of the serde data model —
//! the payload format of version-2 snapshots.
//!
//! Snapshots were JSON (format version 1) until profiling showed the
//! text encoding dominating the snapshot stall: a mid-drill snapshot
//! serialized ~4.5 MB of JSON, and number formatting alone put the
//! whole operation at tens of milliseconds on one core. This encoding
//! writes the same [`serde::Value`] data model as tag + varint bytes:
//! roughly a third of the size, encoded at memcpy-like speed through
//! the streaming [`serde::Serializer`] path (no intermediate tree).
//!
//! ## Wire shape
//!
//! Every value is one tag byte followed by its payload:
//!
//! ```text
//! 0x00 null
//! 0x01 false            0x02 true
//! 0x03 u64              varint
//! 0x04 i64              zigzag varint
//! 0x05 f64              8 bytes LE (bit pattern, exact round-trip)
//! 0x06 str              varint byte length + UTF-8 bytes
//! 0x07 array            varint count + that many values
//! 0x08 object           varint count + (varint key length + key + value)*
//! ```
//!
//! Like the event codec, decoding is **total**: arbitrary bytes either
//! decode or return an error — no panics, no unbounded preallocation
//! from corrupt counts.

use crate::codec::{get_varint, put_varint, DecodeError};
use serde::{Deserialize, Error, Serialize, Serializer, Value};

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_U64: u8 = 0x03;
const TAG_I64: u8 = 0x04;
const TAG_F64: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_ARRAY: u8 = 0x07;
const TAG_OBJECT: u8 = 0x08;

/// Encode any serializable value to the binary form, streaming (no
/// intermediate [`Value`] tree).
pub fn encode<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut ser = BinSerializer { out: Vec::new() };
    value.serialize(&mut ser);
    ser.out
}

/// Decode a value previously produced by [`encode`]. Trailing bytes are
/// an error: the payload is exactly one value.
pub fn decode<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let mut at = 0;
    let value = decode_value(bytes, &mut at, 0)
        .map_err(|e| Error(format!("binary payload: {e:?} at offset {at}")))?;
    if at != bytes.len() {
        return Err(Error(format!(
            "binary payload: {} trailing bytes after value",
            bytes.len() - at
        )));
    }
    T::from_value(&value)
}

struct BinSerializer {
    out: Vec<u8>,
}

impl Serializer for BinSerializer {
    fn emit_null(&mut self) {
        self.out.push(TAG_NULL);
    }
    fn emit_bool(&mut self, b: bool) {
        self.out.push(if b { TAG_TRUE } else { TAG_FALSE });
    }
    fn emit_u64(&mut self, n: u64) {
        self.out.push(TAG_U64);
        put_varint(&mut self.out, n);
    }
    fn emit_i64(&mut self, n: i64) {
        self.out.push(TAG_I64);
        put_varint(&mut self.out, zigzag(n));
    }
    fn emit_f64(&mut self, n: f64) {
        self.out.push(TAG_F64);
        self.out.extend_from_slice(&n.to_le_bytes());
    }
    fn emit_str(&mut self, s: &str) {
        self.out.push(TAG_STR);
        put_varint(&mut self.out, s.len() as u64);
        self.out.extend_from_slice(s.as_bytes());
    }
    fn begin_array(&mut self, len: usize) {
        self.out.push(TAG_ARRAY);
        put_varint(&mut self.out, len as u64);
    }
    fn elem(&mut self, _index: usize) {}
    fn end_array(&mut self) {}
    fn begin_object(&mut self, len: usize) {
        self.out.push(TAG_OBJECT);
        put_varint(&mut self.out, len as u64);
    }
    fn field(&mut self, _index: usize, key: &str) {
        put_varint(&mut self.out, key.len() as u64);
        self.out.extend_from_slice(key.as_bytes());
    }
    fn end_object(&mut self) {}
}

fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(n: u64) -> i64 {
    ((n >> 1) as i64) ^ -((n & 1) as i64)
}

/// Nesting depth cap: a hostile payload of `[[[[...` tags must not
/// overflow the decoder's stack.
const MAX_DEPTH: u32 = 512;

fn get_str(bytes: &[u8], at: &mut usize) -> Result<String, DecodeError> {
    let len = get_varint(bytes, at)?;
    let len = usize::try_from(len).map_err(|_| DecodeError::VarintOverflow)?;
    let end = at.checked_add(len).ok_or(DecodeError::UnexpectedEof)?;
    if end > bytes.len() {
        return Err(DecodeError::UnexpectedEof);
    }
    let s = std::str::from_utf8(&bytes[*at..end]).map_err(|_| DecodeError::BadTag(TAG_STR))?;
    *at = end;
    Ok(s.to_string())
}

fn decode_value(bytes: &[u8], at: &mut usize, depth: u32) -> Result<Value, DecodeError> {
    if depth > MAX_DEPTH {
        return Err(DecodeError::BadTag(TAG_ARRAY));
    }
    let &tag = bytes.get(*at).ok_or(DecodeError::UnexpectedEof)?;
    *at += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_U64 => Ok(Value::U64(get_varint(bytes, at)?)),
        TAG_I64 => Ok(Value::I64(unzigzag(get_varint(bytes, at)?))),
        TAG_F64 => {
            let end = at.checked_add(8).ok_or(DecodeError::UnexpectedEof)?;
            if end > bytes.len() {
                return Err(DecodeError::UnexpectedEof);
            }
            let raw: [u8; 8] = bytes[*at..end].try_into().expect("8 bytes");
            *at = end;
            Ok(Value::F64(f64::from_le_bytes(raw)))
        }
        TAG_STR => Ok(Value::Str(get_str(bytes, at)?)),
        TAG_ARRAY => {
            let count = get_varint(bytes, at)?;
            let count = usize::try_from(count).map_err(|_| DecodeError::VarintOverflow)?;
            // Every element costs at least one tag byte, so a count
            // beyond the remaining bytes is corrupt — checked before
            // preallocating.
            if count > bytes.len() - *at {
                return Err(DecodeError::UnexpectedEof);
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_value(bytes, at, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let count = get_varint(bytes, at)?;
            let count = usize::try_from(count).map_err(|_| DecodeError::VarintOverflow)?;
            if count > bytes.len() - *at {
                return Err(DecodeError::UnexpectedEof);
            }
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                let key = get_str(bytes, at)?;
                let value = decode_value(bytes, at, depth + 1)?;
                pairs.push((key, value));
            }
            Ok(Value::Object(pairs))
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let bytes = encode(v);
        let back: Value = decode(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Value::Null);
        round_trip(&Value::Bool(true));
        round_trip(&Value::Bool(false));
        round_trip(&Value::U64(0));
        round_trip(&Value::U64(u64::MAX));
        round_trip(&Value::I64(-1));
        round_trip(&Value::I64(i64::MIN));
        round_trip(&Value::F64(3.5));
        round_trip(&Value::F64(-0.0));
        round_trip(&Value::Str("héllo → 世界".to_string()));
        round_trip(&Value::Str(String::new()));
    }

    #[test]
    fn compounds_round_trip() {
        round_trip(&Value::Array(vec![]));
        round_trip(&Value::Array(vec![
            Value::U64(1),
            Value::Str("x".into()),
            Value::Array(vec![Value::Null]),
        ]));
        round_trip(&Value::Object(vec![
            ("a".to_string(), Value::U64(7)),
            ("b".to_string(), Value::Object(vec![])),
        ]));
    }

    #[test]
    fn typed_values_round_trip() {
        let v: Vec<(u32, Option<String>)> = vec![(1, None), (2, Some("two".into()))];
        let bytes = encode(&v);
        let back: Vec<(u32, Option<String>)> = decode(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn streaming_matches_tree_emission() {
        // The streaming Serialize path and the Value-tree path must
        // produce identical bytes, or derived types (which stream)
        // would diverge from the fallback.
        let v: Vec<(i32, String)> = vec![(-5, "neg".into()), (9, "pos".into())];
        assert_eq!(encode(&v), encode(&v.to_value()));
    }

    #[test]
    fn corrupt_bytes_error_rather_than_panic() {
        assert!(decode::<Value>(&[]).is_err());
        assert!(decode::<Value>(&[0xFF]).is_err());
        assert!(decode::<Value>(&[TAG_STR, 0x05, b'a']).is_err()); // short str
        assert!(decode::<Value>(&[TAG_ARRAY, 0xFF, 0xFF, 0xFF, 0x7F]).is_err()); // absurd count
        assert!(decode::<Value>(&[TAG_U64]).is_err()); // missing varint
        let trailing = [&encode(&Value::Null)[..], &[0x00]].concat();
        assert!(decode::<Value>(&trailing).is_err());
        // Deep nesting is refused, not a stack overflow.
        let mut deep = vec![];
        for _ in 0..100_000 {
            deep.push(TAG_ARRAY);
            deep.push(1);
        }
        deep.push(TAG_NULL);
        assert!(decode::<Value>(&deep).is_err());
    }

    #[test]
    fn every_byte_flip_is_detected_or_decodes_differently() {
        // Not a CRC substitute (snapshots carry one), but decoding must
        // stay total under mutation.
        let v = Value::Object(vec![
            ("seq".to_string(), Value::U64(12345)),
            (
                "items".to_string(),
                Value::Array(vec![Value::I64(-3), Value::Str("abc".into())]),
            ),
        ]);
        let bytes = encode(&v);
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x01;
            let _ = decode::<Value>(&m); // must not panic
        }
    }
}
