//! # ltam-store — durability for the LTAM enforcement engine
//!
//! The paper's Figure 3 monitor is assumed always-on; a production
//! deployment restarts, crashes and upgrades. This crate makes the
//! sharded enforcement engine restartable **without changing its
//! enforcement semantics**:
//!
//! * [`codec`] — a compact binary codec for
//!   [`Event`](ltam_engine::batch::Event) (varint fields, total decoding:
//!   arbitrary bytes decode or error, never panic),
//! * [`crc`] — CRC-32 (IEEE) for record and snapshot integrity,
//! * [`wal`] — a segmented, append-only write-ahead log: length-prefixed
//!   CRC'd records, fsync-per-batch, byte-threshold segment rotation, and
//!   torn-tail truncation on open,
//! * [`snapshot`] — versioned, atomically-written snapshots of the full
//!   engine state (policy epoch + every shard's mutable state) stamped
//!   with the WAL position they cover,
//! * [`durable`] — [`DurableEngine`]: WAL-append before ingest, periodic
//!   snapshots, recovery (snapshot + WAL-tail replay through the normal
//!   ingest path) and compaction,
//! * [`archive`] — the cold tier: segmented, CRC'd archive files holding
//!   history that retention pruned from live state (stays, audit records,
//!   violations, raw events in the WAL codec), written atomically
//!   *before* any in-memory drop,
//! * [`history`] — tier-aware historical queries (whereabouts, presence,
//!   contact tracing, violation reports): live within the retention
//!   horizon, transparently merged with archive reads beyond it, and a
//!   loud refusal when the answer would need discarded-and-unarchived
//!   data,
//! * [`replica`] — replication building blocks: a numeric inventory of
//!   shippable store files (snapshots, archive segments, WAL segments,
//!   the epoch marker) and the follower's [`TailScanner`] — a resume
//!   state machine that verifies shipped WAL bytes record-by-record
//!   (CRC + total decoding) and can never yield a wrong-but-valid
//!   record,
//! * [`scratch`] — unique temp directories for tests and benches.
//!
//! The correctness bar, proven by the workspace's `durable_recovery`
//! tests: a crash at an **arbitrary byte offset** of the log recovers to
//! a state from which replaying the remaining trace yields the exact
//! violation multiset of an uninterrupted run.

#![warn(missing_docs)]

pub mod archive;
pub mod binval;
pub mod codec;
pub mod crc;
pub mod durable;
pub mod group;
pub mod history;
pub mod replica;
pub mod scratch;
pub mod snapshot;
pub mod wal;

pub use archive::{ArchiveData, ArchiveRunReport, ArchiveStore, LazyArchive, ARCHIVE_VERSION};
pub use codec::{
    decode_event, decode_event_exact, encode_event, event_bytes, get_varint, put_varint,
    DecodeError,
};
pub use crc::crc32;
pub use durable::{
    redistribute, DurableEngine, ReadView, RecoveryReport, RetentionOutcome, StoreConfig,
};
pub use group::{CommitHandle, GroupCommit, GroupCommitConfig};
pub use history::HistoryError;
pub use replica::{ChunkRead, ReplFile, ReplFileId, TailFault, TailScanner, TailStep};
pub use scratch::{copy_flat_dir, ScratchDir};
pub use snapshot::{SnapshotStore, StoreSnapshot, SNAPSHOT_VERSION};
pub use wal::{Wal, WalConfig, WalRecovery, WAL_VERSION};
