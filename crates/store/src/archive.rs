//! The cold archive tier: where pruned history goes when retention
//! bounds the live engine.
//!
//! ## On-disk format (version 1)
//!
//! Each retention run writes (at most) one segment
//! `arch-<from>-<to>.arch`, where `[from, to)` is the **watermark
//! range** the run advanced over: `from` is the retention watermark
//! when the records were collected, `to` the new horizon. The segment
//! holds *everything that run pruned* — which, because sensor clocks
//! are only per-subject monotone, can include late-arriving records
//! with timestamps *below* `from` (they were ingested after the
//! earlier runs pruned that era). Records at or past `to` are never
//! archived: they are still live. Segments are written atomically
//! (temp + `fsync` + rename + directory `fsync`), and their watermark
//! ranges chain contiguously from the epoch — each run starts at the
//! watermark the previous one established — so the set of segment
//! names is also the coverage index.
//!
//! ```text
//! ┌──────────────── header (44 bytes) ────────────────────────────────┐
//! │ magic "LTAR" │ version u16 LE │ reserved u16 │ from u64 │ to u64  │
//! │ events_len u64 LE │ json_len u64 LE │ crc32 u32 LE               │
//! ├──────────────── events block (events_len bytes) ──────────────────┤
//! │ pruned movement events, each framed by the WAL event codec        │
//! ├──────────────── json block (json_len bytes) ──────────────────────┤
//! │ JSON of ArchiveRecords: stays, audit, violations                  │
//! └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The CRC covers both blocks. Unlike snapshots — where a corrupt file
//! falls back to an older one — a corrupt archive segment is the *only*
//! copy of its history, so reads fail loudly (`InvalidData`) instead of
//! skipping: a query that silently ignored a rotten segment would
//! under-report contacts, which for the paper's SARS scenario is the
//! worst possible failure mode.
//!
//! Crash-repeated runs are handled by **replace-on-same-start**: a
//! crash between archive-write and the in-memory prune leaves a
//! segment whose records are still live and a watermark that never
//! advanced. The repeated run re-collects from the same watermark — a
//! superset of the stranded segment, since enforcement state recovers
//! exactly and may have ingested more — writes a fresh segment starting
//! at the same `from`, and only then deletes the superseded file, so
//! no record is ever lost or double-archived. Readers ignore a
//! superseded same-start segment if a crash strands one.

use crate::codec::{decode_event, encode_event};
use crate::crc::crc32;
use ltam_core::subject::SubjectId;
use ltam_engine::batch::Event;
use ltam_engine::movement::{MovementEvent, MovementKind, Stay};
use ltam_engine::retention::PrunedHistory;
use ltam_engine::AuditRecord;
use ltam_engine::Violation;
use ltam_time::{Interval, Time};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every archive segment.
pub const ARCHIVE_MAGIC: [u8; 4] = *b"LTAR";
/// On-disk archive format version.
pub const ARCHIVE_VERSION: u16 = 1;
/// Bytes of the archive segment header.
pub const ARCHIVE_HEADER_LEN: usize = 44;

/// The JSON half of a segment (movement events travel in the binary
/// block; see the module docs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ArchiveRecords {
    stays: Vec<(SubjectId, Stay)>,
    audit: Vec<AuditRecord>,
    violations: Vec<Violation>,
}

/// What one [`ArchiveStore::append_run`] call wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveRunReport {
    /// The retention watermark the records were collected under (the
    /// segment's chain start).
    pub from: u64,
    /// The new watermark the run advanced to (the chain end).
    pub to: u64,
    /// Records written (all classes).
    pub records: usize,
}

/// Reads and writes archive segments in a store directory.
#[derive(Debug, Clone)]
pub struct ArchiveStore {
    dir: PathBuf,
    fsync: bool,
}

fn segment_path(dir: &Path, from: u64, to: u64) -> PathBuf {
    dir.join(format!("arch-{from:020}-{to:020}.arch"))
}

fn parse_segment_name(name: &str) -> Option<(u64, u64)> {
    let body = name.strip_prefix("arch-")?.strip_suffix(".arch")?;
    let (from, to) = body.split_once('-')?;
    Some((from.parse().ok()?, to.parse().ok()?))
}

/// One `(from, to, path)` row of the segment listing.
type SegmentRow = (u64, u64, PathBuf);

fn corrupt(path: &Path, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!(
            "archive segment {} is unusable ({what}); it is the only copy of its history — \
             refusing to answer rather than under-report",
            path.display()
        ),
    )
}

impl ArchiveStore {
    /// An archive store over `dir`, `fsync`ing every written segment.
    pub fn new(dir: &Path) -> ArchiveStore {
        ArchiveStore::with_fsync(dir, true)
    }

    /// An archive store with explicit `fsync` behavior (disable only
    /// for tests; writes are still atomic via temp + rename).
    pub fn with_fsync(dir: &Path, fsync: bool) -> ArchiveStore {
        ArchiveStore {
            dir: dir.to_path_buf(),
            fsync,
        }
    }

    /// Segment files split into the **active chain** (sorted, one
    /// segment per start, largest end wins) and **superseded** files (a
    /// same-start segment a crash-repeated run replaced but whose
    /// deletion did not land). The chain must start at the epoch and
    /// each segment must start where the previous ended (anything else
    /// means segments were deleted or hand-copied — refuse rather than
    /// serve a gappy tier).
    fn scan(&self) -> io::Result<(Vec<SegmentRow>, Vec<PathBuf>)> {
        let mut all = Vec::new();
        match fs::read_dir(&self.dir) {
            Ok(entries) => {
                for entry in entries {
                    let entry = entry?;
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if let Some((from, to)) = parse_segment_name(&name) {
                        all.push((from, to, entry.path()));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        all.sort_by_key(|&(from, to, _)| (from, to));
        let mut chain: Vec<SegmentRow> = Vec::new();
        let mut superseded = Vec::new();
        for (from, to, path) in all {
            match chain.last() {
                Some(&(last_from, _, _)) if last_from == from => {
                    // Same start: the later (larger-end) segment is a
                    // superset written by a crash-repeated run.
                    let old = chain.pop().expect("non-empty");
                    superseded.push(old.2);
                    chain.push((from, to, path));
                }
                _ => chain.push((from, to, path)),
            }
        }
        let mut expect = 0u64;
        for &(from, to, ref path) in &chain {
            if from != expect || to < from {
                return Err(corrupt(
                    path,
                    &format!("coverage gap: segment starts at {from}, expected {expect}"),
                ));
            }
            expect = to;
        }
        Ok((chain, superseded))
    }

    /// The chronon the archive's watermark chain ends at (exclusive):
    /// together with live state (complete from the watermark), the
    /// tiers hold all history when this reaches the watermark. Zero for
    /// an empty archive.
    pub fn coverage_end(&self) -> io::Result<u64> {
        Ok(self.scan()?.0.last().map(|&(_, to, _)| to).unwrap_or(0))
    }

    /// Archive one retention run's records: everything pruned while
    /// advancing the watermark from `from` (the collect-time watermark)
    /// to `horizon`. Returns `None` — and writes nothing — only when
    /// `horizon <= from` (an empty advance).
    ///
    /// If the chain extends past `from` (a crash-repeated run: the
    /// stranded segment's records are still live and were re-collected,
    /// possibly alongside records ingested *after* the stranded write —
    /// which is why the write must happen even when the chain already
    /// reaches `horizon`) the new segment **replaces** the stranded
    /// one(s) — written first, superseded files deleted after — so the
    /// chain stays contiguous and no record is duplicated. An empty
    /// record set still writes an (empty) segment: chain contiguity is
    /// what lets readers prove no history is missing.
    pub fn append_run(
        &self,
        from: u64,
        horizon: u64,
        records: &PrunedHistory,
    ) -> io::Result<Option<ArchiveRunReport>> {
        if horizon <= from {
            return Ok(None);
        }
        let (chain, superseded) = self.scan()?;
        let chain_end = chain.last().map(|&(_, to, _)| to).unwrap_or(0);
        debug_assert!(
            from <= chain_end,
            "watermark {from} cannot exceed archive coverage {chain_end}"
        );
        debug_assert!(
            horizon >= chain_end,
            "a replacement covering [{from}, {horizon}) must subsume the chain end {chain_end}"
        );
        // Chain segments past the watermark are being replaced by this
        // run; already-superseded files are redundant whatever happens.
        let mut replaced: Vec<PathBuf> = chain
            .into_iter()
            .filter(|&(f, _, _)| f >= from)
            .map(|(_, _, p)| p)
            .collect();
        replaced.extend(superseded);
        // Only the upper bound filters: records at or past the horizon
        // are still live and must not be archived. Below it, anything
        // the caller pruned belongs here — including late-arriving
        // records whose (per-subject monotone) timestamps precede
        // `from`.
        let in_range = |t: Time| t.get() < horizon;
        let mut events_block = Vec::new();
        let mut written = 0usize;
        for e in &records.events {
            if in_range(e.time) {
                let kind = match e.kind {
                    MovementKind::Enter => Event::Enter {
                        time: e.time,
                        subject: e.subject,
                        location: e.location,
                    },
                    MovementKind::Exit => Event::Exit {
                        time: e.time,
                        subject: e.subject,
                        location: e.location,
                    },
                };
                encode_event(&kind, &mut events_block);
                written += 1;
            }
        }
        let json = ArchiveRecords {
            stays: records
                .stays
                .iter()
                .filter(|(_, s)| matches!(s.exit, Some(e) if in_range(e)))
                .copied()
                .collect(),
            audit: records
                .audit
                .iter()
                .filter(|r| in_range(r.request.time))
                .copied()
                .collect(),
            violations: records
                .violations
                .iter()
                .filter(|v| in_range(v.time()))
                .copied()
                .collect(),
        };
        written += json.stays.len() + json.audit.len() + json.violations.len();
        let json_block = serde_json::to_string(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let json_block = json_block.as_bytes();

        let mut bytes =
            Vec::with_capacity(ARCHIVE_HEADER_LEN + events_block.len() + json_block.len());
        bytes.extend_from_slice(&ARCHIVE_MAGIC);
        bytes.extend_from_slice(&ARCHIVE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&from.to_le_bytes());
        bytes.extend_from_slice(&horizon.to_le_bytes());
        bytes.extend_from_slice(&(events_block.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&(json_block.len() as u64).to_le_bytes());
        let mut payload = events_block;
        payload.extend_from_slice(json_block);
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!("arch-{from:020}-{horizon:020}.tmp"));
        {
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&bytes)?;
            if self.fsync {
                f.sync_data()?;
            }
        }
        fs::rename(&tmp, segment_path(&self.dir, from, horizon))?;
        if self.fsync {
            // The rename's dirent must be durable before the caller
            // prunes live state: losing it would lose the only copy.
            if let Ok(d) = fs::File::open(&self.dir) {
                d.sync_all()?;
            }
        }
        // Only after the replacement is durable may the superseded
        // same-start segments go; a crash in between leaves both, and
        // readers prefer the larger (superset) one. A same-range
        // replacement was already overwritten in place by the rename —
        // deleting that path now would delete the fresh segment.
        let new_path = segment_path(&self.dir, from, horizon);
        for stale in replaced {
            if stale != new_path {
                fs::remove_file(stale)?;
            }
        }
        Ok(Some(ArchiveRunReport {
            from,
            to: horizon,
            records: written,
        }))
    }

    /// Load every active segment into one queryable [`ArchiveData`].
    /// Any unusable segment (bad header, CRC mismatch, undecodable
    /// record) fails the whole load — see the module docs for why the
    /// archive never skips damage.
    ///
    /// Loads the whole tier eagerly; live query paths go through
    /// [`LazyArchive`] instead, which loads (and caches) only the
    /// segments a query can actually touch.
    pub fn load(&self) -> io::Result<ArchiveData> {
        let chain = self.scan()?.0;
        let mut data = ArchiveData {
            covered_to: chain.last().map(|&(_, to, _)| to).unwrap_or(0),
            ..ArchiveData::default()
        };
        for &(from, to, ref path) in &chain {
            let seg = read_segment(path, from, to)?;
            merge_segment(&mut data, from, seg);
        }
        data.sort_indexes();
        Ok(data)
    }
}

/// Fold one segment's records into `data` (indexes left unsorted; call
/// [`ArchiveData::sort_indexes`] after the last merge).
fn merge_segment(data: &mut ArchiveData, from: u64, seg: SegmentData) {
    for (s, stay) in seg.stays {
        data.stays.entry(s).or_default().push((from, stay));
        data.by_location
            .entry(stay.location)
            .or_default()
            .push((from, s, stay));
    }
    data.audit.extend(seg.audit);
    data.violations
        .extend(seg.violations.into_iter().map(|v| (from, v)));
    data.events.extend(seg.events);
}

/// The archive tier with per-segment lazy loading: the chain is scanned
/// once (file names only — that is the coverage index), and a segment's
/// *payload* is read and cached only when a query's window can touch
/// it. Huge archives therefore cost a directory listing until someone
/// actually asks about the deep past.
///
/// Which segments can a query over `[needs_from, …)` touch? **Not**
/// just those whose watermark range intersects the window naively:
/// sensor clocks are only per-subject monotone, so a segment
/// `[from, to)` may hold *late-arriving* records with timestamps below
/// `from` (they were ingested after earlier runs pruned that era). Its
/// records are bounded above by `to` only. A segment is therefore
/// needed when
///
/// * `to > needs_from` — it can hold records at or past the query's
///   lower edge (no segment can hold records at or past its own `to`,
///   so segments wholly below the window stay cold), and
/// * `from < applied_below` — the querying class's live watermark; a
///   segment starting at or past it is *stranded* (its prune never
///   applied, recovery resurrected its records into live state) and
///   every record it holds would be filtered by the provenance check
///   anyway, so it never needs loading.
///
/// Loaded segments accumulate monotonically: classes with different
/// watermarks share one cache, and loading a superset is always sound
/// because the per-record provenance filter still applies at query
/// time.
#[derive(Debug, Default)]
pub struct LazyArchive {
    /// Scanned chain rows, cached after the first scan.
    chain: Option<Vec<SegmentRow>>,
    /// Chain starts whose payloads are merged into `data`.
    loaded: std::collections::BTreeSet<u64>,
    data: ArchiveData,
}

impl LazyArchive {
    /// A cold cache (nothing scanned, nothing loaded).
    pub fn new() -> LazyArchive {
        LazyArchive::default()
    }

    /// Drop everything; the next query rescans and reloads. Call after
    /// any retention run (it may have appended or replaced segments).
    pub fn invalidate(&mut self) {
        *self = LazyArchive::default();
    }

    /// Chain coverage end (exclusive), scanning the directory on first
    /// use. This never reads segment payloads.
    pub fn coverage_end(&mut self, store: &ArchiveStore) -> io::Result<u64> {
        Ok(self
            .ensure_chain(store)?
            .last()
            .map(|&(_, to, _)| to)
            .unwrap_or(0))
    }

    /// Segments whose payloads are currently cached (tests and the
    /// status surface use this to prove laziness).
    pub fn segments_loaded(&self) -> usize {
        self.loaded.len()
    }

    fn ensure_chain(&mut self, store: &ArchiveStore) -> io::Result<&[SegmentRow]> {
        if self.chain.is_none() {
            let (chain, _) = store.scan()?;
            self.data.covered_to = chain.last().map(|&(_, to, _)| to).unwrap_or(0);
            self.chain = Some(chain);
        }
        Ok(self.chain.as_deref().expect("just scanned"))
    }

    /// The archive view for a query reaching down to `needs_from`,
    /// with `applied_below` the querying class's live watermark (see
    /// the type docs for the segment-selection rule). Segments needed
    /// but not yet cached are read now; a corrupt or gappy chain fails
    /// loudly, exactly like [`ArchiveStore::load`].
    pub fn view_for(
        &mut self,
        store: &ArchiveStore,
        needs_from: Time,
        applied_below: Time,
    ) -> io::Result<&ArchiveData> {
        self.ensure_chain(store)?;
        let needed: Vec<SegmentRow> = self
            .chain
            .as_deref()
            .expect("chain scanned")
            .iter()
            .filter(|&&(from, to, _)| {
                to > needs_from.get() && from < applied_below.get() && !self.loaded.contains(&from)
            })
            .cloned()
            .collect();
        let mut merged_any = false;
        for (from, to, path) in needed {
            let seg = read_segment(&path, from, to)?;
            merge_segment(&mut self.data, from, seg);
            self.loaded.insert(from);
            merged_any = true;
        }
        if merged_any {
            self.data.sort_indexes();
        }
        Ok(&self.data)
    }
}

struct SegmentData {
    stays: Vec<(SubjectId, Stay)>,
    audit: Vec<AuditRecord>,
    violations: Vec<Violation>,
    events: Vec<MovementEvent>,
}

fn read_segment(path: &Path, expected_from: u64, expected_to: u64) -> io::Result<SegmentData> {
    let bytes = fs::read(path)?;
    if bytes.len() < ARCHIVE_HEADER_LEN || bytes[0..4] != ARCHIVE_MAGIC {
        return Err(corrupt(path, "bad magic or truncated header"));
    }
    if u16::from_le_bytes([bytes[4], bytes[5]]) != ARCHIVE_VERSION {
        return Err(corrupt(path, "unknown format version"));
    }
    let from = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let to = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    if from != expected_from || to != expected_to {
        return Err(corrupt(path, "header range disagrees with the file name"));
    }
    let events_len = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    let json_len = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(bytes[40..44].try_into().expect("4 bytes"));
    // Corrupted length fields can hold anything; all arithmetic checked.
    let total = usize::try_from(events_len)
        .ok()
        .zip(usize::try_from(json_len).ok())
        .and_then(|(e, j)| e.checked_add(j))
        .and_then(|p| p.checked_add(ARCHIVE_HEADER_LEN));
    let Some(total) = total else {
        return Err(corrupt(path, "length fields overflow"));
    };
    if bytes.len() != total {
        return Err(corrupt(path, "payload length disagrees with the file size"));
    }
    let payload = &bytes[ARCHIVE_HEADER_LEN..];
    if crc32(payload) != crc {
        return Err(corrupt(path, "CRC mismatch"));
    }
    let (events_block, json_block) = payload.split_at(events_len as usize);
    let mut events = Vec::new();
    let mut at = 0usize;
    while at < events_block.len() {
        let (event, used) = decode_event(&events_block[at..])
            .map_err(|e| corrupt(path, &format!("undecodable event record: {e}")))?;
        at += used;
        let movement = match event {
            Event::Enter {
                time,
                subject,
                location,
            } => MovementEvent {
                time,
                subject,
                location,
                kind: MovementKind::Enter,
            },
            Event::Exit {
                time,
                subject,
                location,
            } => MovementEvent {
                time,
                subject,
                location,
                kind: MovementKind::Exit,
            },
            other => {
                return Err(corrupt(
                    path,
                    &format!("non-movement event {other:?} in the events block"),
                ))
            }
        };
        events.push(movement);
    }
    let text = std::str::from_utf8(json_block).map_err(|_| corrupt(path, "non-UTF-8 JSON"))?;
    let records: ArchiveRecords =
        serde_json::from_str(text).map_err(|e| corrupt(path, &format!("bad JSON: {e}")))?;
    Ok(SegmentData {
        stays: records.stays,
        audit: records.audit,
        violations: records.violations,
        events,
    })
}

/// The archive tier, loaded and indexed for queries. Produced by
/// [`ArchiveStore::load`]; every stay in here is *closed* (only closed
/// stays are ever pruned), and every record carries the chain start of
/// the segment it came from.
///
/// Every query takes an `applied_below` bound — the querying class's
/// **live watermark** — and ignores records from segments starting at
/// or past it. The segment start is the exact "was this prune ever
/// applied?" discriminator: an applied segment's start is always below
/// the watermark its apply advanced, while a *stranded* segment (its
/// run crashed between archive-write and the snapshot persisting the
/// prune) starts exactly at the watermark, and recovery has resurrected
/// its entire contents — including late-arriving records whose
/// timestamps predate the watermark — into live state. Filtering by
/// record *time* would miss those; filtering by segment start never
/// does. In steady state every segment is applied and the bound is
/// vacuous. Pass [`Time::MAX`] to read the archive standalone.
#[derive(Debug, Clone, Default)]
pub struct ArchiveData {
    /// Watermark-chain end (exclusive): when this reaches the live
    /// watermark, the two tiers together hold all history ever
    /// recorded.
    pub covered_to: u64,
    /// Archived `(segment start, stay)` rows per subject,
    /// chronological by enter time.
    pub stays: BTreeMap<SubjectId, Vec<(u64, Stay)>>,
    /// The same stays indexed by location (presence/contact joins scan
    /// one location, not the whole archive), sorted by subject.
    #[allow(clippy::type_complexity)]
    pub by_location: BTreeMap<ltam_graph::LocationId, Vec<(u64, SubjectId, Stay)>>,
    /// Archived audit records.
    pub audit: Vec<AuditRecord>,
    /// Archived `(segment start, violation)` rows.
    pub violations: Vec<(u64, Violation)>,
    /// Archived raw movement events (the pruned slice of the log).
    pub events: Vec<MovementEvent>,
}

/// The segment-provenance filter (see [`ArchiveData`]): a record
/// counts only if its segment's prune was applied before the querying
/// class's watermark.
fn applied(seg_from: u64, applied_below: Time) -> bool {
    seg_from < applied_below.get()
}

impl ArchiveData {
    /// True if the archive covers chronon `t`.
    pub fn covers(&self, t: Time) -> bool {
        t.get() < self.covered_to
    }

    /// Restore the query-order invariants after merging segments:
    /// late-arriving records mean a later segment can hold a stay that
    /// predates an earlier segment's, so each subject's vector sorts by
    /// enter time (queries binary-search it) and the per-location index
    /// (what presence/contact joins scan) sorts by subject to match the
    /// live query's output order.
    pub fn sort_indexes(&mut self) {
        for stays in self.stays.values_mut() {
            stays.sort_by_key(|&(_, s)| (s.enter, s.exit));
        }
        for stays in self.by_location.values_mut() {
            stays.sort_by_key(|&(_, s, stay)| (s, stay.enter));
        }
    }

    /// Archived `(segment start, stay)` rows of one subject. Callers
    /// merging with live state must skip rows whose segment start is at
    /// or past the movements watermark (stranded: those stays are live).
    pub fn stays_of(&self, subject: SubjectId) -> &[(u64, Stay)] {
        self.stays.get(&subject).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Where `subject` was at `t`, per applied archived stays (mirrors
    /// [`ltam_engine::movement::MovementsDb::whereabouts`]: the latest
    /// stay containing `t` wins).
    pub fn whereabouts(
        &self,
        subject: SubjectId,
        t: Time,
        applied_below: Time,
    ) -> Option<ltam_graph::LocationId> {
        let stays = self.stays.get(&subject)?;
        let idx = stays.partition_point(|&(_, s)| s.enter <= t);
        stays[..idx]
            .iter()
            .rev()
            .filter(|&&(f, _)| applied(f, applied_below))
            .find(|(_, s)| s.interval().contains(t))
            .map(|(_, s)| s.location)
    }

    /// Applied archived presences in `location` overlapping `window`,
    /// clipped, sorted by `(subject, start)` (mirrors the live query).
    pub fn present_during(
        &self,
        location: ltam_graph::LocationId,
        window: Interval,
        applied_below: Time,
    ) -> Vec<(SubjectId, Interval)> {
        let mut out = Vec::new();
        for &(f, subject, s) in self.by_location.get(&location).into_iter().flatten() {
            if !applied(f, applied_below) {
                continue;
            }
            if let Some(overlap) = s.interval().intersect(window) {
                out.push((subject, overlap));
            }
        }
        out.sort_by_key(|&(s, i)| (s, i.start()));
        out
    }

    /// Applied archived violations inside `window`.
    pub fn violations_in(&self, window: Interval, applied_below: Time) -> Vec<Violation> {
        self.violations
            .iter()
            .filter(|&&(f, v)| applied(f, applied_below) && window.contains(v.time()))
            .map(|&(_, v)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use ltam_graph::LocationId;

    fn history(times: &[(u64, u64)]) -> PrunedHistory {
        // One closed stay (and its two events) per (enter, exit) pair,
        // all for subject 1 in location 2, plus one violation at each
        // exit time.
        let s = SubjectId(1);
        let l = LocationId(2);
        let mut out = PrunedHistory::default();
        for &(a, b) in times {
            out.stays.push((
                s,
                Stay {
                    location: l,
                    enter: Time(a),
                    exit: Some(Time(b)),
                },
            ));
            out.events.push(MovementEvent {
                time: Time(a),
                subject: s,
                location: l,
                kind: MovementKind::Enter,
            });
            out.events.push(MovementEvent {
                time: Time(b),
                subject: s,
                location: l,
                kind: MovementKind::Exit,
            });
            out.violations.push(Violation::UnauthorizedEntry {
                time: Time(a),
                subject: s,
                location: l,
            });
        }
        out
    }

    #[test]
    fn append_and_load_round_trip() {
        let dir = ScratchDir::new("arch-roundtrip");
        let store = ArchiveStore::with_fsync(dir.path(), false);
        assert_eq!(store.coverage_end().unwrap(), 0);
        let report = store
            .append_run(0, 50, &history(&[(5, 10), (20, 30)]))
            .unwrap();
        assert_eq!(
            report,
            Some(ArchiveRunReport {
                from: 0,
                to: 50,
                records: 8 // 4 events + 2 stays + 2 violations
            })
        );
        let data = store.load().unwrap();
        assert_eq!(data.covered_to, 50);
        assert!(data.covers(Time(49)) && !data.covers(Time(50)));
        assert_eq!(data.stays_of(SubjectId(1)).len(), 2);
        assert_eq!(
            data.whereabouts(SubjectId(1), Time(7), Time::MAX),
            Some(LocationId(2))
        );
        assert_eq!(data.whereabouts(SubjectId(1), Time(15), Time::MAX), None);
        // A watermark at the segment's start marks it stranded (its
        // prune never applied): the provenance filter excludes it.
        assert_eq!(data.whereabouts(SubjectId(1), Time(7), Time(0)), None);
        assert_eq!(data.events.len(), 4);
        assert_eq!(data.violations_in(Interval::lit(0, 10), Time::MAX).len(), 1);
        assert_eq!(data.violations_in(Interval::lit(0, 10), Time(0)).len(), 0);
        let rows = data.present_during(LocationId(2), Interval::lit(8, 25), Time::MAX);
        assert_eq!(
            rows,
            vec![
                (SubjectId(1), Interval::lit(8, 10)),
                (SubjectId(1), Interval::lit(20, 25)),
            ]
        );
    }

    #[test]
    fn crash_repeated_runs_replace_without_duplicating() {
        let dir = ScratchDir::new("arch-idempotent");
        let store = ArchiveStore::with_fsync(dir.path(), false);
        let upto50 = history(&[(5, 10), (20, 30)]);
        assert!(store.append_run(0, 50, &upto50).unwrap().is_some());
        // Crash-repeat at the same horizon: the stranded segment is
        // replaced by an identical one (live state may have gained
        // records since the stranded write, so the rewrite is never
        // skipped) — still exactly one copy of everything.
        assert!(store.append_run(0, 50, &upto50).unwrap().is_some());
        assert_eq!(store.load().unwrap().stays_of(SubjectId(1)).len(), 2);
        // An empty advance writes nothing.
        assert_eq!(store.append_run(50, 50, &upto50).unwrap(), None);
        // Crash-repeat flavor 2: the prune never applied (watermark
        // still 0), the repeated run collected a superset — including a
        // LATE-ARRIVING stay whose timestamps precede the stranded
        // segment's end — and advances further. The same-start segment
        // is replaced; nothing is lost or duplicated.
        let superset = history(&[(5, 10), (20, 30), (12, 15), (60, 70)]);
        let r = store.append_run(0, 100, &superset).unwrap().unwrap();
        assert_eq!((r.from, r.to), (0, 100));
        assert_eq!(r.records, 16, "all four stays travel in the replacement");
        let data = store.load().unwrap();
        assert_eq!(data.covered_to, 100);
        assert_eq!(data.stays_of(SubjectId(1)).len(), 4, "no duplicates");
        assert_eq!(data.violations.len(), 4);
        // Exactly one segment file remains.
        let files = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".arch"))
            .count();
        assert_eq!(files, 1);
    }

    #[test]
    fn a_stranded_superseded_segment_is_ignored_by_readers() {
        let dir = ScratchDir::new("arch-stranded");
        let store = ArchiveStore::with_fsync(dir.path(), false);
        store.append_run(0, 50, &history(&[(5, 10)])).unwrap();
        // Keep a copy of the soon-to-be-superseded segment, as a crash
        // between replacement-write and stale-delete would.
        let old = segment_path(dir.path(), 0, 50);
        let bytes = std::fs::read(&old).unwrap();
        store
            .append_run(0, 80, &history(&[(5, 10), (20, 30)]))
            .unwrap();
        std::fs::write(&old, &bytes).unwrap(); // the crash strands it
        assert_eq!(store.coverage_end().unwrap(), 80);
        let data = store.load().unwrap();
        assert_eq!(data.covered_to, 80);
        assert_eq!(data.stays_of(SubjectId(1)).len(), 2, "superset wins, once");
        // The next run cleans the stranded file up.
        store
            .append_run(0, 90, &history(&[(5, 10), (20, 30)]))
            .unwrap();
        let files = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".arch"))
            .count();
        assert_eq!(files, 1);
    }

    #[test]
    fn records_at_or_past_the_horizon_are_never_archived() {
        let dir = ScratchDir::new("arch-upper");
        let store = ArchiveStore::with_fsync(dir.path(), false);
        // The (60, 70) stay is still live at horizon 50; only the two
        // earlier stays (and their records) are archived.
        let r = store
            .append_run(0, 50, &history(&[(5, 10), (20, 30), (60, 70)]))
            .unwrap()
            .unwrap();
        assert_eq!(r.records, 8);
        assert_eq!(store.load().unwrap().stays_of(SubjectId(1)).len(), 2);
    }

    #[test]
    fn empty_runs_keep_coverage_contiguous() {
        let dir = ScratchDir::new("arch-empty");
        let store = ArchiveStore::with_fsync(dir.path(), false);
        store
            .append_run(0, 10, &PrunedHistory::default())
            .unwrap()
            .unwrap();
        store
            .append_run(10, 20, &PrunedHistory::default())
            .unwrap()
            .unwrap();
        assert_eq!(store.coverage_end().unwrap(), 20);
        assert_eq!(store.load().unwrap().covered_to, 20);
    }

    #[test]
    fn corrupt_segment_fails_loudly_not_silently() {
        let dir = ScratchDir::new("arch-corrupt");
        let store = ArchiveStore::with_fsync(dir.path(), false);
        store.append_run(0, 50, &history(&[(5, 10)])).unwrap();
        let seg = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".arch"))
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&seg, &bytes).unwrap();
        let err = store.load().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("refusing"), "{err}");
        // Truncation is caught too.
        std::fs::write(&seg, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.load().is_err());
    }

    #[test]
    fn lazy_archive_loads_only_touched_segments() {
        let dir = ScratchDir::new("arch-lazy");
        let store = ArchiveStore::with_fsync(dir.path(), false);
        store.append_run(0, 50, &history(&[(5, 10)])).unwrap();
        store.append_run(50, 100, &history(&[(60, 70)])).unwrap();
        store.append_run(100, 150, &history(&[(110, 120)])).unwrap();

        let mut lazy = LazyArchive::new();
        assert_eq!(lazy.coverage_end(&store).unwrap(), 150);
        assert_eq!(lazy.segments_loaded(), 0, "coverage is a directory listing");

        // A query reaching down to t=110 touches only the last segment.
        let loc = lazy
            .view_for(&store, Time(110), Time::MAX)
            .unwrap()
            .whereabouts(SubjectId(1), Time(115), Time::MAX);
        assert_eq!(loc, Some(LocationId(2)));
        assert_eq!(lazy.segments_loaded(), 1);

        // Reaching down to t=55 adds the middle one — never the first.
        lazy.view_for(&store, Time(55), Time::MAX).unwrap();
        assert_eq!(lazy.segments_loaded(), 2);

        // A whole-history query loads everything; the merged view then
        // answers across segments.
        let stays = lazy
            .view_for(&store, Time::ZERO, Time::MAX)
            .unwrap()
            .stays_of(SubjectId(1))
            .len();
        assert_eq!(stays, 3);
        assert_eq!(lazy.segments_loaded(), 3);

        // Stranded segments (start at or past the class watermark)
        // never load: their records live in the live tier.
        let mut cold = LazyArchive::new();
        cold.view_for(&store, Time::ZERO, Time(100)).unwrap();
        assert_eq!(cold.segments_loaded(), 2);

        lazy.invalidate();
        assert_eq!(lazy.segments_loaded(), 0);
    }

    #[test]
    fn lazy_archive_never_misses_late_arriving_records() {
        let dir = ScratchDir::new("arch-lazy-late");
        let store = ArchiveStore::with_fsync(dir.path(), false);
        store.append_run(0, 50, &history(&[(5, 10)])).unwrap();
        // The (20, 30) stay arrived late: it was pruned by the run that
        // advanced [50, 100), so it lives in that segment despite its
        // timestamps sitting below 50.
        store
            .append_run(50, 100, &history(&[(20, 30), (60, 70)]))
            .unwrap();
        let mut lazy = LazyArchive::new();
        // A query at t=25 must load the [50, 100) segment too — the
        // selection rule keys on each segment's *end* (records are
        // bounded above by it, not below by its start).
        let loc = lazy
            .view_for(&store, Time(25), Time::MAX)
            .unwrap()
            .whereabouts(SubjectId(1), Time(25), Time::MAX);
        assert_eq!(loc, Some(LocationId(2)), "late-arriving stay found");
        assert_eq!(lazy.segments_loaded(), 2);
    }

    #[test]
    fn lazy_archive_fails_loudly_only_when_a_touched_segment_is_corrupt() {
        let dir = ScratchDir::new("arch-lazy-corrupt");
        let store = ArchiveStore::with_fsync(dir.path(), false);
        store.append_run(0, 50, &history(&[(5, 10)])).unwrap();
        store.append_run(50, 100, &history(&[(60, 70)])).unwrap();
        // Rot the FIRST segment.
        let seg = segment_path(dir.path(), 0, 50);
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&seg, &bytes).unwrap();
        let mut lazy = LazyArchive::new();
        // Recent queries never touch the rotten segment and still work…
        assert!(lazy.view_for(&store, Time(60), Time::MAX).is_ok());
        // …but a query that needs it refuses rather than under-report.
        let err = lazy.view_for(&store, Time(5), Time::MAX).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn a_deleted_segment_is_a_detected_gap() {
        let dir = ScratchDir::new("arch-gap");
        let store = ArchiveStore::with_fsync(dir.path(), false);
        store.append_run(0, 10, &history(&[(1, 2)])).unwrap();
        store.append_run(10, 20, &history(&[(12, 15)])).unwrap();
        std::fs::remove_file(segment_path(dir.path(), 0, 10)).unwrap();
        let err = store.coverage_end().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("coverage gap"), "{err}");
    }
}
