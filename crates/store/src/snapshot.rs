//! Versioned on-disk snapshots of the full engine state.
//!
//! ## On-disk format (version 1)
//!
//! A snapshot file `snap-<seq>.snap` is:
//!
//! ```text
//! ┌──────────────── header (28 bytes) ────────────────────────────────┐
//! │ magic "LTSN" │ version u16 LE │ reserved u16 │ seq u64 LE         │
//! │ payload_len u64 LE │ crc32 u32 LE                                 │
//! ├──────────────── payload ──────────────────────────────────────────┤
//! │ JSON of StoreSnapshot (payload_len bytes)                         │
//! └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! `seq` is the number of WAL events already **applied** to the captured
//! state: recovery loads the snapshot and replays WAL records with
//! sequence numbers `>= seq`. The CRC covers the payload; a snapshot that
//! fails any header or CRC check is skipped, and [`SnapshotStore`] keeps
//! the previous snapshot around precisely so a crash mid-write (already
//! mitigated by write-to-temp-then-rename) or a corrupted newest file
//! falls back to the older one.

use crate::crc::crc32;
use ltam_engine::batch::PolicyImage;
use ltam_engine::shard::ShardStateImage;
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"LTSN";
/// On-disk snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;
/// Bytes of the snapshot header.
pub const SNAPSHOT_HEADER_LEN: usize = 28;
/// Valid snapshots kept on disk (newest first); older ones are pruned.
pub const SNAPSHOTS_KEPT: usize = 2;

/// A point-in-time image of a whole
/// [`ShardedEngine`](ltam_engine::batch::ShardedEngine): the policy
/// epoch plus every shard's mutable state, stamped with the WAL position
/// it covers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// WAL events applied to this state (replay resumes here).
    pub seq: u64,
    /// Policy edits acknowledged up to this state. Recovery compares
    /// this against the store's policy-epoch marker: falling back to a
    /// snapshot with a *smaller* epoch would silently revert an
    /// acknowledged policy change, so it is refused instead.
    pub policy_epoch: u64,
    /// Shard count the states were captured under.
    pub shards: usize,
    /// The read-mostly policy epoch.
    pub policy: PolicyImage,
    /// Per-shard mutable state, in shard order (`states.len() == shards`).
    pub states: Vec<ShardStateImage>,
}

/// Reads and writes [`StoreSnapshot`]s in a store directory.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    fsync: bool,
}

fn snapshot_path(dir: &Path, seq: u64, epoch: u64) -> PathBuf {
    // Both coordinates go in the name: policy edits snapshot without
    // advancing `seq`, and keying by seq alone would overwrite the
    // previous snapshot in place — collapsing the keep-2 fallback to a
    // single file.
    dir.join(format!("snap-{seq:020}-{epoch:010}.snap"))
}

fn parse_snapshot_name(name: &str) -> Option<(u64, u64)> {
    let body = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    let (seq, epoch) = body.split_once('-')?;
    Some((seq.parse().ok()?, epoch.parse().ok()?))
}

impl SnapshotStore {
    /// A snapshot store over `dir` (created on first write), `fsync`ing
    /// every written snapshot.
    pub fn new(dir: &Path) -> SnapshotStore {
        SnapshotStore::with_fsync(dir, true)
    }

    /// A snapshot store with explicit `fsync` behavior (disable only for
    /// benchmarks and tests; writes are still atomic via temp + rename).
    pub fn with_fsync(dir: &Path, fsync: bool) -> SnapshotStore {
        SnapshotStore {
            dir: dir.to_path_buf(),
            fsync,
        }
    }

    /// Snapshot files present in `dir`, newest first — by `(seq, epoch)`,
    /// both of which are nondecreasing over a store's lifetime.
    fn listing(&self) -> io::Result<Vec<(u64, u64, PathBuf)>> {
        let mut out = Vec::new();
        match fs::read_dir(&self.dir) {
            Ok(entries) => {
                for entry in entries {
                    let entry = entry?;
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if let Some((seq, epoch)) = parse_snapshot_name(&name) {
                        out.push((seq, epoch, entry.path()));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        out.sort_by_key(|&(seq, epoch, _)| std::cmp::Reverse((seq, epoch)));
        Ok(out)
    }

    /// True if the directory holds at least one snapshot file (valid or
    /// not) — used to refuse `create` over an existing store.
    pub fn any_present(&self) -> io::Result<bool> {
        Ok(!self.listing()?.is_empty())
    }

    /// The sequence of the **oldest** snapshot file still on disk (by
    /// filename, validity not checked). WAL compaction must not pass
    /// this point: if the newest snapshot later turns out corrupt,
    /// recovery falls back to an older one and needs the WAL records
    /// between the two.
    pub fn oldest_retained_seq(&self) -> io::Result<Option<u64>> {
        Ok(self.listing()?.last().map(|&(seq, _, _)| seq))
    }

    /// Serialize and durably write `snapshot`, then prune old snapshots
    /// down to [`SNAPSHOTS_KEPT`]. Returns the written path.
    ///
    /// The write is atomic: payload goes to a temp file which is fsynced
    /// and renamed into place, then the directory is fsynced, so a crash
    /// leaves either the old listing or the new one — never a half
    /// snapshot under the final name.
    pub fn write(&self, snapshot: &StoreSnapshot) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let payload = serde_json::to_string(snapshot)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let payload = payload.as_bytes();
        let mut bytes = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len());
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&snapshot.seq.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);

        let tmp = self.dir.join(format!(
            "snap-{:020}-{:010}.tmp",
            snapshot.seq, snapshot.policy_epoch
        ));
        {
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&bytes)?;
            if self.fsync {
                f.sync_data()?;
            }
        }
        let path = snapshot_path(&self.dir, snapshot.seq, snapshot.policy_epoch);
        fs::rename(&tmp, &path)?;
        if self.fsync {
            // Propagate directory-fsync failures: callers ack durability
            // on Ok, so a swallowed error here could lose the rename's
            // dirent to a power cut after the ack.
            if let Ok(d) = File::open(&self.dir) {
                d.sync_all()?;
            }
        }
        self.prune()?;
        Ok(path)
    }

    fn prune(&self) -> io::Result<()> {
        for (_, _, path) in self.listing()?.into_iter().skip(SNAPSHOTS_KEPT) {
            fs::remove_file(path)?;
        }
        Ok(())
    }

    /// Load the newest snapshot that passes every integrity check, or
    /// `None` if the directory holds no usable snapshot. Corrupt files
    /// are skipped, not deleted (operators may want the evidence).
    pub fn load_latest(&self) -> io::Result<Option<StoreSnapshot>> {
        for (seq, epoch, path) in self.listing()? {
            if let Some(snap) = read_snapshot(&path, seq, epoch)? {
                return Ok(Some(snap));
            }
        }
        Ok(None)
    }
}

/// Parse and validate one snapshot file; `None` if any check fails.
fn read_snapshot(
    path: &Path,
    expected_seq: u64,
    expected_epoch: u64,
) -> io::Result<Option<StoreSnapshot>> {
    let bytes = fs::read(path)?;
    if bytes.len() < SNAPSHOT_HEADER_LEN
        || bytes[0..4] != SNAPSHOT_MAGIC
        || u16::from_le_bytes([bytes[4], bytes[5]]) != SNAPSHOT_VERSION
    {
        return Ok(None);
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    if seq != expected_seq {
        return Ok(None);
    }
    // A corrupted length field can hold anything up to u64::MAX; all
    // arithmetic on it must be checked or the fallback path would panic.
    let Some(end) = usize::try_from(len)
        .ok()
        .and_then(|len| SNAPSHOT_HEADER_LEN.checked_add(len))
    else {
        return Ok(None);
    };
    let Some(payload) = bytes.get(SNAPSHOT_HEADER_LEN..end) else {
        return Ok(None);
    };
    if bytes.len() != end || crc32(payload) != crc {
        return Ok(None);
    }
    let Ok(text) = std::str::from_utf8(payload) else {
        return Ok(None);
    };
    match serde_json::from_str::<StoreSnapshot>(text) {
        Ok(snap)
            if snap.seq == seq
                && snap.policy_epoch == expected_epoch
                && snap.states.len() == snap.shards =>
        {
            Ok(Some(snap))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use ltam_engine::batch::PolicyCore;
    use ltam_engine::shard::ShardState;
    use ltam_graph::examples::ntu_campus;

    fn snapshot(seq: u64) -> StoreSnapshot {
        let core = PolicyCore::new(ntu_campus().model);
        StoreSnapshot {
            seq,
            policy_epoch: 0,
            shards: 2,
            policy: core.image(),
            states: vec![ShardState::new().image(), ShardState::new().image()],
        }
    }

    #[test]
    fn write_load_round_trip() {
        let dir = ScratchDir::new("snap-roundtrip");
        let store = SnapshotStore::new(dir.path());
        assert!(store.load_latest().unwrap().is_none());
        store.write(&snapshot(42)).unwrap();
        let back = store.load_latest().unwrap().unwrap();
        assert_eq!(back.seq, 42);
        assert_eq!(back.shards, 2);
        assert_eq!(back.states.len(), 2);
    }

    #[test]
    fn newest_valid_snapshot_wins_and_pruning_keeps_two() {
        let dir = ScratchDir::new("snap-prune");
        let store = SnapshotStore::new(dir.path());
        for seq in [10, 20, 30] {
            store.write(&snapshot(seq)).unwrap();
        }
        assert_eq!(store.load_latest().unwrap().unwrap().seq, 30);
        let files: Vec<_> = fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
            .collect();
        assert_eq!(files.len(), SNAPSHOTS_KEPT);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = ScratchDir::new("snap-fallback");
        let store = SnapshotStore::new(dir.path());
        store.write(&snapshot(10)).unwrap();
        let newest = store.write(&snapshot(20)).unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        assert_eq!(store.load_latest().unwrap().unwrap().seq, 10);
    }

    #[test]
    fn truncated_newest_falls_back_to_previous() {
        let dir = ScratchDir::new("snap-truncated");
        let store = SnapshotStore::new(dir.path());
        store.write(&snapshot(10)).unwrap();
        let newest = store.write(&snapshot(20)).unwrap();
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();
        assert_eq!(store.load_latest().unwrap().unwrap().seq, 10);
    }

    #[test]
    fn corrupted_length_field_never_panics() {
        let dir = ScratchDir::new("snap-badlen");
        let store = SnapshotStore::new(dir.path());
        store.write(&snapshot(10)).unwrap();
        let newest = store.write(&snapshot(20)).unwrap();
        // Overwrite payload_len (bytes 16..24) with u64::MAX: the loader
        // must skip the file, not overflow.
        let mut bytes = fs::read(&newest).unwrap();
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        fs::write(&newest, &bytes).unwrap();
        assert_eq!(store.load_latest().unwrap().unwrap().seq, 10);
    }
}
