//! Versioned on-disk snapshots of the full engine state.
//!
//! ## On-disk format (version 2)
//!
//! A snapshot file `snap-<seq>-<epoch>.snap` is:
//!
//! ```text
//! ┌──────────────── header (28 bytes) ────────────────────────────────┐
//! │ magic "LTSN" │ version u16 LE │ reserved u16 │ seq u64 LE         │
//! │ payload_len u64 LE │ crc32 u32 LE                                 │
//! ├──────────────── payload ──────────────────────────────────────────┤
//! │ StoreSnapshot in the binary value encoding ([`crate::binval`])    │
//! └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Version 1 files carried the same header with a JSON payload; they
//! are still **read** (an upgraded store recovers from its last v1
//! snapshot) but no longer written — at drill scale the JSON encode
//! alone cost tens of milliseconds per snapshot, which was the p99
//! outlier in the serving tier (see `binval`).
//!
//! `seq` is the number of WAL events already **applied** to the captured
//! state: recovery loads the snapshot and replays WAL records with
//! sequence numbers `>= seq`. The CRC covers the payload; a snapshot that
//! fails any header or CRC check is skipped, and [`SnapshotStore`] keeps
//! the previous snapshot around precisely so a crash mid-write (already
//! mitigated by write-to-temp-then-rename) or a corrupted newest file
//! falls back to the older one.

use crate::crc::crc32;
use ltam_engine::batch::{PolicyImage, QuarantinedEvent};
use ltam_engine::shard::ShardStateImage;
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"LTSN";
/// On-disk snapshot format version written by this build.
pub const SNAPSHOT_VERSION: u16 = 2;
/// Oldest snapshot format version still readable (JSON payload).
pub const SNAPSHOT_VERSION_JSON: u16 = 1;
/// Bytes of the snapshot header.
pub const SNAPSHOT_HEADER_LEN: usize = 28;
/// Valid snapshots kept on disk (newest first); older ones are pruned.
pub const SNAPSHOTS_KEPT: usize = 2;

/// A point-in-time image of a whole
/// [`ShardedEngine`](ltam_engine::batch::ShardedEngine): the policy
/// epoch plus every shard's mutable state, stamped with the WAL position
/// it covers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// WAL events applied to this state (replay resumes here).
    pub seq: u64,
    /// Policy edits acknowledged up to this state. Recovery compares
    /// this against the store's policy-epoch marker: falling back to a
    /// snapshot with a *smaller* epoch would silently revert an
    /// acknowledged policy change, so it is refused instead.
    pub policy_epoch: u64,
    /// Shard count the states were captured under.
    pub shards: usize,
    /// The read-mostly policy epoch.
    pub policy: PolicyImage,
    /// Per-shard mutable state, in shard order (`states.len() == shards`).
    pub states: Vec<ShardStateImage>,
    /// Enforcement-policy edits acknowledged up to this state — the
    /// replication barrier. Wire-auth edits (token mint/revoke, trust
    /// tweaks) bump `policy_epoch` for durability but not this counter,
    /// so a follower need not re-bootstrap over them. Absent in
    /// snapshots written before the split; recovery then falls back to
    /// `policy_epoch` (every edit was an enforcement edit back then).
    pub enforcement_epoch: Option<u64>,
    /// The quarantine ledger: events from below-trust-threshold sensors
    /// held out of enforcement state. Absent in older snapshots (the
    /// ledger was necessarily empty before trust existed).
    pub quarantine: Option<Vec<QuarantinedEvent>>,
}

/// Reads and writes [`StoreSnapshot`]s in a store directory.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    fsync: bool,
}

fn snapshot_path(dir: &Path, seq: u64, epoch: u64) -> PathBuf {
    // Both coordinates go in the name: policy edits snapshot without
    // advancing `seq`, and keying by seq alone would overwrite the
    // previous snapshot in place — collapsing the keep-2 fallback to a
    // single file.
    dir.join(format!("snap-{seq:020}-{epoch:010}.snap"))
}

fn parse_snapshot_name(name: &str) -> Option<(u64, u64)> {
    let body = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    let (seq, epoch) = body.split_once('-')?;
    Some((seq.parse().ok()?, epoch.parse().ok()?))
}

impl SnapshotStore {
    /// A snapshot store over `dir` (created on first write), `fsync`ing
    /// every written snapshot.
    pub fn new(dir: &Path) -> SnapshotStore {
        SnapshotStore::with_fsync(dir, true)
    }

    /// A snapshot store with explicit `fsync` behavior (disable only for
    /// benchmarks and tests; writes are still atomic via temp + rename).
    pub fn with_fsync(dir: &Path, fsync: bool) -> SnapshotStore {
        SnapshotStore {
            dir: dir.to_path_buf(),
            fsync,
        }
    }

    /// Snapshot files present in `dir`, newest first — by `(seq, epoch)`,
    /// both of which are nondecreasing over a store's lifetime.
    fn listing(&self) -> io::Result<Vec<(u64, u64, PathBuf)>> {
        let mut out = Vec::new();
        match fs::read_dir(&self.dir) {
            Ok(entries) => {
                for entry in entries {
                    let entry = entry?;
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if let Some((seq, epoch)) = parse_snapshot_name(&name) {
                        out.push((seq, epoch, entry.path()));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        out.sort_by_key(|&(seq, epoch, _)| std::cmp::Reverse((seq, epoch)));
        Ok(out)
    }

    /// True if the directory holds at least one snapshot file (valid or
    /// not) — used to refuse `create` over an existing store.
    pub fn any_present(&self) -> io::Result<bool> {
        Ok(!self.listing()?.is_empty())
    }

    /// The sequence of the **oldest** snapshot file still on disk (by
    /// filename, validity not checked). WAL compaction must not pass
    /// this point: if the newest snapshot later turns out corrupt,
    /// recovery falls back to an older one and needs the WAL records
    /// between the two.
    pub fn oldest_retained_seq(&self) -> io::Result<Option<u64>> {
        Ok(self.listing()?.last().map(|&(seq, _, _)| seq))
    }

    /// Serialize and durably write `snapshot`, then prune old snapshots
    /// down to [`SNAPSHOTS_KEPT`]. Returns the written path.
    ///
    /// The write is atomic: payload goes to a temp file which is fsynced
    /// and renamed into place, then the directory is fsynced, so a crash
    /// leaves either the old listing or the new one — never a half
    /// snapshot under the final name.
    pub fn write(&self, snapshot: &StoreSnapshot) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let encode_span = ltam_obs::timed!(
            "store_snapshot_encode_seconds",
            "Snapshot phase: encoding the engine image to bytes"
        );
        let payload = crate::binval::encode(snapshot);
        drop(encode_span);
        let payload = &payload[..];
        let mut bytes = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len());
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&snapshot.seq.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);

        let tmp = self.dir.join(format!(
            "snap-{:020}-{:010}.tmp",
            snapshot.seq, snapshot.policy_epoch
        ));
        let write_span = ltam_obs::timed!(
            "store_snapshot_write_seconds",
            "Snapshot phase: paced chunked write of the image file"
        );
        {
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)?;
            // Stream the multi-megabyte image in bounded chunks, kicking
            // off data writeback after each one, then settle everything
            // with a single sync at the end. This is not about the
            // writer's own latency (it runs on a background thread): on
            // journaling filesystems in ordered mode, *any* fsync's
            // journal commit first flushes the dirty data blocks the
            // running transaction pins — so megabytes of unsynced
            // snapshot would be paid for by whichever WAL group-commit
            // fsync lands next, stalling the ingest path by tens of
            // milliseconds. Early writeback keeps those pages clean so
            // concurrent fsyncs find (almost) nothing of ours to flush,
            // without issuing a journal commit per chunk (which would
            // serialize against every WAL fsync instead).
            const SNAPSHOT_WRITE_CHUNK: usize = 256 * 1024;
            let chunks = bytes.chunks(SNAPSHOT_WRITE_CHUNK);
            let paced = chunks.len() > 1;
            for chunk in chunks {
                f.write_all(chunk)?;
                if self.fsync && paced {
                    start_writeback(&f);
                    // Give the device a moment to drain this chunk
                    // before dirtying the next one — bounds how much
                    // data a concurrent journal commit can inherit.
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            drop(write_span);
            if self.fsync {
                let _span = ltam_obs::timed!(
                    "store_snapshot_fsync_seconds",
                    "Snapshot phase: final data sync of the image file"
                );
                f.sync_data()?;
            }
        }
        let path = snapshot_path(&self.dir, snapshot.seq, snapshot.policy_epoch);
        fs::rename(&tmp, &path)?;
        if self.fsync {
            // Propagate directory-fsync failures: callers ack durability
            // on Ok, so a swallowed error here could lose the rename's
            // dirent to a power cut after the ack.
            if let Ok(d) = File::open(&self.dir) {
                d.sync_all()?;
            }
        }
        ltam_obs::histogram!(
            "store_snapshot_bytes",
            "Size of a written snapshot image in bytes",
            None
        )
        .observe(bytes.len() as u64);
        ltam_obs::counter!("store_snapshots_total", "Snapshots written").inc();
        self.prune()?;
        Ok(path)
    }

    fn prune(&self) -> io::Result<()> {
        for (_, _, path) in self.listing()?.into_iter().skip(SNAPSHOTS_KEPT) {
            fs::remove_file(path)?;
        }
        Ok(())
    }

    /// Load the newest snapshot that passes every integrity check, or
    /// `None` if the directory holds no usable snapshot. Corrupt files
    /// are skipped, not deleted (operators may want the evidence).
    pub fn load_latest(&self) -> io::Result<Option<StoreSnapshot>> {
        for (seq, epoch, path) in self.listing()? {
            if let Some(snap) = read_snapshot(&path, seq, epoch)? {
                return Ok(Some(snap));
            }
        }
        Ok(None)
    }
}

/// Ask the kernel to start writing `f`'s dirty pages to disk without
/// forcing a journal commit or waiting for completion (Linux
/// `sync_file_range(SYNC_FILE_RANGE_WRITE)`). Best-effort: on other
/// targets, or on failure, the caller's final `sync_data` still
/// provides durability — this only loses the pacing benefit.
fn start_writeback(f: &File) {
    #[cfg(target_os = "linux")]
    {
        use std::os::unix::io::AsRawFd;
        extern "C" {
            fn sync_file_range(fd: i32, offset: i64, nbytes: i64, flags: u32) -> i32;
        }
        const SYNC_FILE_RANGE_WRITE: u32 = 2;
        // SAFETY: plain syscall on an open fd; nbytes 0 = "to EOF".
        unsafe {
            sync_file_range(f.as_raw_fd(), 0, 0, SYNC_FILE_RANGE_WRITE);
        }
    }
    #[cfg(not(target_os = "linux"))]
    let _ = f;
}

/// Parse and validate one snapshot file; `None` if any check fails.
fn read_snapshot(
    path: &Path,
    expected_seq: u64,
    expected_epoch: u64,
) -> io::Result<Option<StoreSnapshot>> {
    let bytes = fs::read(path)?;
    if bytes.len() < SNAPSHOT_HEADER_LEN || bytes[0..4] != SNAPSHOT_MAGIC {
        return Ok(None);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_JSON {
        return Ok(None);
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    if seq != expected_seq {
        return Ok(None);
    }
    // A corrupted length field can hold anything up to u64::MAX; all
    // arithmetic on it must be checked or the fallback path would panic.
    let Some(end) = usize::try_from(len)
        .ok()
        .and_then(|len| SNAPSHOT_HEADER_LEN.checked_add(len))
    else {
        return Ok(None);
    };
    let Some(payload) = bytes.get(SNAPSHOT_HEADER_LEN..end) else {
        return Ok(None);
    };
    if bytes.len() != end || crc32(payload) != crc {
        return Ok(None);
    }
    let decoded = if version == SNAPSHOT_VERSION_JSON {
        let Ok(text) = std::str::from_utf8(payload) else {
            return Ok(None);
        };
        serde_json::from_str::<StoreSnapshot>(text)
    } else {
        crate::binval::decode::<StoreSnapshot>(payload)
    };
    match decoded {
        Ok(snap)
            if snap.seq == seq
                && snap.policy_epoch == expected_epoch
                && snap.states.len() == snap.shards =>
        {
            Ok(Some(snap))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use ltam_engine::batch::PolicyCore;
    use ltam_engine::shard::ShardState;
    use ltam_graph::examples::ntu_campus;

    fn snapshot(seq: u64) -> StoreSnapshot {
        let core = PolicyCore::new(ntu_campus().model);
        StoreSnapshot {
            seq,
            policy_epoch: 0,
            shards: 2,
            policy: core.image(),
            states: vec![ShardState::new().image(), ShardState::new().image()],
            enforcement_epoch: Some(0),
            quarantine: Some(Vec::new()),
        }
    }

    #[test]
    fn write_load_round_trip() {
        let dir = ScratchDir::new("snap-roundtrip");
        let store = SnapshotStore::new(dir.path());
        assert!(store.load_latest().unwrap().is_none());
        store.write(&snapshot(42)).unwrap();
        let back = store.load_latest().unwrap().unwrap();
        assert_eq!(back.seq, 42);
        assert_eq!(back.shards, 2);
        assert_eq!(back.states.len(), 2);
    }

    #[test]
    fn newest_valid_snapshot_wins_and_pruning_keeps_two() {
        let dir = ScratchDir::new("snap-prune");
        let store = SnapshotStore::new(dir.path());
        for seq in [10, 20, 30] {
            store.write(&snapshot(seq)).unwrap();
        }
        assert_eq!(store.load_latest().unwrap().unwrap().seq, 30);
        let files: Vec<_> = fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
            .collect();
        assert_eq!(files.len(), SNAPSHOTS_KEPT);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = ScratchDir::new("snap-fallback");
        let store = SnapshotStore::new(dir.path());
        store.write(&snapshot(10)).unwrap();
        let newest = store.write(&snapshot(20)).unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        assert_eq!(store.load_latest().unwrap().unwrap().seq, 10);
    }

    #[test]
    fn truncated_newest_falls_back_to_previous() {
        let dir = ScratchDir::new("snap-truncated");
        let store = SnapshotStore::new(dir.path());
        store.write(&snapshot(10)).unwrap();
        let newest = store.write(&snapshot(20)).unwrap();
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();
        assert_eq!(store.load_latest().unwrap().unwrap().seq, 10);
    }

    #[test]
    fn version_1_json_snapshots_still_load() {
        // A store written before the binary payload (format v2) must
        // recover from its existing v1 snapshot after an upgrade.
        let dir = ScratchDir::new("snap-v1-compat");
        let snap = snapshot(33);
        let payload = serde_json::to_string(&snap).unwrap();
        let payload = payload.as_bytes();
        let mut bytes = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len());
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION_JSON.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&snap.seq.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        fs::create_dir_all(dir.path()).unwrap();
        fs::write(snapshot_path(dir.path(), 33, 0), &bytes).unwrap();

        let store = SnapshotStore::new(dir.path());
        let back = store.load_latest().unwrap().unwrap();
        assert_eq!(back.seq, 33);
        assert_eq!(back.states.len(), 2);

        // And the next write upgrades in place: newest is now v2.
        let newest = store.write(&snapshot(40)).unwrap();
        let head = fs::read(&newest).unwrap();
        assert_eq!(u16::from_le_bytes([head[4], head[5]]), SNAPSHOT_VERSION);
        assert_eq!(store.load_latest().unwrap().unwrap().seq, 40);
    }

    #[test]
    fn corrupted_length_field_never_panics() {
        let dir = ScratchDir::new("snap-badlen");
        let store = SnapshotStore::new(dir.path());
        store.write(&snapshot(10)).unwrap();
        let newest = store.write(&snapshot(20)).unwrap();
        // Overwrite payload_len (bytes 16..24) with u64::MAX: the loader
        // must skip the file, not overflow.
        let mut bytes = fs::read(&newest).unwrap();
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        fs::write(&newest, &bytes).unwrap();
        assert_eq!(store.load_latest().unwrap().unwrap().seq, 10);
    }
}
