//! [`DurableEngine`] — a crash-safe wrapper around
//! [`ShardedEngine`]: WAL-append before ingest, periodic snapshots,
//! recovery on open, WAL compaction behind snapshots.
//!
//! ## Protocol
//!
//! * **Ingest** — the batch is appended to the WAL (one `fsync`), *then*
//!   handed to [`ShardedEngine::ingest`]. A crash between the two replays
//!   the batch on recovery, which is exactly what an uninterrupted run
//!   would have computed: enforcement is deterministic per subject, so
//!   WAL-then-apply gives effectively-once semantics.
//! * **Snapshot** — every [`StoreConfig::snapshot_every`] events (or on
//!   demand), the full engine state is imaged at the current WAL
//!   position, written atomically, the WAL rotates, and segments no
//!   **retained** snapshot could ever need are deleted (recovery may
//!   fall back to the previous snapshot if the newest is damaged, so
//!   compaction trails the oldest retained one, not the newest).
//! * **Recover** — [`DurableEngine::open`] loads the newest valid
//!   snapshot, rebuilds the engine from it, and replays WAL records with
//!   sequence `>= snapshot.seq` through the normal ingest path. A torn or
//!   bit-flipped WAL tail is truncated at the last intact record — never
//!   a panic, never a lost record *before* the damage.
//! * **Policy edits** — [`DurableEngine::update_policy`] and
//!   [`DurableEngine::revoke_authorization`] apply the epoch swap (and,
//!   for revocation, per-shard grant/counter invalidation) and snapshot
//!   immediately: admin changes are rare and the WAL intentionally
//!   carries only sensor events, so the snapshot is what makes policy
//!   durable. Each acknowledged edit also advances an on-disk
//!   policy-epoch marker; recovery refuses a snapshot fallback that
//!   would silently revert an acknowledged edit.

use crate::crc::crc32;
use crate::snapshot::{SnapshotStore, StoreSnapshot};
use crate::wal::{Wal, WalConfig, WalRecovery};
use ltam_core::db::AuthId;
use ltam_core::model::Authorization;
use ltam_core::AuthorizationDb;
use ltam_engine::batch::{shard_of, BatchOutcome, Event, PolicyCore, ShardedEngine};
use ltam_engine::movement::MovementKind;
use ltam_engine::shard::{ShardState, ShardStateImage};
use ltam_engine::violation::Alert;
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Tunables for a durable engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// WAL segment rotation threshold, in bytes.
    pub segment_bytes: u64,
    /// Automatic snapshot cadence, in events since the last snapshot
    /// (0 disables automatic snapshots; call
    /// [`DurableEngine::snapshot`] manually).
    pub snapshot_every: u64,
    /// `fsync` WAL batches and snapshots (disable only for benchmarks).
    pub fsync: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_bytes: 1 << 20,
            snapshot_every: 100_000,
            fsync: true,
        }
    }
}

impl StoreConfig {
    fn wal(&self) -> WalConfig {
        WalConfig {
            segment_bytes: self.segment_bytes,
            fsync: self.fsync,
        }
    }
}

/// What [`DurableEngine::open`] did to bring the store back.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// WAL position of the snapshot the engine was rebuilt from.
    pub snapshot_seq: u64,
    /// WAL-tail events replayed through the ingest path.
    pub replayed: usize,
    /// Violations raised during replay (already counted in the snapshot
    /// run's history if the crash lost no state — replay re-detects them).
    pub replayed_violations: usize,
    /// Bytes truncated off a torn/corrupt WAL tail.
    pub truncated_bytes: u64,
    /// WAL segments dropped because they followed a corrupt region.
    pub dropped_segments: usize,
}

/// A [`ShardedEngine`] with a durable event log and snapshots underneath.
/// See the [module docs](self) for the protocol.
#[derive(Debug)]
pub struct DurableEngine {
    dir: PathBuf,
    config: StoreConfig,
    engine: ShardedEngine,
    wal: Wal,
    snapshots: SnapshotStore,
    applied: u64,
    since_snapshot: u64,
    policy_epoch: u64,
    snapshot_error: Option<io::Error>,
    /// Held for the engine's lifetime; released (file removed) on drop.
    _lock: StoreLock,
}

/// Best-effort single-opener guard: a `store.lock` file holding the
/// owner's pid. Two live engines appending to one WAL would interleave
/// records that neither's bookkeeping describes, so `create`/`open`
/// refuse while another **live** process holds the lock. A lock left by
/// a crashed process (its pid no longer alive) is stale and is taken
/// over — recovery after a crash is the whole point of the store — at
/// the (documented, accepted) cost of pid-reuse false negatives on
/// non-Linux systems where liveness cannot be probed via `/proc`.
#[derive(Debug)]
struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    fn acquire(dir: &Path) -> io::Result<StoreLock> {
        let path = dir.join("store.lock");
        // The creation itself is atomic (O_EXCL): of N racing openers,
        // exactly one creates the file. A stale lock (dead pid) is
        // removed and the acquire retried — racing removers then race on
        // the next create_new, which again admits exactly one.
        for _ in 0..8 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    f.write_all(format!("{}\n", std::process::id()).as_bytes())?;
                    return Ok(StoreLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    if let Some(pid) = holder {
                        if Path::new(&format!("/proc/{pid}")).exists() {
                            return Err(io::Error::new(
                                io::ErrorKind::WouldBlock,
                                format!(
                                    "{} is locked by live process {pid}; two engines must \
                                     not append to one WAL",
                                    dir.display()
                                ),
                            ));
                        }
                    }
                    // Stale (dead pid) or unreadable: clear and retry.
                    match std::fs::remove_file(&path) {
                        Ok(()) => {}
                        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::other(format!(
            "could not acquire {} after repeated stale-lock takeovers",
            path.display()
        )))
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Release only if the lock still names us (never delete a lock a
        // takeover replaced).
        let ours = std::fs::read_to_string(&self.path)
            .map(|s| s.trim().parse::<u32>() == Ok(std::process::id()))
            .unwrap_or(false);
        if ours {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Marker file recording the highest **acknowledged** policy epoch
/// (`"LTPE"` magic, version, epoch u64, CRC). Written after the snapshot
/// carrying a policy edit lands, so snapshot fallback can detect — and
/// refuse — a recovery that would silently revert an acked edit.
const EPOCH_MARKER: &str = "policy.epoch";

fn write_epoch_marker(dir: &Path, fsync: bool, epoch: u64) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(20);
    bytes.extend_from_slice(b"LTPE");
    bytes.extend_from_slice(&1u16.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes());
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&crc32(&epoch.to_le_bytes()).to_le_bytes());
    let tmp = dir.join("policy.epoch.tmp");
    {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&bytes)?;
        if fsync {
            f.sync_data()?;
        }
    }
    std::fs::rename(&tmp, dir.join(EPOCH_MARKER))?;
    if fsync {
        // The rename's dirent must be durable before the edit is acked —
        // a swallowed failure here would let a power cut silently revert
        // an acknowledged policy edit, the exact hole this marker closes.
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all()?;
        }
    }
    Ok(())
}

/// The recorded epoch, or `None` for a missing/corrupt marker (best
/// effort: a corrupt marker degrades to the pre-marker behavior, it
/// never blocks recovery on its own).
fn read_epoch_marker(dir: &Path) -> Option<u64> {
    let bytes = std::fs::read(dir.join(EPOCH_MARKER)).ok()?;
    if bytes.len() != 20 || &bytes[0..4] != b"LTPE" {
        return None;
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let crc = u32::from_le_bytes(bytes[16..20].try_into().ok()?);
    (crc32(&epoch.to_le_bytes()) == crc).then_some(epoch)
}

impl DurableEngine {
    /// Create a fresh store in `dir` (refusing to overwrite an existing
    /// one) and write the initial snapshot of `core` at sequence 0.
    pub fn create(
        dir: &Path,
        core: PolicyCore,
        shards: usize,
        config: StoreConfig,
    ) -> io::Result<(DurableEngine, crossbeam::channel::Receiver<Alert>)> {
        std::fs::create_dir_all(dir)?;
        let lock = StoreLock::acquire(dir)?;
        let snapshots = SnapshotStore::with_fsync(dir, config.fsync);
        if snapshots.any_present()? {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already holds an ltam-store; use open()", dir.display()),
            ));
        }
        let (wal, recovered) = Wal::open(dir, config.wal())?;
        if !recovered.events.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already holds WAL segments; use open()", dir.display()),
            ));
        }
        let (engine, alerts) = ShardedEngine::new(core, shards);
        let mut durable = DurableEngine {
            dir: dir.to_path_buf(),
            config,
            engine,
            wal,
            snapshots,
            applied: 0,
            since_snapshot: 0,
            policy_epoch: 0,
            snapshot_error: None,
            _lock: lock,
        };
        durable.snapshot()?;
        Ok((durable, alerts))
    }

    /// Recover a store from `dir` with the shard count it was
    /// snapshotted under.
    pub fn open(
        dir: &Path,
        config: StoreConfig,
    ) -> io::Result<(
        DurableEngine,
        crossbeam::channel::Receiver<Alert>,
        RecoveryReport,
    )> {
        Self::open_impl(dir, config, None)
    }

    /// Recover a store from `dir` onto `shards` shards, redistributing
    /// the snapshotted per-subject state if the count changed.
    pub fn open_with_shards(
        dir: &Path,
        config: StoreConfig,
        shards: usize,
    ) -> io::Result<(
        DurableEngine,
        crossbeam::channel::Receiver<Alert>,
        RecoveryReport,
    )> {
        assert!(shards >= 1, "need at least one shard");
        Self::open_impl(dir, config, Some(shards))
    }

    fn open_impl(
        dir: &Path,
        config: StoreConfig,
        shards_override: Option<usize>,
    ) -> io::Result<(
        DurableEngine,
        crossbeam::channel::Receiver<Alert>,
        RecoveryReport,
    )> {
        let lock = StoreLock::acquire(dir)?;
        let snapshots = SnapshotStore::with_fsync(dir, config.fsync);
        let snap = snapshots.load_latest()?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} holds no valid snapshot; use create()", dir.display()),
            )
        })?;
        let (mut wal, recovered): (Wal, WalRecovery) = Wal::open(dir, config.wal())?;
        if wal.next_seq() < snap.seq {
            // The log ends before the snapshot's cover point. If WAL
            // repair truncated or quarantined anything to get here, the
            // discarded region may have held fsync-acked events past the
            // snapshot (e.g. a missing middle segment took the intact
            // tail segments with it) — refuse rather than silently
            // resume at the snapshot. The quarantined files are still in
            // the directory for manual repair.
            if recovered.truncated_bytes > 0 || recovered.dropped_segments > 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "WAL loss behind the snapshot: repair left the log at seq {} but the \
                         snapshot covers {}; quarantined/truncated segments may hold acked \
                         events past the snapshot — not recovering over them",
                        wal.next_seq(),
                        snap.seq
                    ),
                ));
            }
            // No corruption was repaired: the WAL is simply absent
            // (externally lost). The snapshot fully covers the state;
            // restart the log at the snapshot position.
            wal.reset_to(snap.seq)?;
        } else {
            // The WAL's intact records are contiguous (the scan stops at
            // any gap), so the log covers [wal_start, next_seq). If that
            // range starts *after* the snapshot we are recovering from,
            // events in between are unrecoverable — refuse rather than
            // silently resurrect a state with a hole in its history.
            let wal_start = recovered
                .events
                .first()
                .map(|&(seq, _)| seq)
                .unwrap_or_else(|| wal.next_seq());
            if wal_start > snap.seq {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "WAL gap: log starts at seq {wal_start} but the usable snapshot covers \
                         only {}; events in between are lost (was the log compacted past a \
                         snapshot that is now corrupt?)",
                        snap.seq
                    ),
                ));
            }
        }

        // The WAL preserves events across a snapshot fallback, but policy
        // edits live only in snapshots: recovering from a snapshot with a
        // smaller policy epoch than the store ever acknowledged would
        // silently re-enforce under the reverted policy. Refuse.
        if let Some(acked_epoch) = read_epoch_marker(dir) {
            if snap.policy_epoch < acked_epoch {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "policy revert: the usable snapshot carries policy epoch {} but edits \
                         through epoch {acked_epoch} were acknowledged; recovering would \
                         silently undo them (is the newest snapshot corrupt?)",
                        snap.policy_epoch
                    ),
                ));
            }
        }

        let policy = PolicyCore::from_image(snap.policy);
        let shards = shards_override.unwrap_or(snap.shards);
        let images = if shards == snap.shards {
            snap.states
        } else {
            redistribute(snap.states, shards, policy.db())
        };
        let states: Vec<ShardState> = images.into_iter().map(ShardState::from_image).collect();
        let (engine, alerts) = ShardedEngine::with_states(policy, states);

        let replay: Vec<Event> = recovered
            .events
            .iter()
            .filter(|&&(seq, _)| seq >= snap.seq)
            .map(|&(_, event)| event)
            .collect();
        let mut report = RecoveryReport {
            snapshot_seq: snap.seq,
            replayed: replay.len(),
            replayed_violations: 0,
            truncated_bytes: recovered.truncated_bytes,
            dropped_segments: recovered.dropped_segments,
        };
        if !replay.is_empty() {
            report.replayed_violations = engine.ingest(&replay).violations.len();
        }
        let applied = wal.next_seq().max(snap.seq);
        Ok((
            DurableEngine {
                dir: dir.to_path_buf(),
                config,
                engine,
                wal,
                snapshots,
                applied,
                since_snapshot: applied - snap.seq,
                policy_epoch: snap.policy_epoch,
                snapshot_error: None,
                _lock: lock,
            },
            alerts,
            report,
        ))
    }

    /// The wrapped engine, for reads and queries.
    ///
    /// **Mutations through this reference bypass durability**: events fed
    /// to the engine directly are not WAL-logged, and admin calls like
    /// `ShardedEngine::revoke_authorization` are not snapshotted — a
    /// crash silently un-does them. Use [`DurableEngine::ingest`],
    /// [`DurableEngine::update_policy`] and
    /// [`DurableEngine::revoke_authorization`] instead.
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Events durably applied so far (the WAL sequence).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durably ingest a batch: WAL-append + `fsync`, then enforce, then
    /// snapshot if the cadence says so.
    ///
    /// `Err` means exactly one thing: the batch did **not** reach the
    /// WAL (the engine was not touched either) — retrying is safe. A
    /// failure of the piggybacked automatic snapshot does not fail the
    /// batch (its durability rests on the WAL, not the snapshot); the
    /// error is deferred to [`DurableEngine::take_snapshot_error`] and
    /// the snapshot retries at the next cadence point.
    pub fn ingest(&mut self, events: &[Event]) -> io::Result<BatchOutcome> {
        self.wal.append_batch(events)?;
        let outcome = self.engine.ingest(events);
        self.applied += events.len() as u64;
        self.since_snapshot += events.len() as u64;
        if self.config.snapshot_every > 0 && self.since_snapshot >= self.config.snapshot_every {
            if let Err(e) = self.snapshot() {
                self.snapshot_error = Some(e);
            }
        }
        Ok(outcome)
    }

    /// The error of the most recent failed automatic snapshot, if any
    /// (cleared by this call; see [`DurableEngine::ingest`]).
    pub fn take_snapshot_error(&mut self) -> Option<io::Error> {
        self.snapshot_error.take()
    }

    /// Apply a policy edit as one epoch swap and make it durable: the
    /// WAL carries only sensor events, so the edit is snapshotted
    /// immediately and the acknowledged policy epoch is advanced (which
    /// recovery checks — a snapshot fallback will refuse to revert this
    /// edit rather than silently re-enforce under the old policy).
    ///
    /// On `Err` the edit is live in memory but **not durable**: a crash
    /// before a later successful snapshot reverts it.
    pub fn update_policy<R>(&mut self, f: impl FnOnce(&mut PolicyCore) -> R) -> io::Result<R> {
        let r = self.engine.update_policy(f);
        self.policy_epoch += 1;
        self.snapshot()?;
        write_epoch_marker(&self.dir, self.config.fsync, self.policy_epoch)?;
        Ok(r)
    }

    /// Durably revoke an authorization: removes it from the policy epoch
    /// **and** lapses its pending grants and usage counters on every
    /// shard (via [`ShardedEngine::revoke_authorization`]), then
    /// snapshots like [`DurableEngine::update_policy`]. This is the only
    /// crash-safe revocation path — the same call on
    /// [`DurableEngine::engine`] would not survive a restart.
    pub fn revoke_authorization(&mut self, id: AuthId) -> io::Result<Option<Authorization>> {
        let revoked = self.engine.revoke_authorization(id);
        self.policy_epoch += 1;
        self.snapshot()?;
        write_epoch_marker(&self.dir, self.config.fsync, self.policy_epoch)?;
        Ok(revoked)
    }

    /// Image the engine at the current WAL position, write the snapshot,
    /// rotate the WAL and compact segments no retained snapshot needs.
    /// Returns the covered sequence.
    ///
    /// Compaction goes up to the **oldest retained** snapshot, not the
    /// one just written: if the newest file is later found corrupt,
    /// recovery falls back to the older snapshot and must still find the
    /// WAL records between the two.
    pub fn snapshot(&mut self) -> io::Result<u64> {
        let snapshot = StoreSnapshot {
            seq: self.applied,
            policy_epoch: self.policy_epoch,
            shards: self.engine.shard_count(),
            policy: self.engine.policy().image(),
            states: self.engine.export_images(),
        };
        self.snapshots.write(&snapshot)?;
        self.wal.rotate()?;
        let cover = self
            .snapshots
            .oldest_retained_seq()?
            .unwrap_or(self.applied)
            .min(self.applied);
        self.wal.compact(cover)?;
        self.since_snapshot = 0;
        Ok(self.applied)
    }
}

/// Re-key per-subject state onto a different shard count: every piece of
/// a [`ShardStateImage`] is either keyed by subject (movements, pending
/// grants, active stays, overstay flags, violations, audit) or owned by
/// exactly one subject's authorization (ledger counters), so images can
/// be split and re-dealt without touching enforcement semantics.
pub fn redistribute(
    images: Vec<ShardStateImage>,
    shards: usize,
    db: &AuthorizationDb,
) -> Vec<ShardStateImage> {
    assert!(shards >= 1, "need at least one shard");
    let mut out: Vec<ShardStateImage> = (0..shards).map(|_| ShardStateImage::default()).collect();
    for image in images {
        for event in image.movements.log() {
            let target = &mut out[shard_of(event.subject, shards)].movements;
            // Each subject's log replays in original order on its new
            // shard, so the physical-consistency checks cannot fire.
            let replayed = match event.kind {
                MovementKind::Enter => {
                    target.record_enter(event.time, event.subject, event.location)
                }
                MovementKind::Exit => target.record_exit(event.time, event.subject, event.location),
            };
            debug_assert!(replayed.is_ok(), "shard-local movement logs replay cleanly");
        }
        for p in image.pending {
            out[shard_of(p.subject, shards)].pending.push(p);
        }
        for entry in image.active {
            out[shard_of(entry.0, shards)].active.push(entry);
        }
        for s in image.overstay_alerted {
            out[shard_of(s, shards)].overstay_alerted.push(s);
        }
        for v in image.violations {
            out[shard_of(v.subject(), shards)].violations.push(v);
        }
        for record in image.audit {
            out[shard_of(record.request.subject, shards)]
                .audit
                .push(record);
        }
        for (id, count) in image.ledger.counts() {
            // An authorization belongs to exactly one subject; counters
            // for revoked (absent) authorizations land on shard 0, where
            // they are as inert as they were on their old shard.
            let target = db
                .get(id)
                .map(|auth| shard_of(auth.subject(), shards))
                .unwrap_or(0);
            let merged = out[target].ledger.used(id).saturating_add(count);
            out[target].ledger.restore_count(id, merged);
        }
    }
    for image in &mut out {
        image.pending.sort_by_key(|p| p.subject);
        image.active.sort_by_key(|&(s, _, _)| s);
        image.overstay_alerted.sort();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use ltam_core::model::{Authorization, EntryLimit};
    use ltam_core::subject::SubjectId;
    use ltam_graph::examples::ntu_campus;
    use ltam_graph::LocationId;
    use ltam_time::{Interval, Time};

    fn campus_core() -> (PolicyCore, SubjectId, LocationId) {
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut core = PolicyCore::new(ntu.model);
        let alice = SubjectId(0);
        core.add_authorization(
            Authorization::new(
                Interval::lit(5, 40),
                Interval::lit(20, 100),
                alice,
                cais,
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        (core, alice, cais)
    }

    fn test_config() -> StoreConfig {
        StoreConfig {
            segment_bytes: 4096,
            snapshot_every: 0,
            fsync: false,
        }
    }

    #[test]
    fn create_ingest_reopen_preserves_state() {
        let dir = ScratchDir::new("durable-basic");
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            let out = durable
                .ingest(&[
                    Event::Request {
                        time: Time(10),
                        subject: alice,
                        location: cais,
                    },
                    Event::Enter {
                        time: Time(11),
                        subject: alice,
                        location: cais,
                    },
                ])
                .unwrap();
            assert_eq!(out.granted, 1);
            assert_eq!(durable.applied(), 2);
        } // crash: no snapshot since creation, state lives in the WAL tail
        let (durable, _alerts, report) = DurableEngine::open(dir.path(), test_config()).unwrap();
        assert_eq!(report.snapshot_seq, 0);
        assert_eq!(report.replayed, 2);
        assert_eq!(durable.applied(), 2);
        assert_eq!(durable.engine().total_entries(), 1);
        // The recovered stay is live: an early exit still violates.
        let v = durable.engine().observe_exit(Time(15), alice, cais);
        assert!(v.is_some(), "recovered active stay enforces exit windows");
    }

    #[test]
    fn snapshot_compacts_the_wal_and_recovery_skips_replay() {
        let dir = ScratchDir::new("durable-compact");
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            for i in 0..200u64 {
                durable
                    .ingest(&[Event::Request {
                        time: Time(200 + i),
                        subject: alice,
                        location: cais,
                    }])
                    .unwrap();
            }
            let covered = durable.snapshot().unwrap();
            assert_eq!(covered, 200);
            // Compaction trails the *oldest retained* snapshot: after a
            // second snapshot the creation-time one (seq 0) is pruned and
            // the [0, 200) segments become droppable.
            for i in 0..100u64 {
                durable
                    .ingest(&[Event::Request {
                        time: Time(400 + i),
                        subject: alice,
                        location: cais,
                    }])
                    .unwrap();
            }
            durable.snapshot().unwrap();
        }
        let first_live_seq = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.strip_prefix("wal-")
                    .and_then(|r| r.strip_suffix(".log"))
                    .and_then(|d| d.parse::<u64>().ok())
            })
            .min()
            .expect("a WAL segment survives");
        assert_eq!(
            first_live_seq, 200,
            "segments before the oldest retained snapshot (seq 200) are compacted"
        );
        let (durable, _alerts, report) = DurableEngine::open(dir.path(), test_config()).unwrap();
        assert_eq!(report.snapshot_seq, 300);
        assert_eq!(report.replayed, 0, "snapshot covers the whole log");
        assert_eq!(durable.applied(), 300);
        // All 300 denied requests survived in the audit trail.
        let audits: usize = (0..durable.engine().shard_count())
            .map(|s| durable.engine().read_shard(s, |st| st.audit().len()))
            .sum();
        assert_eq!(audits, 300);
    }

    /// Flip a byte in each snapshot file matching `pick` (by seq).
    /// Snapshot names are `snap-<seq>-<epoch>.snap`.
    fn corrupt_snapshots(dir: &std::path::Path, pick: impl Fn(u64) -> bool) {
        for entry in std::fs::read_dir(dir).unwrap().filter_map(|e| e.ok()) {
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(seq) = name
                .strip_prefix("snap-")
                .and_then(|r| r.strip_suffix(".snap"))
                .and_then(|body| body.split_once('-'))
                .and_then(|(seq, _)| seq.parse::<u64>().ok())
            else {
                continue;
            };
            if pick(seq) {
                let mut bytes = std::fs::read(entry.path()).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x01;
                std::fs::write(entry.path(), &bytes).unwrap();
            }
        }
    }

    /// Ingest `n` granted-entry cycles so recovered state is checkable by
    /// audit count.
    fn build_two_snapshot_store(dir: &std::path::Path) -> (u64, u64) {
        let (core, alice, cais) = campus_core();
        let (mut durable, _alerts) = DurableEngine::create(dir, core, 2, test_config()).unwrap();
        let request = |t: u64| Event::Request {
            time: Time(t),
            subject: alice,
            location: cais,
        };
        for i in 0..100u64 {
            durable.ingest(&[request(200 + i)]).unwrap();
        }
        let s1 = durable.snapshot().unwrap();
        for i in 0..100u64 {
            durable.ingest(&[request(400 + i)]).unwrap();
        }
        let s2 = durable.snapshot().unwrap();
        for i in 0..10u64 {
            durable.ingest(&[request(600 + i)]).unwrap();
        }
        (s1, s2)
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_without_losing_events() {
        let dir = ScratchDir::new("durable-fallback");
        let (s1, s2) = build_two_snapshot_store(dir.path());
        assert_eq!((s1, s2), (100, 200));
        // The newest snapshot rots; recovery must fall back to seq 100
        // AND still replay every event from 100 onward — which is why
        // compaction may not pass the oldest retained snapshot.
        corrupt_snapshots(dir.path(), |seq| seq == 200);
        let (durable, _alerts, report) = DurableEngine::open(dir.path(), test_config()).unwrap();
        assert_eq!(report.snapshot_seq, 100);
        assert_eq!(report.replayed, 110);
        assert_eq!(durable.applied(), 210);
        let audits: usize = (0..durable.engine().shard_count())
            .map(|s| durable.engine().read_shard(s, |st| st.audit().len()))
            .sum();
        assert_eq!(audits, 210, "no event between the snapshots was lost");
    }

    #[test]
    fn missing_middle_segment_refuses_instead_of_silently_resuming() {
        let dir = ScratchDir::new("durable-midgap");
        let config = StoreConfig {
            segment_bytes: 256, // several segments between snapshots
            snapshot_every: 0,
            fsync: false,
        };
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, config).unwrap();
            let request = |t: u64| Event::Request {
                time: Time(t),
                subject: alice,
                location: cais,
            };
            for i in 0..100u64 {
                durable.ingest(&[request(200 + i)]).unwrap();
            }
            durable.snapshot().unwrap(); // @100
            for i in 0..100u64 {
                durable.ingest(&[request(400 + i)]).unwrap();
            }
            durable.snapshot().unwrap(); // @200 (compacts WAL below 100)
            for i in 0..10u64 {
                durable.ingest(&[request(600 + i)]).unwrap();
            }
        }
        // Several segments span [100, 210). Remove a *middle* one: WAL
        // repair stops at the gap and quarantines every later segment —
        // including the intact acked tail past the snapshot @200 — which
        // leaves the log short of the snapshot. Silently resuming at @200
        // would drop those acked events; open must refuse, and the tail's
        // bytes must survive as quarantine files.
        let segments = Wal::segment_files(dir.path()).unwrap();
        assert!(segments.len() >= 3, "need a middle segment: {segments:?}");
        std::fs::remove_file(&segments[1]).unwrap();
        let err = DurableEngine::open(dir.path(), config).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(
            err.to_string().contains("WAL loss behind the snapshot"),
            "{err}"
        );
        let quarantined = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".quarantine"));
        assert!(quarantined, "later segments are preserved, not deleted");
    }

    #[test]
    fn reissued_auth_ids_cannot_alias_recovered_stays() {
        let dir = ScratchDir::new("durable-id-reuse");
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut core = PolicyCore::new(ntu.model);
        let alice = SubjectId(0);
        let wide = |s| {
            Authorization::new(
                Interval::lit(0, 1_000),
                Interval::lit(500, 2_000),
                s,
                cais,
                EntryLimit::Unbounded,
            )
            .unwrap()
        };
        core.add_authorization(wide(alice));
        let id1 = {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            // Alice is inside under a second authorization, which then
            // gets revoked (her stay keeps referencing its id).
            let id1 = durable
                .update_policy(|p| p.add_authorization(wide(SubjectId(0))))
                .unwrap();
            durable
                .ingest(&[
                    Event::Request {
                        time: Time(10),
                        subject: alice,
                        location: cais,
                    },
                    Event::Enter {
                        time: Time(11),
                        subject: alice,
                        location: cais,
                    },
                ])
                .unwrap();
            durable.revoke_authorization(id1).unwrap();
            id1
        };
        let (mut durable, _alerts, _) = DurableEngine::open(dir.path(), test_config()).unwrap();
        // The id watermark survived recovery: a new authorization never
        // reuses the revoked id, so nothing stale can alias it.
        let id2 = durable
            .update_policy(|p| p.add_authorization(wide(SubjectId(9))))
            .unwrap();
        assert!(
            id2 > id1,
            "revoked id {id1} must never be reissued (got {id2})"
        );
    }

    #[test]
    fn wal_gap_behind_the_usable_snapshot_is_refused() {
        let dir = ScratchDir::new("durable-gap");
        build_two_snapshot_store(dir.path());
        // Manufacture the unrecoverable case: the segment holding
        // [100, 200) vanishes *and* the newest snapshot rots. Falling
        // back to seq 100 would silently lose those 100 events — open
        // must refuse instead.
        corrupt_snapshots(dir.path(), |seq| seq == 200);
        for entry in std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
        {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name == format!("wal-{:020}.log", 100) {
                std::fs::remove_file(entry.path()).unwrap();
            }
        }
        let err = DurableEngine::open(dir.path(), test_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(err.to_string().contains("WAL gap"), "{err}");
    }

    #[test]
    fn concurrent_open_is_refused_while_the_lock_is_live() {
        let dir = ScratchDir::new("durable-lock");
        let (core, _, _) = campus_core();
        let (durable, _alerts) = DurableEngine::create(dir.path(), core, 1, test_config()).unwrap();
        // A second engine on the same store would interleave WAL appends.
        let err = DurableEngine::open(dir.path(), test_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock, "{err}");
        drop(durable); // releases the lock
        assert!(DurableEngine::open(dir.path(), test_config()).is_ok());
        // A stale lock (dead pid) is taken over, not honored.
        std::fs::write(dir.path().join("store.lock"), "4294967294\n").unwrap();
        assert!(DurableEngine::open(dir.path(), test_config()).is_ok());
    }

    #[test]
    fn create_refuses_an_existing_store() {
        let dir = ScratchDir::new("durable-exists");
        let (core, _, _) = campus_core();
        let _ = DurableEngine::create(dir.path(), core.clone(), 1, test_config()).unwrap();
        let err = DurableEngine::create(dir.path(), core, 1, test_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
    }

    #[test]
    fn open_on_an_empty_dir_is_not_found() {
        let dir = ScratchDir::new("durable-empty");
        let err = DurableEngine::open(dir.path(), test_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn policy_updates_survive_restart_via_snapshot() {
        let dir = ScratchDir::new("durable-policy");
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            durable
                .update_policy(|p| {
                    p.add_prohibition(ltam_core::prohibition::Prohibition {
                        subject: alice,
                        location: cais,
                        window: Interval::lit(8, 15),
                    })
                })
                .unwrap();
        }
        let (mut durable, _alerts, _) = DurableEngine::open(dir.path(), test_config()).unwrap();
        let out = durable
            .ingest(&[Event::Request {
                time: Time(10),
                subject: alice,
                location: cais,
            }])
            .unwrap();
        assert_eq!(out.denied, 1, "restored prohibition takes precedence");
    }

    #[test]
    fn snapshot_fallback_never_reverts_an_acked_policy_edit() {
        let dir = ScratchDir::new("durable-policy-revert");
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            durable.snapshot().unwrap(); // S @ epoch 0
            durable
                .update_policy(|p| {
                    p.add_prohibition(ltam_core::prohibition::Prohibition {
                        subject: alice,
                        location: cais,
                        window: Interval::lit(0, 1_000),
                    })
                })
                .unwrap(); // acked: snapshot @ epoch 1 + marker
        }
        // The epoch-1 snapshot rots; falling back to an epoch-0 snapshot
        // would silently drop the prohibition — open must refuse.
        corrupt_snapshots(dir.path(), |_| true);
        // (All snapshots corrupt -> NotFound; corrupt only the newest to
        // hit the revert check specifically.)
        let err = DurableEngine::open(dir.path(), test_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);

        let dir2 = ScratchDir::new("durable-policy-revert2");
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir2.path(), core, 2, test_config()).unwrap();
            // Events between the snapshots give them distinct sequence
            // numbers, so the epoch-0 snapshot file survives the edit's
            // epoch-1 snapshot (snapshots are keyed by seq on disk).
            for i in 0..10u64 {
                durable
                    .ingest(&[Event::Request {
                        time: Time(200 + i),
                        subject: alice,
                        location: cais,
                    }])
                    .unwrap();
            }
            durable
                .update_policy(|p| {
                    p.add_prohibition(ltam_core::prohibition::Prohibition {
                        subject: alice,
                        location: cais,
                        window: Interval::lit(0, 1_000),
                    })
                })
                .unwrap();
        }
        // Retained snapshots are the epoch-1 one (newest) and the epoch-0
        // one; corrupt only the newest.
        let newest = std::fs::read_dir(dir2.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
            .map(|e| e.path())
            .max()
            .unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();
        let err = DurableEngine::open(dir2.path(), test_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(err.to_string().contains("policy revert"), "{err}");
    }

    #[test]
    fn durable_revocation_survives_restart_and_lapses_grants() {
        let dir = ScratchDir::new("durable-revoke");
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            let out = durable
                .ingest(&[Event::Request {
                    time: Time(10),
                    subject: alice,
                    location: cais,
                }])
                .unwrap();
            assert_eq!(out.granted, 1);
            let id = durable
                .engine()
                .policy()
                .db()
                .iter()
                .next()
                .map(|(id, _, _)| id)
                .unwrap();
            assert!(durable.revoke_authorization(id).unwrap().is_some());
        }
        let (mut durable, _alerts, _) = DurableEngine::open(dir.path(), test_config()).unwrap();
        // The pending grant lapsed with the revocation and the revocation
        // itself survived the restart: walking in is unauthorized.
        let out = durable
            .ingest(&[Event::Enter {
                time: Time(11),
                subject: alice,
                location: cais,
            }])
            .unwrap();
        assert_eq!(out.violations.len(), 1);
        assert!(matches!(
            out.violations[0],
            ltam_engine::violation::Violation::UnauthorizedEntry { .. }
        ));
    }

    #[test]
    fn reopen_onto_more_shards_redistributes_state() {
        let dir = ScratchDir::new("durable-reshard");
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut core = PolicyCore::new(ntu.model);
        let subjects: Vec<SubjectId> = (0..16).map(SubjectId).collect();
        for &s in &subjects {
            core.add_authorization(
                Authorization::new(
                    Interval::lit(0, 1_000),
                    Interval::lit(0, 2_000),
                    s,
                    cais,
                    EntryLimit::Unbounded,
                )
                .unwrap(),
            );
        }
        let events: Vec<Event> = subjects
            .iter()
            .flat_map(|&s| {
                [
                    Event::Request {
                        time: Time(10),
                        subject: s,
                        location: cais,
                    },
                    Event::Enter {
                        time: Time(11),
                        subject: s,
                        location: cais,
                    },
                ]
            })
            .collect();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            durable.ingest(&events).unwrap();
            durable.snapshot().unwrap();
        }
        let (durable, _alerts, _) =
            DurableEngine::open_with_shards(dir.path(), test_config(), 5).unwrap();
        assert_eq!(durable.engine().shard_count(), 5);
        assert_eq!(durable.engine().total_entries(), 16);
        // Every subject's stay is still live and exits clean.
        for &s in &subjects {
            assert!(
                durable.engine().observe_exit(Time(20), s, cais).is_none(),
                "{s} lost its active stay in redistribution"
            );
        }
    }
}
