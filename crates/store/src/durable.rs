//! [`DurableEngine`] — a crash-safe wrapper around
//! [`ShardedEngine`]: WAL-append before ingest, periodic snapshots,
//! recovery on open, WAL compaction behind snapshots.
//!
//! ## Protocol
//!
//! * **Ingest** — the batch is appended to the WAL (one `fsync`), *then*
//!   handed to [`ShardedEngine::ingest`]. A crash between the two replays
//!   the batch on recovery, which is exactly what an uninterrupted run
//!   would have computed: enforcement is deterministic per subject, so
//!   WAL-then-apply gives effectively-once semantics.
//! * **Snapshot** — every [`StoreConfig::snapshot_every`] events (or on
//!   demand), the full engine state is imaged at the current WAL
//!   position, written atomically, the WAL rotates, and segments no
//!   **retained** snapshot could ever need are deleted (recovery may
//!   fall back to the previous snapshot if the newest is damaged, so
//!   compaction trails the oldest retained one, not the newest).
//! * **Recover** — [`DurableEngine::open`] loads the newest valid
//!   snapshot, rebuilds the engine from it, and replays WAL records with
//!   sequence `>= snapshot.seq` through the normal ingest path. A torn or
//!   bit-flipped WAL tail is truncated at the last intact record — never
//!   a panic, never a lost record *before* the damage.
//! * **Policy edits** — [`DurableEngine::update_policy`] and
//!   [`DurableEngine::revoke_authorization`] apply the epoch swap (and,
//!   for revocation, per-shard grant/counter invalidation) and snapshot
//!   immediately: admin changes are rare and the WAL intentionally
//!   carries only sensor events, so the snapshot is what makes policy
//!   durable. Each acknowledged edit also advances an on-disk
//!   policy-epoch marker; recovery refuses a snapshot fallback that
//!   would silently revert an acknowledged edit.

use crate::archive::{ArchiveData, ArchiveStore, LazyArchive};
use crate::crc::crc32;
use crate::history::{self, HistoryError};
use crate::snapshot::{SnapshotStore, StoreSnapshot};
use crate::wal::{Wal, WalBatch, WalConfig, WalRecovery};
use ltam_core::capability::{AdminOp, AdminOutcome, WireAuth};
use ltam_core::db::AuthId;
use ltam_core::model::Authorization;
use ltam_core::retention::RetentionPolicy;
use ltam_core::subject::SubjectId;
use ltam_core::AuthorizationDb;
use ltam_engine::batch::{shard_of, BatchOutcome, Event, PolicyCore, ShardedEngine};
use ltam_engine::movement::{Contact, MovementKind};
use ltam_engine::shard::{ShardState, ShardStateImage};
use ltam_engine::violation::Alert;
use ltam_engine::EngineReadView;
use ltam_engine::Violation;
use ltam_graph::LocationId;
use ltam_situate::{SituationOp, SituationOutcome};
use ltam_time::{Interval, Time};
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Tunables for a durable engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// WAL segment rotation threshold, in bytes.
    pub segment_bytes: u64,
    /// Automatic snapshot cadence, in events since the last snapshot
    /// (0 disables automatic snapshots; call
    /// [`DurableEngine::snapshot`] manually).
    pub snapshot_every: u64,
    /// `fsync` WAL batches and snapshots (disable only for benchmarks).
    pub fsync: bool,
    /// History retention: `None` keeps all history live forever (the
    /// pre-retention behavior); `Some(policy)` bounds live state by
    /// pruning history past the policy's horizon on ingest-driven
    /// maintenance runs, archiving it first (see
    /// [`DurableEngine::run_retention`]).
    pub retention: Option<RetentionPolicy>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_bytes: 1 << 20,
            snapshot_every: 100_000,
            fsync: true,
            retention: None,
        }
    }
}

impl StoreConfig {
    fn wal(&self) -> WalConfig {
        WalConfig {
            segment_bytes: self.segment_bytes,
            fsync: self.fsync,
        }
    }
}

/// What [`DurableEngine::open`] did to bring the store back.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// WAL position of the snapshot the engine was rebuilt from.
    pub snapshot_seq: u64,
    /// WAL-tail events replayed through the ingest path.
    pub replayed: usize,
    /// WAL-tail quarantine events reloaded onto the quarantine ledger
    /// (they never pass through enforcement).
    pub replayed_quarantined: usize,
    /// WAL-tail situation ops re-applied during replay, each at its own
    /// sequence position (a mode declaration changes how every later
    /// replayed event is judged).
    pub replayed_situations: usize,
    /// Violations raised during replay (already counted in the snapshot
    /// run's history if the crash lost no state — replay re-detects them).
    pub replayed_violations: usize,
    /// Bytes truncated off a torn/corrupt WAL tail.
    pub truncated_bytes: u64,
    /// WAL segments dropped because they followed a corrupt region.
    pub dropped_segments: usize,
    /// Movement-history retention watermark carried by the recovered
    /// snapshot (0 = never pruned).
    pub retention_watermark: u64,
    /// Archive coverage end at open time (0 = no archive segments).
    /// Historical queries below `retention_watermark` refuse unless the
    /// archive reaches the watermark.
    pub archive_covered_to: u64,
    /// `Some(message)` if the archive chain could not be scanned at
    /// open time (gappy or corrupt segments). Enforcement and recovery
    /// proceed — the archive is a query tier, not the recovery path —
    /// but below-watermark queries will fail until it is repaired, so
    /// operators should alert on this (see `docs/OPERATIONS.md` §6.6).
    pub archive_error: Option<String>,
}

/// A [`ShardedEngine`] with a durable event log and snapshots underneath.
/// See the [module docs](self) for the protocol.
#[derive(Debug)]
pub struct DurableEngine {
    dir: PathBuf,
    config: StoreConfig,
    /// Shared with every [`ReadView`]: the sharded engine synchronizes
    /// reads per shard itself, so views answer queries concurrently
    /// while this handle serializes all mutation.
    engine: Arc<ShardedEngine>,
    wal: Wal,
    snapshots: SnapshotStore,
    archive: Arc<ArchiveStore>,
    /// Lazily-loaded archive tier, cached across queries (segments load
    /// on first touch; see [`LazyArchive`]); invalidated by retention
    /// runs (which append a segment). Interior mutability so the
    /// tier-aware queries take `&self` — shared with [`ReadView`]s,
    /// which answer reads concurrently while ingest proceeds here.
    archive_cache: Arc<parking_lot::Mutex<LazyArchive>>,
    /// Store-level counters mirrored for [`ReadView`]s after every
    /// mutation (a view must not reach into `Wal` or the sequence
    /// bookkeeping, which only this writer handle may touch).
    cells: Arc<StatusCells>,
    /// An in-flight background snapshot write, if any (see
    /// [`DurableEngine::snapshot_async`]).
    pending_snapshot: Option<PendingSnapshot>,
    applied: u64,
    since_snapshot: u64,
    policy_epoch: u64,
    /// Enforcement-policy edits acknowledged so far — the replication
    /// barrier. A strict subset of `policy_epoch`'s bumps: wire-auth
    /// edits (token mint/revoke, trust changes) are durable policy
    /// edits but do not change what the WAL's events mean, so a
    /// follower keeps tailing across them instead of re-bootstrapping.
    enforcement_epoch: u64,
    /// Highest event time seen — the monitoring clock retention
    /// maintenance runs against. Quarantined events deliberately do
    /// **not** advance it: an untrusted sensor must not be able to
    /// fast-forward time (expiring tokens and grants) from quarantine.
    clock: Time,
    snapshot_error: Option<io::Error>,
    retention_error: Option<io::Error>,
    /// Held for the engine's lifetime; released (file removed) on drop.
    _lock: StoreLock,
}

/// Store counters a [`ReadView`] can read without touching the writer:
/// published by the writer after every mutation, loaded lock-free by
/// any number of views.
#[derive(Debug, Default)]
struct StatusCells {
    applied: AtomicU64,
    snapshot_seq: AtomicU64,
    policy_epoch: AtomicU64,
    enforcement_epoch: AtomicU64,
    wal_fsyncs: AtomicU64,
    /// The monitoring clock (highest trusted event time), as a raw
    /// chronon — the time the serving tier evaluates token validity at.
    clock: AtomicU64,
}

/// A background snapshot write in flight: the engine was imaged and the
/// WAL rotated synchronously; the encode + write + fsync run on this
/// thread. Joined (and the WAL compacted) before the next snapshot,
/// any policy edit, or drop.
#[derive(Debug)]
struct PendingSnapshot {
    join: JoinHandle<io::Result<PathBuf>>,
}

/// Lower the **calling thread's** scheduling priority (nice +10).
///
/// The background snapshot writer burns ~tens of milliseconds of CPU
/// encoding a multi-megabyte image; on a small machine (1 vCPU) that
/// steals whole scheduler quanta from the poll and commit threads and
/// shows up directly as tail latency on the wire. Niceness keeps the
/// writer running whenever the box is otherwise idle but yields to the
/// serving threads when it is not. On Linux `setpriority(PRIO_PROCESS,
/// 0, ..)` is per-thread, which is exactly the scope we want; a
/// failure (or a non-Linux target) is harmless — the write still
/// happens, just without the hint.
fn lower_thread_priority() {
    #[cfg(target_os = "linux")]
    {
        extern "C" {
            fn setpriority(which: i32, who: u32, prio: i32) -> i32;
        }
        const PRIO_PROCESS: i32 = 0;
        // SAFETY: plain syscall wrapper; pid 0 = the calling thread on
        // Linux. The return value is ignored on purpose (best effort).
        unsafe {
            setpriority(PRIO_PROCESS, 0, 10);
        }
    }
}

/// Best-effort single-opener guard: a `store.lock` file holding the
/// owner's pid. Two live engines appending to one WAL would interleave
/// records that neither's bookkeeping describes, so `create`/`open`
/// refuse while another **live** process holds the lock. A lock left by
/// a crashed process (its pid no longer alive) is stale and is taken
/// over — recovery after a crash is the whole point of the store — at
/// the (documented, accepted) cost of pid-reuse false negatives on
/// non-Linux systems where liveness cannot be probed via `/proc`.
#[derive(Debug)]
struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    fn acquire(dir: &Path) -> io::Result<StoreLock> {
        let path = dir.join("store.lock");
        // The creation itself is atomic (O_EXCL): of N racing openers,
        // exactly one creates the file. A stale lock (dead pid) is
        // removed and the acquire retried — racing removers then race on
        // the next create_new, which again admits exactly one.
        for _ in 0..8 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    f.write_all(format!("{}\n", std::process::id()).as_bytes())?;
                    return Ok(StoreLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    if let Some(pid) = holder {
                        if Path::new(&format!("/proc/{pid}")).exists() {
                            return Err(io::Error::new(
                                io::ErrorKind::WouldBlock,
                                format!(
                                    "{} is locked by live process {pid}; two engines must \
                                     not append to one WAL",
                                    dir.display()
                                ),
                            ));
                        }
                    }
                    // Stale (dead pid) or unreadable: clear and retry.
                    match std::fs::remove_file(&path) {
                        Ok(()) => {}
                        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::other(format!(
            "could not acquire {} after repeated stale-lock takeovers",
            path.display()
        )))
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Release only if the lock still names us (never delete a lock a
        // takeover replaced).
        let ours = std::fs::read_to_string(&self.path)
            .map(|s| s.trim().parse::<u32>() == Ok(std::process::id()))
            .unwrap_or(false);
        if ours {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Marker file recording the highest **acknowledged** policy epoch
/// (`"LTPE"` magic, version, epoch u64, CRC). Written after the snapshot
/// carrying a policy edit lands, so snapshot fallback can detect — and
/// refuse — a recovery that would silently revert an acked edit.
const EPOCH_MARKER: &str = "policy.epoch";

fn write_epoch_marker(dir: &Path, fsync: bool, epoch: u64) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(20);
    bytes.extend_from_slice(b"LTPE");
    bytes.extend_from_slice(&1u16.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes());
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&crc32(&epoch.to_le_bytes()).to_le_bytes());
    let tmp = dir.join("policy.epoch.tmp");
    {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&bytes)?;
        if fsync {
            f.sync_data()?;
        }
    }
    std::fs::rename(&tmp, dir.join(EPOCH_MARKER))?;
    if fsync {
        // The rename's dirent must be durable before the edit is acked —
        // a swallowed failure here would let a power cut silently revert
        // an acknowledged policy edit, the exact hole this marker closes.
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all()?;
        }
    }
    Ok(())
}

/// The recorded epoch, or `None` for a missing/corrupt marker (best
/// effort: a corrupt marker degrades to the pre-marker behavior, it
/// never blocks recovery on its own).
fn read_epoch_marker(dir: &Path) -> Option<u64> {
    let bytes = std::fs::read(dir.join(EPOCH_MARKER)).ok()?;
    if bytes.len() != 20 || &bytes[0..4] != b"LTPE" {
        return None;
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let crc = u32::from_le_bytes(bytes[16..20].try_into().ok()?);
    (crc32(&epoch.to_le_bytes()) == crc).then_some(epoch)
}

impl DurableEngine {
    /// Create a fresh store in `dir` (refusing to overwrite an existing
    /// one) and write the initial snapshot of `core` at sequence 0.
    pub fn create(
        dir: &Path,
        core: PolicyCore,
        shards: usize,
        config: StoreConfig,
    ) -> io::Result<(DurableEngine, crossbeam::channel::Receiver<Alert>)> {
        std::fs::create_dir_all(dir)?;
        let lock = StoreLock::acquire(dir)?;
        let snapshots = SnapshotStore::with_fsync(dir, config.fsync);
        if snapshots.any_present()? {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already holds an ltam-store; use open()", dir.display()),
            ));
        }
        let (wal, recovered) = Wal::open(dir, config.wal())?;
        if !recovered.events.is_empty()
            || !recovered.quarantined.is_empty()
            || !recovered.situations.is_empty()
        {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already holds WAL segments; use open()", dir.display()),
            ));
        }
        let (engine, alerts) = ShardedEngine::new(core, shards);
        let mut durable = DurableEngine {
            dir: dir.to_path_buf(),
            config,
            engine: Arc::new(engine),
            wal,
            snapshots,
            archive: Arc::new(ArchiveStore::with_fsync(dir, config.fsync)),
            archive_cache: Arc::new(parking_lot::Mutex::new(LazyArchive::new())),
            cells: Arc::new(StatusCells::default()),
            pending_snapshot: None,
            applied: 0,
            since_snapshot: 0,
            policy_epoch: 0,
            enforcement_epoch: 0,
            clock: Time::ZERO,
            snapshot_error: None,
            retention_error: None,
            _lock: lock,
        };
        durable.snapshot()?;
        Ok((durable, alerts))
    }

    /// Recover a store from `dir` with the shard count it was
    /// snapshotted under.
    pub fn open(
        dir: &Path,
        config: StoreConfig,
    ) -> io::Result<(
        DurableEngine,
        crossbeam::channel::Receiver<Alert>,
        RecoveryReport,
    )> {
        Self::open_impl(dir, config, None)
    }

    /// Recover a store from `dir` onto `shards` shards, redistributing
    /// the snapshotted per-subject state if the count changed.
    pub fn open_with_shards(
        dir: &Path,
        config: StoreConfig,
        shards: usize,
    ) -> io::Result<(
        DurableEngine,
        crossbeam::channel::Receiver<Alert>,
        RecoveryReport,
    )> {
        assert!(shards >= 1, "need at least one shard");
        Self::open_impl(dir, config, Some(shards))
    }

    fn open_impl(
        dir: &Path,
        config: StoreConfig,
        shards_override: Option<usize>,
    ) -> io::Result<(
        DurableEngine,
        crossbeam::channel::Receiver<Alert>,
        RecoveryReport,
    )> {
        let lock = StoreLock::acquire(dir)?;
        let snapshots = SnapshotStore::with_fsync(dir, config.fsync);
        let snap = snapshots.load_latest()?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} holds no valid snapshot; use create()", dir.display()),
            )
        })?;
        let (mut wal, recovered): (Wal, WalRecovery) = Wal::open(dir, config.wal())?;
        if wal.next_seq() < snap.seq {
            // The log ends before the snapshot's cover point. If WAL
            // repair truncated or quarantined anything to get here, the
            // discarded region may have held fsync-acked events past the
            // snapshot (e.g. a missing middle segment took the intact
            // tail segments with it) — refuse rather than silently
            // resume at the snapshot. The quarantined files are still in
            // the directory for manual repair.
            if recovered.truncated_bytes > 0 || recovered.dropped_segments > 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "WAL loss behind the snapshot: repair left the log at seq {} but the \
                         snapshot covers {}; quarantined/truncated segments may hold acked \
                         events past the snapshot — not recovering over them",
                        wal.next_seq(),
                        snap.seq
                    ),
                ));
            }
            // No corruption was repaired: the WAL is simply absent
            // (externally lost). The snapshot fully covers the state;
            // restart the log at the snapshot position.
            wal.reset_to(snap.seq)?;
        } else {
            // The WAL's intact records are contiguous (the scan stops at
            // any gap), so the log covers [wal_start, next_seq). If that
            // range starts *after* the snapshot we are recovering from,
            // events in between are unrecoverable — refuse rather than
            // silently resurrect a state with a hole in its history.
            let wal_start = [
                recovered.events.first().map(|&(s, _)| s),
                recovered.quarantined.first().map(|&(s, _)| s),
                recovered.situations.first().map(|&(s, _)| s),
            ]
            .into_iter()
            .flatten()
            .min()
            .unwrap_or(wal.next_seq());
            if wal_start > snap.seq {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "WAL gap: log starts at seq {wal_start} but the usable snapshot covers \
                         only {}; events in between are lost (was the log compacted past a \
                         snapshot that is now corrupt?)",
                        snap.seq
                    ),
                ));
            }
        }

        // The WAL preserves events across a snapshot fallback, but policy
        // edits live only in snapshots: recovering from a snapshot with a
        // smaller policy epoch than the store ever acknowledged would
        // silently re-enforce under the reverted policy. Refuse.
        if let Some(acked_epoch) = read_epoch_marker(dir) {
            if snap.policy_epoch < acked_epoch {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "policy revert: the usable snapshot carries policy epoch {} but edits \
                         through epoch {acked_epoch} were acknowledged; recovering would \
                         silently undo them (is the newest snapshot corrupt?)",
                        snap.policy_epoch
                    ),
                ));
            }
        }

        // Older snapshots predate the epoch split: every policy edit was
        // an enforcement edit then, so the durability counter is the
        // right floor.
        let enforcement_epoch = snap.enforcement_epoch.unwrap_or(snap.policy_epoch);
        let snapshot_quarantine = snap.quarantine.unwrap_or_default();
        let policy = PolicyCore::from_image(snap.policy);
        let shards = shards_override.unwrap_or(snap.shards);
        let images = if shards == snap.shards {
            snap.states
        } else {
            redistribute(snap.states, shards, policy.db())
        };
        let states: Vec<ShardState> = images.into_iter().map(ShardState::from_image).collect();
        let (engine, alerts) = ShardedEngine::with_states(policy, states);

        let replay: Vec<(u64, Event)> = recovered
            .events
            .iter()
            .filter(|&&(seq, _)| seq >= snap.seq)
            .copied()
            .collect();
        let replay_situations: Vec<(u64, SituationOp)> = recovered
            .situations
            .iter()
            .filter(|&&(seq, _)| seq >= snap.seq)
            .cloned()
            .collect();
        let archive = ArchiveStore::with_fsync(dir, config.fsync);
        // A broken archive chain must not hide behind a healthy-looking
        // zero: it means below-watermark queries will refuse until the
        // segments are restored.
        let (archive_covered_to, archive_error) = match archive.coverage_end() {
            Ok(covered) => (covered, None),
            Err(e) => (0, Some(e.to_string())),
        };
        // Rebuild the quarantine ledger: the snapshot's image plus the
        // WAL tail's quarantine records past the snapshot point
        // (`load_quarantine` replaces, so build the full list first).
        let mut quarantine = snapshot_quarantine;
        let replayed_quarantined = recovered
            .quarantined
            .iter()
            .filter(|&&(seq, _)| seq >= snap.seq)
            .count();
        quarantine.extend(
            recovered
                .quarantined
                .iter()
                .filter(|&&(seq, _)| seq >= snap.seq)
                .map(|&(_, q)| q),
        );
        engine.load_quarantine(quarantine);
        let mut report = RecoveryReport {
            snapshot_seq: snap.seq,
            replayed: replay.len(),
            replayed_quarantined,
            replayed_situations: replay_situations.len(),
            replayed_violations: 0,
            truncated_bytes: recovered.truncated_bytes,
            dropped_segments: recovered.dropped_segments,
            retention_watermark: 0,
            archive_covered_to,
            archive_error,
        };
        // Replay events and situation ops merged by sequence: a mode
        // declaration (or constraint edit) in the tail changes how every
        // later event is judged, so it must be re-applied at exactly the
        // position it held on the uninterrupted run. Each op bumps the
        // in-memory policy epoch like the live path did; the snapshot
        // that normally follows an op never landed (that is why it is
        // still in the tail), so the cadence will take one later.
        let mut policy_epoch = snap.policy_epoch;
        if !replay.is_empty() || !replay_situations.is_empty() {
            let _span = ltam_obs::timed!(
                "store_recovery_replay_seconds",
                "WAL-tail replay time during open (one sample per recovery)"
            );
            let mut at = 0usize;
            let mut chunk: Vec<Event> = Vec::new();
            let mut ingest_upto = |engine: &ShardedEngine, end: usize, at: &mut usize| {
                if end > *at {
                    chunk.clear();
                    chunk.extend(replay[*at..end].iter().map(|&(_, e)| e));
                    report.replayed_violations += engine.ingest(&chunk).violations.len();
                    *at = end;
                }
            };
            for (op_seq, op) in &replay_situations {
                let end = at + replay[at..].partition_point(|&(s, _)| s < *op_seq);
                ingest_upto(&engine, end, &mut at);
                engine.update_policy(|p| {
                    p.apply_situation(op);
                });
                policy_epoch += 1;
            }
            ingest_upto(&engine, replay.len(), &mut at);
        }
        report.retention_watermark = engine.retention_watermark().get();
        // Re-seed the monitoring clock from the replayed tail so
        // ingest-driven retention resumes at the right point (a stale
        // clock only delays the next run, never prunes early).
        let clock = replay
            .iter()
            .map(|(_, e)| e.time())
            .max()
            .unwrap_or(Time::ZERO)
            .max(engine.retention_watermark());
        let applied = wal.next_seq().max(snap.seq);
        let durable = DurableEngine {
            dir: dir.to_path_buf(),
            config,
            engine: Arc::new(engine),
            wal,
            snapshots,
            archive: Arc::new(archive),
            archive_cache: Arc::new(parking_lot::Mutex::new(LazyArchive::new())),
            cells: Arc::new(StatusCells::default()),
            pending_snapshot: None,
            applied,
            since_snapshot: applied - snap.seq,
            policy_epoch,
            enforcement_epoch,
            clock,
            snapshot_error: None,
            retention_error: None,
            _lock: lock,
        };
        durable.publish_cells();
        Ok((durable, alerts, report))
    }

    /// The wrapped engine, for reads and queries.
    ///
    /// **Mutations through this reference bypass durability**: events fed
    /// to the engine directly are not WAL-logged, and admin calls like
    /// `ShardedEngine::revoke_authorization` are not snapshotted — a
    /// crash silently un-does them. Use [`DurableEngine::ingest`],
    /// [`DurableEngine::update_policy`] and
    /// [`DurableEngine::revoke_authorization`] instead.
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Events durably applied so far (the WAL sequence).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// WAL sequence the most recent snapshot covers (recovery replays
    /// at most `applied() - last_snapshot_seq()` events).
    pub fn last_snapshot_seq(&self) -> u64 {
        self.applied - self.since_snapshot
    }

    /// The current policy epoch (bumped by every durable policy edit).
    pub fn policy_epoch(&self) -> u64 {
        self.policy_epoch
    }

    /// The current enforcement epoch (bumped only by edits that change
    /// what enforcement means — the replication barrier; see the field
    /// docs).
    pub fn enforcement_epoch(&self) -> u64 {
        self.enforcement_epoch
    }

    /// The monitoring clock: the highest trusted event time seen. Token
    /// temporal validity is evaluated against this clock.
    pub fn clock(&self) -> Time {
        self.clock
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `fsync` calls the WAL has issued since open — divide events by
    /// this to see group commit working.
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.fsyncs()
    }

    /// A cloneable, read-only view over this store: tier-aware history
    /// queries, engine status, and the store counters — everything a
    /// serving tier's read path needs — answered **concurrently** with
    /// this writer handle (per-shard locks, the archive cache's own
    /// lock, and atomic counter cells; never the writer's `&mut self`).
    pub fn read_view(&self) -> ReadView {
        ReadView {
            engine: Arc::clone(&self.engine),
            archive: Arc::clone(&self.archive),
            archive_cache: Arc::clone(&self.archive_cache),
            cells: Arc::clone(&self.cells),
            dir: self.dir.clone(),
        }
    }

    /// Durably ingest a batch: WAL-append + `fsync`, then enforce, then
    /// snapshot if the cadence says so.
    ///
    /// `Err` means exactly one thing: the batch did **not** reach the
    /// WAL (the engine was not touched either) — retrying is safe. A
    /// failure of the piggybacked automatic snapshot does not fail the
    /// batch (its durability rests on the WAL, not the snapshot); the
    /// error is deferred to [`DurableEngine::take_snapshot_error`] and
    /// the snapshot retries at the next cadence point.
    pub fn ingest(&mut self, events: &[Event]) -> io::Result<BatchOutcome> {
        let mut outcomes = self.commit_group(&[events])?;
        self.maintain();
        Ok(outcomes.pop().expect("one batch in, one outcome out"))
    }

    /// Durably commit several independently-submitted batches under
    /// **one** WAL write and one `fsync` — the group-commit primitive a
    /// commit thread drains its submission queue into (see
    /// [`GroupCommit`](crate::GroupCommit)). Each batch stays its own
    /// WAL record (all-or-nothing across a crash, exactly as if it had
    /// been ingested alone) and is enforced in submission order, so the
    /// returned outcomes line up with `batches`.
    ///
    /// `Err` means no batch in the group reached the WAL (and the
    /// engine was not touched): every submitter may safely retry.
    /// Maintenance (retention, snapshot cadence) is deliberately **not**
    /// run here — callers ack their waiters first, then call
    /// [`DurableEngine::maintain`], keeping snapshot stalls out of the
    /// commit latency path.
    pub fn commit_group(&mut self, batches: &[&[Event]]) -> io::Result<Vec<BatchOutcome>> {
        self.wal.append_batches(batches)?;
        let mut outcomes = Vec::with_capacity(batches.len());
        for batch in batches {
            let outcome = self.engine.ingest(batch);
            self.applied += batch.len() as u64;
            self.since_snapshot += batch.len() as u64;
            if let Some(t) = batch.iter().map(Event::time).max() {
                self.clock = self.clock.max(t);
            }
            outcomes.push(outcome);
        }
        self.publish_cells();
        Ok(outcomes)
    }

    /// Run the ingest-path maintenance that used to ride every batch:
    /// ingest-driven retention once the clock lets the watermark
    /// advance, and the snapshot cadence (taken asynchronously — the
    /// engine is imaged and the WAL rotated inline, but the multi-MB
    /// encode + write + fsync happen on a background thread; see
    /// [`DurableEngine::snapshot_async`]).
    ///
    /// A failure never fails any batch — batch durability rests on the
    /// WAL — and is deferred to [`DurableEngine::take_retention_error`]
    /// / [`DurableEngine::take_snapshot_error`]; live state is only
    /// dropped after its archive segment is durable, so a failed run
    /// leaves history intact and retries at the next cadence point.
    pub fn maintain(&mut self) {
        if let Some(policy) = self.config.retention {
            if policy.should_run(self.retention_anchor(&policy), self.clock) {
                if let Err(e) = self.run_retention_with(&policy, self.clock) {
                    self.retention_error = Some(e);
                }
            }
        }
        if self.config.snapshot_every > 0 && self.since_snapshot >= self.config.snapshot_every {
            // If the previous background write is still running, taking
            // another snapshot now would *block* on joining it — turning
            // the async cadence into a synchronous stall on the ingest
            // path (the writer is deliberately nice'd, so under load the
            // join can wait tens of milliseconds). Skip this round
            // instead: `since_snapshot` keeps growing and the next
            // maintain() retries, and the WAL covers everything until
            // then regardless.
            let writer_busy = self
                .pending_snapshot
                .as_ref()
                .is_some_and(|p| !p.join.is_finished());
            if !writer_busy {
                if let Err(e) = self.snapshot_async() {
                    self.snapshot_error = Some(e);
                }
            }
        }
    }

    /// The error of the most recent failed automatic snapshot, if any
    /// (cleared by this call; see [`DurableEngine::ingest`]).
    pub fn take_snapshot_error(&mut self) -> Option<io::Error> {
        self.snapshot_error.take()
    }

    /// The error of the most recent failed ingest-driven retention run,
    /// if any (cleared by this call; see [`DurableEngine::ingest`]).
    pub fn take_retention_error(&mut self) -> Option<io::Error> {
        self.retention_error.take()
    }

    /// Apply a policy edit as one epoch swap and make it durable: the
    /// WAL carries only sensor events, so the edit is snapshotted
    /// immediately and the acknowledged policy epoch is advanced (which
    /// recovery checks — a snapshot fallback will refuse to revert this
    /// edit rather than silently re-enforce under the old policy).
    ///
    /// On `Err` the edit is live in memory but **not durable**: a crash
    /// before a later successful snapshot reverts it.
    pub fn update_policy<R>(&mut self, f: impl FnOnce(&mut PolicyCore) -> R) -> io::Result<R> {
        let r = self.engine.update_policy(f);
        self.policy_epoch += 1;
        self.enforcement_epoch += 1;
        self.snapshot()?;
        write_epoch_marker(&self.dir, self.config.fsync, self.policy_epoch)?;
        Ok(r)
    }

    /// Apply a wire-auth edit (token mint/revoke, trust change) with the
    /// same durability protocol as [`DurableEngine::update_policy`] —
    /// epoch bump, immediate snapshot, acked-epoch marker — but
    /// **without** advancing the enforcement epoch: the edit changes who
    /// may talk to this store, not what its event history means, so
    /// followers keep tailing across it.
    pub fn update_wire_policy<R>(&mut self, f: impl FnOnce(&mut WireAuth) -> R) -> io::Result<R> {
        let r = self.engine.update_policy(|p| f(p.wire_mut()));
        self.policy_epoch += 1;
        self.snapshot_keep_wal()?;
        write_epoch_marker(&self.dir, self.config.fsync, self.policy_epoch)?;
        Ok(r)
    }

    /// Apply one [`AdminOp`] durably and return its outcome. This is
    /// the single dispatch point the serving tier's admin RPCs funnel
    /// through: each arm routes to the durability path with the right
    /// epoch semantics (wire-auth edits skip the enforcement-epoch
    /// bump; authorization edits take it).
    pub fn apply_admin(&mut self, op: AdminOp) -> io::Result<AdminOutcome> {
        match op {
            AdminOp::MintToken {
                subject,
                scopes,
                validity,
                secret,
            } => self.update_wire_policy(|w| AdminOutcome::TokenMinted {
                id: w.mint(subject, scopes, validity, secret),
            }),
            AdminOp::RevokeToken { id } => {
                self.update_wire_policy(|w| AdminOutcome::TokenRevoked {
                    existed: w.revoke(id),
                })
            }
            AdminOp::SetTrust { subject, level } => self.update_wire_policy(|w| {
                w.trust.set_level(subject, level);
                AdminOutcome::TrustSet
            }),
            AdminOp::SetTrustThreshold { threshold } => self.update_wire_policy(|w| {
                w.trust.threshold = threshold;
                AdminOutcome::TrustSet
            }),
            AdminOp::SetAuthRequired { required } => self.update_wire_policy(|w| {
                w.required = required;
                AdminOutcome::AuthRequiredSet
            }),
            AdminOp::AddAuthorization(auth) => {
                self.update_policy(|p| AdminOutcome::AuthorizationAdded {
                    id: p.add_authorization(auth),
                })
            }
            AdminOp::RevokeAuthorization { id } => {
                self.revoke_authorization(id)
                    .map(|revoked| AdminOutcome::AuthorizationRevoked {
                        existed: revoked.is_some(),
                    })
            }
        }
    }

    /// Durably apply one [`SituationOp`] — a mode declaration, a
    /// responder/pin edit, or a workflow-constraint change.
    ///
    /// Unlike admin edits, situation ops change what the event stream
    /// *means*, so they are **WAL-logged** (own record kind, one
    /// sequence number) before the epoch swap: a follower tailing the
    /// log re-applies the op at the same stream position and judges
    /// every later event identically — no re-bootstrap, because only
    /// the policy epoch bumps, never the enforcement epoch. The
    /// immediate snapshot then covers the op's sequence, and the acked
    /// epoch marker protects it from snapshot fallback, exactly like
    /// [`DurableEngine::update_wire_policy`]. A crash between the WAL
    /// append and the snapshot replays the op at its recorded position
    /// on recovery.
    pub fn apply_situation(&mut self, op: &SituationOp) -> io::Result<SituationOutcome> {
        self.wal.append_mixed(&[WalBatch::Situation(op)])?;
        let outcome = self.engine.update_policy(|p| p.apply_situation(op));
        self.policy_epoch += 1;
        self.applied += 1;
        self.since_snapshot += 1;
        self.snapshot_keep_wal()?;
        write_epoch_marker(&self.dir, self.config.fsync, self.policy_epoch)?;
        ltam_obs::gauge!(
            "situate_mode",
            "Declared situation mode (0 = normal, 1 = emergency, 2 = lockdown)"
        )
        .set(self.engine.policy().situation().mode_gauge());
        self.publish_cells();
        Ok(outcome)
    }

    /// Durably record a batch from a below-trust-threshold sensor on
    /// the quarantine ledger: WAL-append (own record kind) + `fsync`,
    /// then onto the in-memory ledger — never through enforcement, and
    /// never advancing the monitoring clock (see the `clock` field
    /// docs). Quarantined events consume WAL sequence numbers like any
    /// other record, so `applied` and replication stay uniform. Returns
    /// the number of events quarantined.
    pub fn commit_quarantine(
        &mut self,
        source: SubjectId,
        level: u8,
        events: &[Event],
    ) -> io::Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        self.wal.append_mixed(&[WalBatch::Quarantine {
            source,
            level,
            events,
        }])?;
        self.engine.ingest_quarantined(source, level, events);
        self.applied += events.len() as u64;
        self.since_snapshot += events.len() as u64;
        self.publish_cells();
        Ok(events.len())
    }

    /// Durably revoke an authorization: removes it from the policy epoch
    /// **and** lapses its pending grants and usage counters on every
    /// shard (via [`ShardedEngine::revoke_authorization`]), then
    /// snapshots like [`DurableEngine::update_policy`]. This is the only
    /// crash-safe revocation path — the same call on
    /// [`DurableEngine::engine`] would not survive a restart.
    pub fn revoke_authorization(&mut self, id: AuthId) -> io::Result<Option<Authorization>> {
        let revoked = self.engine.revoke_authorization(id);
        self.policy_epoch += 1;
        self.enforcement_epoch += 1;
        self.snapshot()?;
        write_epoch_marker(&self.dir, self.config.fsync, self.policy_epoch)?;
        Ok(revoked)
    }

    /// Image the engine at the current WAL position, write the snapshot,
    /// rotate the WAL and compact segments no retained snapshot needs.
    /// Returns the covered sequence.
    ///
    /// Compaction goes up to the **oldest retained** snapshot, not the
    /// one just written: if the newest file is later found corrupt,
    /// recovery falls back to the older snapshot and must still find the
    /// WAL records between the two.
    pub fn snapshot(&mut self) -> io::Result<u64> {
        self.snapshot_finish()?;
        let snapshot = self.image();
        self.snapshots.write(&snapshot)?;
        self.wal.rotate()?;
        self.compact_behind_snapshots()?;
        self.since_snapshot = 0;
        self.publish_cells();
        Ok(self.applied)
    }

    /// Image the engine at the current WAL position **synchronously**
    /// (about a millisecond), then hand the expensive part — encoding
    /// and durably writing the multi-megabyte snapshot file — to a
    /// background thread. Returns the covered sequence.
    ///
    /// Unlike [`DurableEngine::snapshot`], the WAL is **not** rotated
    /// here: rotation costs several journal commits (seal + create +
    /// directory fsync) on the ingest path, and its only benefit at a
    /// snapshot point is compaction granularity. Segments still seal on
    /// size ([`WalConfig::segment_bytes`]), and the join's compaction
    /// drops whichever sealed segments the retained snapshots cover.
    ///
    /// Correctness does not depend on the write finishing: until the
    /// file is durable, recovery falls back to the previous snapshot and
    /// replays the full WAL (compaction is deferred to the join for
    /// exactly this reason). The write is joined — and any error
    /// surfaced — by the next snapshot, policy edit, or drop.
    pub fn snapshot_async(&mut self) -> io::Result<u64> {
        self.snapshot_finish()?;
        let snapshot = self.image();
        let store = self.snapshots.clone();
        self.pending_snapshot = Some(PendingSnapshot {
            join: std::thread::spawn(move || {
                lower_thread_priority();
                // Grace period: imaging just stalled the commit thread
                // for ~a millisecond, so a backlog of batches is about
                // to group-commit. Let their fsyncs hit a quiet journal
                // before this thread starts competing for CPU and disk.
                std::thread::sleep(std::time::Duration::from_millis(10));
                store.write(&snapshot)
            }),
        });
        self.since_snapshot = 0;
        self.publish_cells();
        Ok(self.applied)
    }

    /// Join an in-flight background snapshot write, if any, and run the
    /// compaction it deferred. An `Err` means the snapshot file did
    /// **not** land (no state is lost — the WAL still covers it).
    pub fn snapshot_finish(&mut self) -> io::Result<()> {
        let Some(pending) = self.pending_snapshot.take() else {
            return Ok(());
        };
        match pending.join.join() {
            Ok(Ok(_path)) => self.compact_behind_snapshots(),
            Ok(Err(e)) => Err(e),
            Err(_) => Err(io::Error::other("background snapshot writer panicked")),
        }
    }

    /// Write a snapshot but leave the WAL alone: no rotation, no
    /// compaction. This is the snapshot the **tail-transparent** policy
    /// edits take (wire-auth edits, situation ops — the ones followers
    /// keep tailing across): a storm of such edits through
    /// [`DurableEngine::snapshot`] would rotate and compact the log
    /// under a briefly-lagging follower's cursor, parking it
    /// `NeedsBootstrap` for no semantic reason. The snapshot file alone
    /// carries the edit's durability (the epoch marker is written after
    /// it lands); compaction waits for the event-cadence snapshots.
    fn snapshot_keep_wal(&mut self) -> io::Result<u64> {
        self.snapshot_finish()?;
        let snapshot = self.image();
        self.snapshots.write(&snapshot)?;
        self.since_snapshot = 0;
        self.publish_cells();
        Ok(self.applied)
    }

    fn image(&self) -> StoreSnapshot {
        StoreSnapshot {
            seq: self.applied,
            policy_epoch: self.policy_epoch,
            shards: self.engine.shard_count(),
            policy: self.engine.policy().image(),
            states: self.engine.export_images(),
            enforcement_epoch: Some(self.enforcement_epoch),
            quarantine: Some(self.engine.export_quarantine()),
        }
    }

    /// Compaction goes up to the **oldest retained** snapshot, not the
    /// newest: if the newest file is later found corrupt, recovery falls
    /// back to the older snapshot and must still find the WAL records
    /// between the two.
    fn compact_behind_snapshots(&mut self) -> io::Result<()> {
        let cover = self
            .snapshots
            .oldest_retained_seq()?
            .unwrap_or(self.applied)
            .min(self.applied);
        self.wal.compact(cover)?;
        Ok(())
    }

    /// Mirror the writer-side counters into the cells [`ReadView`]s
    /// read (release-ordered so a view that sees `applied` also sees
    /// the shard state that batch produced — the shard mutexes provide
    /// the actual synchronization; the cells are monitoring counters).
    fn publish_cells(&self) {
        self.cells.applied.store(self.applied, Ordering::Release);
        self.cells
            .snapshot_seq
            .store(self.applied - self.since_snapshot, Ordering::Release);
        self.cells
            .policy_epoch
            .store(self.policy_epoch, Ordering::Release);
        self.cells
            .enforcement_epoch
            .store(self.enforcement_epoch, Ordering::Release);
        self.cells
            .wal_fsyncs
            .store(self.wal.fsyncs(), Ordering::Release);
        self.cells.clock.store(self.clock.get(), Ordering::Release);
        if !ltam_obs::disabled() {
            // Scrape-visible epoch gauges: `store_policy_epoch` moves on
            // every durable policy edit; `store_enforcement_epoch` only
            // on edits that change what enforcement means. An
            // enforcement bump outside a change window is an operator
            // alert (every follower re-bootstraps behind it).
            ltam_obs::gauge!(
                "store_policy_epoch",
                "Durable policy epoch (bumped by every acknowledged policy edit)"
            )
            .set(self.policy_epoch as i64);
            ltam_obs::gauge!(
                "store_enforcement_epoch",
                "Enforcement epoch (bumped only by edits that change enforcement semantics; \
                 followers re-bootstrap when it moves)"
            )
            .set(self.enforcement_epoch as i64);
        }
    }

    // --- retention and the archive tier -------------------------------------

    /// The movement-history retention watermark: live state is complete
    /// from this chronon on; earlier history lives in the archive tier.
    pub fn retention_watermark(&self) -> Time {
        self.engine.retention_watermark()
    }

    /// Per-class retention watermarks (see
    /// [`ShardedEngine::watermarks`]).
    pub fn watermarks(&self) -> ltam_engine::HistoryWatermarks {
        self.engine.watermarks()
    }

    /// Run one retention maintenance pass at monitoring time `now`
    /// using the configured policy ([`StoreConfig::retention`]); an
    /// unconfigured store returns `InvalidInput`. See
    /// [`DurableEngine::run_retention_with`].
    pub fn run_retention(&mut self, now: Time) -> io::Result<RetentionOutcome> {
        let policy = self.config.retention.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "no retention policy configured (StoreConfig::retention is None)",
            )
        })?;
        self.run_retention_with(&policy, now)
    }

    /// The watermark a maintenance run anchors on: the furthest any
    /// *enabled* class has been pruned to (the classes advance in
    /// lockstep while the policy is stable, so this is simply "the last
    /// applied horizon"). Deliberately **not** the movements watermark
    /// alone: with `movements: false` that never advances, and
    /// anchoring on it would make every run rewrite the chain from the
    /// epoch — discarding previously archived audit/violation records.
    fn retention_anchor(&self, policy: &RetentionPolicy) -> Time {
        let w = self.engine.watermarks();
        let mut anchor = Time::ZERO;
        if policy.movements {
            anchor = anchor.max(w.movements);
        }
        if policy.audit {
            anchor = anchor.max(w.audit);
        }
        if policy.violations {
            anchor = anchor.max(w.violations);
        }
        anchor
    }

    /// Run one retention maintenance pass with an explicit policy:
    ///
    /// 1. collect every record of an enabled class older than
    ///    `policy.horizon_at(now)` (live state untouched);
    /// 2. append them to the archive tier, atomically and durably — a
    ///    crash-repeated run re-collects from the same watermark and
    ///    *replaces* its stranded segment (a superset, possibly with
    ///    records ingested since the stranded write), so records are
    ///    never lost or duplicated;
    /// 3. only then drop them from live state and advance the
    ///    watermarks (which the next snapshot carries).
    ///
    /// A crash between 2 and 3 leaves the records both archived and
    /// live; the tier-aware queries clip the archive side at the live
    /// watermark so nothing is counted twice, and the next run
    /// supersedes the stranded segment. If the archive chain already
    /// extends past the policy horizon (the crash came *after* the
    /// prune applied elsewhere), the pass re-covers up to the chain
    /// end so the replacement loses nothing.
    pub fn run_retention_with(
        &mut self,
        policy: &RetentionPolicy,
        now: Time,
    ) -> io::Result<RetentionOutcome> {
        let live_from = self.retention_anchor(policy);
        if !(policy.movements || policy.audit || policy.violations) {
            // No class enabled: nothing can ever be pruned. Bail before
            // the archive directory scan — this runs on the ingest path.
            return Ok(RetentionOutcome {
                watermark: live_from,
                pruned: 0,
                archived: 0,
                archive_to: live_from.get(),
            });
        }
        let chain_end = self.archive.coverage_end()?;
        let horizon = policy.horizon_at(now).max(Time(chain_end));
        if horizon <= live_from {
            return Ok(RetentionOutcome {
                watermark: live_from,
                pruned: 0,
                archived: 0,
                archive_to: chain_end,
            });
        }
        let _span = ltam_obs::timed!(
            "store_retention_run_seconds",
            "One retention maintenance pass: collect + archive + prune"
        );
        let prunable = self.engine.collect_prunable(policy, horizon);
        let archive_span = ltam_obs::timed!(
            "store_archive_run_seconds",
            "The archive-append phase of a retention pass"
        );
        let run = self
            .archive
            .append_run(live_from.get(), horizon.get(), &prunable)?;
        drop(archive_span);
        self.engine.apply_retention(policy, horizon);
        // A new segment exists (and may have replaced a stranded one):
        // the next query rescans the chain and reloads lazily.
        self.archive_cache.lock().invalidate();
        Ok(RetentionOutcome {
            watermark: horizon,
            pruned: prunable.len(),
            archived: run.map(|r| r.records).unwrap_or(0),
            archive_to: run.map(|r| r.to).unwrap_or_else(|| horizon.get()),
        })
    }

    /// Archive segments whose payloads are currently cached (the status
    /// surface and the laziness tests read this; it only grows as
    /// queries reach further back).
    pub fn archive_segments_loaded(&self) -> usize {
        self.archive_cache.lock().segments_loaded()
    }

    /// Archive chain coverage end (exclusive), from the cached chain
    /// scan — no segment payload is read.
    pub fn archive_covered_to(&self) -> io::Result<u64> {
        self.archive_cache.lock().coverage_end(&self.archive)
    }

    /// Tier-aware historical whereabouts: answered from live state at
    /// or after the retention watermark (or by a live stay straddling
    /// it), from the archive before it. Refuses
    /// ([`HistoryError::Unarchived`]) only when the answer would need
    /// discarded-and-unarchived history.
    pub fn whereabouts(
        &self,
        subject: SubjectId,
        t: Time,
    ) -> Result<Option<LocationId>, HistoryError> {
        tiered_whereabouts(&self.engine, &self.archive, &self.archive_cache, subject, t)
    }

    /// Tier-aware presence query: who was in `location` during
    /// `window`, with clipped overlap intervals, merged across tiers.
    pub fn present_during(
        &self,
        location: LocationId,
        window: Interval,
    ) -> Result<Vec<(SubjectId, Interval)>, HistoryError> {
        tiered_present_during(
            &self.engine,
            &self.archive,
            &self.archive_cache,
            location,
            window,
        )
    }

    /// Tier-aware contact tracing — the paper's SARS query — merged
    /// across live state and the archive, so an operator can trace
    /// across the retention boundary exactly as if history were
    /// unbounded.
    ///
    /// ```
    /// use ltam_core::model::{Authorization, EntryLimit};
    /// use ltam_core::retention::RetentionPolicy;
    /// use ltam_core::subject::SubjectId;
    /// use ltam_engine::batch::{Event, PolicyCore};
    /// use ltam_graph::examples::ntu_campus;
    /// use ltam_store::{DurableEngine, ScratchDir, StoreConfig};
    /// use ltam_time::{Interval, Time};
    ///
    /// let ntu = ntu_campus();
    /// let cais = ntu.cais;
    /// let mut core = PolicyCore::new(ntu.model);
    /// let (alice, bob) = (SubjectId(0), SubjectId(1));
    /// for s in [alice, bob] {
    ///     core.add_authorization(
    ///         Authorization::new(Interval::ALL, Interval::ALL, s, cais, EntryLimit::Unbounded)
    ///             .unwrap(),
    ///     );
    /// }
    /// let dir = ScratchDir::new("doc-tiered-contacts");
    /// let config = StoreConfig {
    ///     retention: Some(RetentionPolicy::keep_last(100)),
    ///     fsync: false,
    ///     ..StoreConfig::default()
    /// };
    /// let (mut engine, _alerts) = DurableEngine::create(dir.path(), core, 2, config).unwrap();
    /// // Alice and Bob overlap in CAIS during [12, 20]...
    /// engine.ingest(&[
    ///     Event::Request { time: Time(10), subject: alice, location: cais },
    ///     Event::Enter { time: Time(10), subject: alice, location: cais },
    ///     Event::Request { time: Time(12), subject: bob, location: cais },
    ///     Event::Enter { time: Time(12), subject: bob, location: cais },
    ///     Event::Exit { time: Time(20), subject: alice, location: cais },
    ///     Event::Exit { time: Time(25), subject: bob, location: cais },
    /// ]).unwrap();
    /// // ...then time passes and retention spills those stays to the archive.
    /// engine.run_retention(Time(500)).unwrap();
    /// assert_eq!(engine.retention_watermark(), Time(400));
    /// assert_eq!(engine.engine().read_shard(0, |s| s.movements().len())
    ///     + engine.engine().read_shard(1, |s| s.movements().len()), 0);
    /// // The contact-tracing join still sees the archived co-location.
    /// let contacts = engine.contacts(alice, Interval::lit(0, 500)).unwrap();
    /// assert_eq!(contacts.len(), 1);
    /// assert_eq!(contacts[0].other, bob);
    /// assert_eq!(contacts[0].overlap, Interval::lit(12, 20));
    /// ```
    pub fn contacts(
        &self,
        subject: SubjectId,
        window: Interval,
    ) -> Result<Vec<Contact>, HistoryError> {
        tiered_contacts(
            &self.engine,
            &self.archive,
            &self.archive_cache,
            subject,
            window,
        )
    }

    /// Tier-aware violation report over `window` (multiset semantics:
    /// archived violations first, then live in shard order).
    pub fn violations_in(&self, window: Interval) -> Result<Vec<Violation>, HistoryError> {
        tiered_violations_in(&self.engine, &self.archive, &self.archive_cache, window)
    }
}

impl Drop for DurableEngine {
    fn drop(&mut self) {
        // A background snapshot writer must not outlive the store (its
        // scratch directory may be about to vanish). Dropping mid-write
        // is crash-equivalent anyway: the WAL still covers everything
        // the unfinished snapshot would have.
        let _ = self.snapshot_finish();
    }
}

// --- the shared, tier-aware read path ---------------------------------------
//
// Free functions over the shared pieces (`ShardedEngine`, the archive
// store, the lazy archive cache) so [`DurableEngine`] and [`ReadView`]
// answer queries through literally the same code.

/// Chain-scan the archive and return the per-segment lazy view for
/// a query reaching down to `requested`, refusing if the chain does
/// not reach the querying class's live watermark — the gap would
/// mean discarded-and-unarchived history. Only segments the query
/// can touch have their payloads read (see [`LazyArchive`]); the
/// coverage check itself is a directory listing.
fn archive_view<'a>(
    archive: &ArchiveStore,
    cache: &'a mut LazyArchive,
    requested: Time,
    live_from: Time,
) -> Result<&'a ArchiveData, HistoryError> {
    let covered = cache.coverage_end(archive)?;
    if covered < live_from.get() {
        return Err(HistoryError::Unarchived {
            requested,
            archived_to: covered,
            live_from,
        });
    }
    Ok(cache.view_for(archive, requested, live_from)?)
}

fn tiered_whereabouts(
    engine: &ShardedEngine,
    archive: &ArchiveStore,
    cache: &parking_lot::Mutex<LazyArchive>,
    subject: SubjectId,
    t: Time,
) -> Result<Option<LocationId>, HistoryError> {
    let live_from = engine.retention_watermark();
    let live = history::merged_whereabouts(engine, None, subject, t);
    if live.is_some() || t >= live_from {
        return Ok(live);
    }
    let mut cache = cache.lock();
    let archive = archive_view(archive, &mut cache, t, live_from)?;
    Ok(history::merged_whereabouts(
        engine,
        Some(archive),
        subject,
        t,
    ))
}

fn tiered_present_during(
    engine: &ShardedEngine,
    archive: &ArchiveStore,
    cache: &parking_lot::Mutex<LazyArchive>,
    location: LocationId,
    window: Interval,
) -> Result<Vec<(SubjectId, Interval)>, HistoryError> {
    let live_from = engine.retention_watermark();
    if window.start() >= live_from {
        return Ok(history::merged_present_during(
            engine, None, location, window,
        ));
    }
    let mut cache = cache.lock();
    let archive = archive_view(archive, &mut cache, window.start(), live_from)?;
    Ok(history::merged_present_during(
        engine,
        Some(archive),
        location,
        window,
    ))
}

fn tiered_contacts(
    engine: &ShardedEngine,
    archive: &ArchiveStore,
    cache: &parking_lot::Mutex<LazyArchive>,
    subject: SubjectId,
    window: Interval,
) -> Result<Vec<Contact>, HistoryError> {
    let live_from = engine.retention_watermark();
    if window.start() >= live_from {
        return Ok(history::merged_contacts(engine, None, subject, window));
    }
    let mut cache = cache.lock();
    let archive = archive_view(archive, &mut cache, window.start(), live_from)?;
    Ok(history::merged_contacts(
        engine,
        Some(archive),
        subject,
        window,
    ))
}

fn tiered_violations_in(
    engine: &ShardedEngine,
    archive: &ArchiveStore,
    cache: &parking_lot::Mutex<LazyArchive>,
    window: Interval,
) -> Result<Vec<Violation>, HistoryError> {
    let live_from = engine.watermarks().violations;
    if window.start() >= live_from {
        return Ok(history::merged_violations(engine, None, window));
    }
    let mut cache = cache.lock();
    let archive = archive_view(archive, &mut cache, window.start(), live_from)?;
    Ok(history::merged_violations(engine, Some(archive), window))
}

/// A cloneable, read-only view over a [`DurableEngine`] — the serving
/// tier's read path. Queries answer **concurrently** with the writer:
/// the sharded engine synchronizes reads per shard, the lazy archive
/// cache has its own lock, and the store counters are atomic cells the
/// writer publishes after every mutation. Holding a view never blocks
/// ingest, and a view outliving the writer simply keeps answering from
/// the final state.
#[derive(Debug, Clone)]
pub struct ReadView {
    engine: Arc<ShardedEngine>,
    archive: Arc<ArchiveStore>,
    archive_cache: Arc<parking_lot::Mutex<LazyArchive>>,
    cells: Arc<StatusCells>,
    dir: PathBuf,
}

impl ReadView {
    /// A read-only handle over the wrapped engine (status, shard reads,
    /// violation queries).
    pub fn engine(&self) -> EngineReadView {
        EngineReadView::new(Arc::clone(&self.engine))
    }

    /// The store directory this view reads from — the root the
    /// replication inventory ([`crate::replica`]) lists shippable files
    /// under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Events durably applied so far (the WAL sequence), as of the
    /// writer's most recent commit.
    pub fn applied(&self) -> u64 {
        self.cells.applied.load(Ordering::Acquire)
    }

    /// WAL sequence the most recent snapshot covers.
    pub fn last_snapshot_seq(&self) -> u64 {
        self.cells.snapshot_seq.load(Ordering::Acquire)
    }

    /// The current policy epoch.
    pub fn policy_epoch(&self) -> u64 {
        self.cells.policy_epoch.load(Ordering::Acquire)
    }

    /// The current enforcement epoch (the replication barrier; see
    /// [`DurableEngine::enforcement_epoch`]).
    pub fn enforcement_epoch(&self) -> u64 {
        self.cells.enforcement_epoch.load(Ordering::Acquire)
    }

    /// The monitoring clock (highest trusted event time) — the time the
    /// serving tier evaluates token validity at.
    pub fn clock(&self) -> Time {
        Time(self.cells.clock.load(Ordering::Acquire))
    }

    /// `fsync` calls the WAL has issued — the group-commit
    /// effectiveness counter (`events_ingested / wal_fsyncs` ≈ events
    /// per fsync).
    pub fn wal_fsyncs(&self) -> u64 {
        self.cells.wal_fsyncs.load(Ordering::Acquire)
    }

    /// The movement-history retention watermark.
    pub fn retention_watermark(&self) -> Time {
        self.engine.retention_watermark()
    }

    /// Archive segments whose payloads are currently cached.
    pub fn archive_segments_loaded(&self) -> usize {
        self.archive_cache.lock().segments_loaded()
    }

    /// Archive chain coverage end (exclusive).
    pub fn archive_covered_to(&self) -> io::Result<u64> {
        self.archive_cache.lock().coverage_end(&self.archive)
    }

    /// Tier-aware historical whereabouts (see
    /// [`DurableEngine::whereabouts`]).
    pub fn whereabouts(
        &self,
        subject: SubjectId,
        t: Time,
    ) -> Result<Option<LocationId>, HistoryError> {
        let _span = ltam_obs::timed!(
            "store_view_query_seconds",
            "ReadView historical query latency, by kind",
            "kind" => "whereabouts"
        );
        tiered_whereabouts(&self.engine, &self.archive, &self.archive_cache, subject, t)
    }

    /// Tier-aware presence query (see
    /// [`DurableEngine::present_during`]).
    pub fn present_during(
        &self,
        location: LocationId,
        window: Interval,
    ) -> Result<Vec<(SubjectId, Interval)>, HistoryError> {
        let _span = ltam_obs::timed!(
            "store_view_query_seconds",
            "ReadView historical query latency, by kind",
            "kind" => "present_during"
        );
        tiered_present_during(
            &self.engine,
            &self.archive,
            &self.archive_cache,
            location,
            window,
        )
    }

    /// Tier-aware contact tracing (see [`DurableEngine::contacts`]).
    pub fn contacts(
        &self,
        subject: SubjectId,
        window: Interval,
    ) -> Result<Vec<Contact>, HistoryError> {
        let _span = ltam_obs::timed!(
            "store_view_query_seconds",
            "ReadView historical query latency, by kind",
            "kind" => "contacts"
        );
        tiered_contacts(
            &self.engine,
            &self.archive,
            &self.archive_cache,
            subject,
            window,
        )
    }

    /// Tier-aware violation report (see
    /// [`DurableEngine::violations_in`]).
    pub fn violations_in(&self, window: Interval) -> Result<Vec<Violation>, HistoryError> {
        let _span = ltam_obs::timed!(
            "store_view_query_seconds",
            "ReadView historical query latency, by kind",
            "kind" => "violations_in"
        );
        tiered_violations_in(&self.engine, &self.archive, &self.archive_cache, window)
    }
}

/// What one [`DurableEngine::run_retention`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionOutcome {
    /// The movement-history watermark after the pass.
    pub watermark: Time,
    /// Records dropped from live state (all classes).
    pub pruned: usize,
    /// Records written to the archive by this pass (0 when the range
    /// was already covered by a crash-era segment).
    pub archived: usize,
    /// Archive coverage end after the pass.
    pub archive_to: u64,
}

/// Re-key per-subject state onto a different shard count: every piece of
/// a [`ShardStateImage`] is either keyed by subject (movements, pending
/// grants, active stays, overstay flags, violations, audit) or owned by
/// exactly one subject's authorization (ledger counters), so images can
/// be split and re-dealt without touching enforcement semantics.
pub fn redistribute(
    images: Vec<ShardStateImage>,
    shards: usize,
    db: &AuthorizationDb,
) -> Vec<ShardStateImage> {
    assert!(shards >= 1, "need at least one shard");
    let mut out: Vec<ShardStateImage> = (0..shards).map(|_| ShardStateImage::default()).collect();
    // Retention bookkeeping redistributes too: class watermarks join to
    // the max (sources pruned in lockstep, but a max is always sound —
    // claiming completeness below any source's watermark would not be),
    // and the pruned-record counters are global totals, parked on
    // shard 0 like revoked-authorization ledger counters.
    let movements_from = images
        .iter()
        .map(|i| i.movements.watermark())
        .max()
        .unwrap_or(Time::ZERO);
    let audit_from = images.iter().filter_map(|i| i.audit_from).max();
    let violations_from = images.iter().filter_map(|i| i.violations_from).max();
    let events_pruned: u64 = images.iter().map(|i| i.movements.pruned_events()).sum();
    let audit_pruned: u64 = images.iter().filter_map(|i| i.audit_pruned).sum();
    let violations_pruned: u64 = images.iter().filter_map(|i| i.violations_pruned).sum();
    for image in images {
        for event in image.movements.log() {
            let target = &mut out[shard_of(event.subject, shards)].movements;
            // Each subject's log replays in original order on its new
            // shard, so the physical-consistency checks cannot fire.
            let replayed = match event.kind {
                MovementKind::Enter => {
                    target.record_enter(event.time, event.subject, event.location)
                }
                MovementKind::Exit => target.record_exit(event.time, event.subject, event.location),
            };
            debug_assert!(replayed.is_ok(), "shard-local movement logs replay cleanly");
        }
        // After the replay (which rebuilds the guard for surviving
        // events), merge the source's latest-time guards so subjects
        // whose history was entirely pruned keep their time-regression
        // protection on the new shard.
        for (s, t) in image.movements.latest_times() {
            out[shard_of(s, shards)].movements.observe_latest(s, t);
        }
        for p in image.pending {
            out[shard_of(p.subject, shards)].pending.push(p);
        }
        for entry in image.active {
            out[shard_of(entry.0, shards)].active.push(entry);
        }
        for s in image.overstay_alerted {
            out[shard_of(s, shards)].overstay_alerted.push(s);
        }
        for v in image.violations {
            out[shard_of(v.subject(), shards)].violations.push(v);
        }
        for record in image.audit {
            out[shard_of(record.request.subject, shards)]
                .audit
                .push(record);
        }
        for (id, count) in image.ledger.counts() {
            // An authorization belongs to exactly one subject; counters
            // for revoked (absent) authorizations land on shard 0, where
            // they are as inert as they were on their old shard.
            let target = db
                .get(id)
                .map(|auth| shard_of(auth.subject(), shards))
                .unwrap_or(0);
            let merged = out[target].ledger.used(id).saturating_add(count);
            out[target].ledger.restore_count(id, merged);
        }
    }
    for image in &mut out {
        image.pending.sort_by_key(|p| p.subject);
        image.active.sort_by_key(|&(s, _, _)| s);
        image.overstay_alerted.sort();
        image.movements.set_watermark(movements_from);
        image.audit_from = audit_from;
        image.violations_from = violations_from;
    }
    out[0].movements.add_pruned_events(events_pruned);
    if audit_pruned > 0 {
        out[0].audit_pruned = Some(audit_pruned);
    }
    if violations_pruned > 0 {
        out[0].violations_pruned = Some(violations_pruned);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use ltam_core::model::{Authorization, EntryLimit};
    use ltam_core::subject::SubjectId;
    use ltam_graph::examples::ntu_campus;
    use ltam_graph::LocationId;
    use ltam_time::{Interval, Time};

    fn campus_core() -> (PolicyCore, SubjectId, LocationId) {
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut core = PolicyCore::new(ntu.model);
        let alice = SubjectId(0);
        core.add_authorization(
            Authorization::new(
                Interval::lit(5, 40),
                Interval::lit(20, 100),
                alice,
                cais,
                EntryLimit::Finite(1),
            )
            .unwrap(),
        );
        (core, alice, cais)
    }

    fn test_config() -> StoreConfig {
        StoreConfig {
            segment_bytes: 4096,
            snapshot_every: 0,
            fsync: false,
            retention: None,
        }
    }

    #[test]
    fn create_ingest_reopen_preserves_state() {
        let dir = ScratchDir::new("durable-basic");
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            let out = durable
                .ingest(&[
                    Event::Request {
                        time: Time(10),
                        subject: alice,
                        location: cais,
                    },
                    Event::Enter {
                        time: Time(11),
                        subject: alice,
                        location: cais,
                    },
                ])
                .unwrap();
            assert_eq!(out.granted, 1);
            assert_eq!(durable.applied(), 2);
        } // crash: no snapshot since creation, state lives in the WAL tail
        let (durable, _alerts, report) = DurableEngine::open(dir.path(), test_config()).unwrap();
        assert_eq!(report.snapshot_seq, 0);
        assert_eq!(report.replayed, 2);
        assert_eq!(durable.applied(), 2);
        assert_eq!(durable.engine().total_entries(), 1);
        // The recovered stay is live: an early exit still violates.
        let v = durable.engine().observe_exit(Time(15), alice, cais);
        assert!(v.is_some(), "recovered active stay enforces exit windows");
    }

    #[test]
    fn snapshot_compacts_the_wal_and_recovery_skips_replay() {
        let dir = ScratchDir::new("durable-compact");
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            for i in 0..200u64 {
                durable
                    .ingest(&[Event::Request {
                        time: Time(200 + i),
                        subject: alice,
                        location: cais,
                    }])
                    .unwrap();
            }
            let covered = durable.snapshot().unwrap();
            assert_eq!(covered, 200);
            // Compaction trails the *oldest retained* snapshot: after a
            // second snapshot the creation-time one (seq 0) is pruned and
            // the [0, 200) segments become droppable.
            for i in 0..100u64 {
                durable
                    .ingest(&[Event::Request {
                        time: Time(400 + i),
                        subject: alice,
                        location: cais,
                    }])
                    .unwrap();
            }
            durable.snapshot().unwrap();
        }
        let first_live_seq = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.strip_prefix("wal-")
                    .and_then(|r| r.strip_suffix(".log"))
                    .and_then(|d| d.parse::<u64>().ok())
            })
            .min()
            .expect("a WAL segment survives");
        assert_eq!(
            first_live_seq, 200,
            "segments before the oldest retained snapshot (seq 200) are compacted"
        );
        let (durable, _alerts, report) = DurableEngine::open(dir.path(), test_config()).unwrap();
        assert_eq!(report.snapshot_seq, 300);
        assert_eq!(report.replayed, 0, "snapshot covers the whole log");
        assert_eq!(durable.applied(), 300);
        // All 300 denied requests survived in the audit trail.
        let audits: usize = (0..durable.engine().shard_count())
            .map(|s| durable.engine().read_shard(s, |st| st.audit().len()))
            .sum();
        assert_eq!(audits, 300);
    }

    /// Flip a byte in each snapshot file matching `pick` (by seq).
    /// Snapshot names are `snap-<seq>-<epoch>.snap`.
    fn corrupt_snapshots(dir: &std::path::Path, pick: impl Fn(u64) -> bool) {
        for entry in std::fs::read_dir(dir).unwrap().filter_map(|e| e.ok()) {
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(seq) = name
                .strip_prefix("snap-")
                .and_then(|r| r.strip_suffix(".snap"))
                .and_then(|body| body.split_once('-'))
                .and_then(|(seq, _)| seq.parse::<u64>().ok())
            else {
                continue;
            };
            if pick(seq) {
                let mut bytes = std::fs::read(entry.path()).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x01;
                std::fs::write(entry.path(), &bytes).unwrap();
            }
        }
    }

    /// Ingest `n` granted-entry cycles so recovered state is checkable by
    /// audit count.
    fn build_two_snapshot_store(dir: &std::path::Path) -> (u64, u64) {
        let (core, alice, cais) = campus_core();
        let (mut durable, _alerts) = DurableEngine::create(dir, core, 2, test_config()).unwrap();
        let request = |t: u64| Event::Request {
            time: Time(t),
            subject: alice,
            location: cais,
        };
        for i in 0..100u64 {
            durable.ingest(&[request(200 + i)]).unwrap();
        }
        let s1 = durable.snapshot().unwrap();
        for i in 0..100u64 {
            durable.ingest(&[request(400 + i)]).unwrap();
        }
        let s2 = durable.snapshot().unwrap();
        for i in 0..10u64 {
            durable.ingest(&[request(600 + i)]).unwrap();
        }
        (s1, s2)
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_without_losing_events() {
        let dir = ScratchDir::new("durable-fallback");
        let (s1, s2) = build_two_snapshot_store(dir.path());
        assert_eq!((s1, s2), (100, 200));
        // The newest snapshot rots; recovery must fall back to seq 100
        // AND still replay every event from 100 onward — which is why
        // compaction may not pass the oldest retained snapshot.
        corrupt_snapshots(dir.path(), |seq| seq == 200);
        let (durable, _alerts, report) = DurableEngine::open(dir.path(), test_config()).unwrap();
        assert_eq!(report.snapshot_seq, 100);
        assert_eq!(report.replayed, 110);
        assert_eq!(durable.applied(), 210);
        let audits: usize = (0..durable.engine().shard_count())
            .map(|s| durable.engine().read_shard(s, |st| st.audit().len()))
            .sum();
        assert_eq!(audits, 210, "no event between the snapshots was lost");
    }

    #[test]
    fn missing_middle_segment_refuses_instead_of_silently_resuming() {
        let dir = ScratchDir::new("durable-midgap");
        let config = StoreConfig {
            segment_bytes: 256, // several segments between snapshots
            snapshot_every: 0,
            fsync: false,
            retention: None,
        };
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, config).unwrap();
            let request = |t: u64| Event::Request {
                time: Time(t),
                subject: alice,
                location: cais,
            };
            for i in 0..100u64 {
                durable.ingest(&[request(200 + i)]).unwrap();
            }
            durable.snapshot().unwrap(); // @100
            for i in 0..100u64 {
                durable.ingest(&[request(400 + i)]).unwrap();
            }
            durable.snapshot().unwrap(); // @200 (compacts WAL below 100)
            for i in 0..10u64 {
                durable.ingest(&[request(600 + i)]).unwrap();
            }
        }
        // Several segments span [100, 210). Remove a *middle* one: WAL
        // repair stops at the gap and quarantines every later segment —
        // including the intact acked tail past the snapshot @200 — which
        // leaves the log short of the snapshot. Silently resuming at @200
        // would drop those acked events; open must refuse, and the tail's
        // bytes must survive as quarantine files.
        let segments = Wal::segment_files(dir.path()).unwrap();
        assert!(segments.len() >= 3, "need a middle segment: {segments:?}");
        std::fs::remove_file(&segments[1]).unwrap();
        let err = DurableEngine::open(dir.path(), config).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(
            err.to_string().contains("WAL loss behind the snapshot"),
            "{err}"
        );
        let quarantined = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".quarantine"));
        assert!(quarantined, "later segments are preserved, not deleted");
    }

    #[test]
    fn reissued_auth_ids_cannot_alias_recovered_stays() {
        let dir = ScratchDir::new("durable-id-reuse");
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut core = PolicyCore::new(ntu.model);
        let alice = SubjectId(0);
        let wide = |s| {
            Authorization::new(
                Interval::lit(0, 1_000),
                Interval::lit(500, 2_000),
                s,
                cais,
                EntryLimit::Unbounded,
            )
            .unwrap()
        };
        core.add_authorization(wide(alice));
        let id1 = {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            // Alice is inside under a second authorization, which then
            // gets revoked (her stay keeps referencing its id).
            let id1 = durable
                .update_policy(|p| p.add_authorization(wide(SubjectId(0))))
                .unwrap();
            durable
                .ingest(&[
                    Event::Request {
                        time: Time(10),
                        subject: alice,
                        location: cais,
                    },
                    Event::Enter {
                        time: Time(11),
                        subject: alice,
                        location: cais,
                    },
                ])
                .unwrap();
            durable.revoke_authorization(id1).unwrap();
            id1
        };
        let (mut durable, _alerts, _) = DurableEngine::open(dir.path(), test_config()).unwrap();
        // The id watermark survived recovery: a new authorization never
        // reuses the revoked id, so nothing stale can alias it.
        let id2 = durable
            .update_policy(|p| p.add_authorization(wide(SubjectId(9))))
            .unwrap();
        assert!(
            id2 > id1,
            "revoked id {id1} must never be reissued (got {id2})"
        );
    }

    #[test]
    fn wal_gap_behind_the_usable_snapshot_is_refused() {
        let dir = ScratchDir::new("durable-gap");
        build_two_snapshot_store(dir.path());
        // Manufacture the unrecoverable case: the segment holding
        // [100, 200) vanishes *and* the newest snapshot rots. Falling
        // back to seq 100 would silently lose those 100 events — open
        // must refuse instead.
        corrupt_snapshots(dir.path(), |seq| seq == 200);
        for entry in std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
        {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name == format!("wal-{:020}.log", 100) {
                std::fs::remove_file(entry.path()).unwrap();
            }
        }
        let err = DurableEngine::open(dir.path(), test_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(err.to_string().contains("WAL gap"), "{err}");
    }

    #[test]
    fn concurrent_open_is_refused_while_the_lock_is_live() {
        let dir = ScratchDir::new("durable-lock");
        let (core, _, _) = campus_core();
        let (durable, _alerts) = DurableEngine::create(dir.path(), core, 1, test_config()).unwrap();
        // A second engine on the same store would interleave WAL appends.
        let err = DurableEngine::open(dir.path(), test_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock, "{err}");
        drop(durable); // releases the lock
        assert!(DurableEngine::open(dir.path(), test_config()).is_ok());
        // A stale lock (dead pid) is taken over, not honored.
        std::fs::write(dir.path().join("store.lock"), "4294967294\n").unwrap();
        assert!(DurableEngine::open(dir.path(), test_config()).is_ok());
    }

    #[test]
    fn create_refuses_an_existing_store() {
        let dir = ScratchDir::new("durable-exists");
        let (core, _, _) = campus_core();
        let _ = DurableEngine::create(dir.path(), core.clone(), 1, test_config()).unwrap();
        let err = DurableEngine::create(dir.path(), core, 1, test_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
    }

    #[test]
    fn open_on_an_empty_dir_is_not_found() {
        let dir = ScratchDir::new("durable-empty");
        let err = DurableEngine::open(dir.path(), test_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn policy_updates_survive_restart_via_snapshot() {
        let dir = ScratchDir::new("durable-policy");
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            durable
                .update_policy(|p| {
                    p.add_prohibition(ltam_core::prohibition::Prohibition {
                        subject: alice,
                        location: cais,
                        window: Interval::lit(8, 15),
                    })
                })
                .unwrap();
        }
        let (mut durable, _alerts, _) = DurableEngine::open(dir.path(), test_config()).unwrap();
        let out = durable
            .ingest(&[Event::Request {
                time: Time(10),
                subject: alice,
                location: cais,
            }])
            .unwrap();
        assert_eq!(out.denied, 1, "restored prohibition takes precedence");
    }

    #[test]
    fn snapshot_fallback_never_reverts_an_acked_policy_edit() {
        let dir = ScratchDir::new("durable-policy-revert");
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            durable.snapshot().unwrap(); // S @ epoch 0
            durable
                .update_policy(|p| {
                    p.add_prohibition(ltam_core::prohibition::Prohibition {
                        subject: alice,
                        location: cais,
                        window: Interval::lit(0, 1_000),
                    })
                })
                .unwrap(); // acked: snapshot @ epoch 1 + marker
        }
        // The epoch-1 snapshot rots; falling back to an epoch-0 snapshot
        // would silently drop the prohibition — open must refuse.
        corrupt_snapshots(dir.path(), |_| true);
        // (All snapshots corrupt -> NotFound; corrupt only the newest to
        // hit the revert check specifically.)
        let err = DurableEngine::open(dir.path(), test_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);

        let dir2 = ScratchDir::new("durable-policy-revert2");
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir2.path(), core, 2, test_config()).unwrap();
            // Events between the snapshots give them distinct sequence
            // numbers, so the epoch-0 snapshot file survives the edit's
            // epoch-1 snapshot (snapshots are keyed by seq on disk).
            for i in 0..10u64 {
                durable
                    .ingest(&[Event::Request {
                        time: Time(200 + i),
                        subject: alice,
                        location: cais,
                    }])
                    .unwrap();
            }
            durable
                .update_policy(|p| {
                    p.add_prohibition(ltam_core::prohibition::Prohibition {
                        subject: alice,
                        location: cais,
                        window: Interval::lit(0, 1_000),
                    })
                })
                .unwrap();
        }
        // Retained snapshots are the epoch-1 one (newest) and the epoch-0
        // one; corrupt only the newest.
        let newest = std::fs::read_dir(dir2.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
            .map(|e| e.path())
            .max()
            .unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();
        let err = DurableEngine::open(dir2.path(), test_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(err.to_string().contains("policy revert"), "{err}");
    }

    #[test]
    fn durable_revocation_survives_restart_and_lapses_grants() {
        let dir = ScratchDir::new("durable-revoke");
        let (core, alice, cais) = campus_core();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            let out = durable
                .ingest(&[Event::Request {
                    time: Time(10),
                    subject: alice,
                    location: cais,
                }])
                .unwrap();
            assert_eq!(out.granted, 1);
            let id = durable
                .engine()
                .policy()
                .db()
                .iter()
                .next()
                .map(|(id, _, _)| id)
                .unwrap();
            assert!(durable.revoke_authorization(id).unwrap().is_some());
        }
        let (mut durable, _alerts, _) = DurableEngine::open(dir.path(), test_config()).unwrap();
        // The pending grant lapsed with the revocation and the revocation
        // itself survived the restart: walking in is unauthorized.
        let out = durable
            .ingest(&[Event::Enter {
                time: Time(11),
                subject: alice,
                location: cais,
            }])
            .unwrap();
        assert_eq!(out.violations.len(), 1);
        assert!(matches!(
            out.violations[0],
            ltam_engine::violation::Violation::UnauthorizedEntry { .. }
        ));
    }

    /// A two-subject store: Alice and Bob overlap in CAIS during
    /// [12, 20], Bob tailgates nobody; a later clean cycle for Alice at
    /// [200, 210] keeps recent history live.
    fn two_subject_events(cais: LocationId) -> Vec<Event> {
        let (alice, bob) = (SubjectId(0), SubjectId(1));
        vec![
            Event::Request {
                time: Time(10),
                subject: alice,
                location: cais,
            },
            Event::Enter {
                time: Time(10),
                subject: alice,
                location: cais,
            },
            Event::Request {
                time: Time(12),
                subject: bob,
                location: cais,
            },
            Event::Enter {
                time: Time(12),
                subject: bob,
                location: cais,
            },
            Event::Exit {
                time: Time(20),
                subject: alice,
                location: cais,
            },
            Event::Exit {
                time: Time(25),
                subject: bob,
                location: cais,
            },
            Event::Request {
                time: Time(200),
                subject: alice,
                location: cais,
            },
            Event::Enter {
                time: Time(200),
                subject: alice,
                location: cais,
            },
            Event::Exit {
                time: Time(210),
                subject: alice,
                location: cais,
            },
        ]
    }

    fn wide_open_core(cais: LocationId, model: ltam_graph::LocationModel) -> PolicyCore {
        let mut core = PolicyCore::new(model);
        for s in [SubjectId(0), SubjectId(1)] {
            core.add_authorization(
                Authorization::new(Interval::ALL, Interval::ALL, s, cais, EntryLimit::Unbounded)
                    .unwrap(),
            );
        }
        core
    }

    #[test]
    fn retention_archives_then_prunes_and_queries_merge_tiers() {
        let dir = ScratchDir::new("durable-retention");
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let core = wide_open_core(cais, ntu.model);
        let (mut durable, _alerts) =
            DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
        let (alice, bob) = (SubjectId(0), SubjectId(1));
        durable.ingest(&two_subject_events(cais)).unwrap();

        let outcome = durable
            .run_retention_with(&RetentionPolicy::keep_last(100), Time(250))
            .unwrap();
        assert_eq!(outcome.watermark, Time(150));
        assert!(outcome.pruned > 0);
        assert_eq!(outcome.archived, outcome.pruned);
        assert_eq!(outcome.archive_to, 150);
        assert_eq!(durable.retention_watermark(), Time(150));

        // Live state holds only the recent cycle (its enter + exit).
        let live_events: usize = (0..2)
            .map(|s| durable.engine().read_shard(s, |st| st.movements().len()))
            .sum();
        assert_eq!(live_events, 2);

        // Tier-aware queries answer across the boundary exactly as an
        // unpruned engine would.
        assert_eq!(durable.whereabouts(alice, Time(15)).unwrap(), Some(cais)); // archive
        assert_eq!(durable.whereabouts(alice, Time(205)).unwrap(), Some(cais)); // live
        assert_eq!(durable.whereabouts(bob, Time(50)).unwrap(), None);
        let contacts = durable.contacts(alice, Interval::lit(0, 300)).unwrap();
        assert_eq!(contacts.len(), 1);
        assert_eq!(contacts[0].other, bob);
        assert_eq!(contacts[0].overlap, Interval::lit(12, 20));
        let present = durable.present_during(cais, Interval::lit(0, 300)).unwrap();
        assert_eq!(present.len(), 3, "{present:?}"); // Alice×2 + Bob×1
        assert!(durable
            .violations_in(Interval::lit(0, 300))
            .unwrap()
            .is_empty());

        // Re-running at the same horizon is a no-op (idempotent).
        let again = durable
            .run_retention_with(&RetentionPolicy::keep_last(100), Time(250))
            .unwrap();
        assert_eq!(again.pruned, 0);
        assert_eq!(again.archived, 0);
    }

    #[test]
    fn retention_watermark_survives_crash_and_recovery() {
        let dir = ScratchDir::new("durable-retention-crash");
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let (alice, bob) = (SubjectId(0), SubjectId(1));
        {
            let core = wide_open_core(cais, ntu.model);
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            durable.ingest(&two_subject_events(cais)).unwrap();
            durable
                .run_retention_with(&RetentionPolicy::keep_last(100), Time(250))
                .unwrap();
            durable.snapshot().unwrap();
        } // crash after the snapshot carrying the watermark
        let (mut durable, _alerts, report) =
            DurableEngine::open(dir.path(), test_config()).unwrap();
        assert_eq!(report.retention_watermark, 150);
        assert_eq!(report.archive_covered_to, 150);
        assert_eq!(durable.retention_watermark(), Time(150));
        // Archived history is still reachable through the merge...
        assert_eq!(durable.whereabouts(alice, Time(15)).unwrap(), Some(cais));
        let contacts = durable.contacts(alice, Interval::lit(0, 300)).unwrap();
        assert_eq!(contacts.len(), 1);
        assert_eq!(contacts[0].other, bob);
        // ...and pruned history stays pruned: the time-regression guard
        // survived, so stale sensor events are still rejected.
        let out = durable
            .ingest(&[Event::Enter {
                time: Time(5),
                subject: alice,
                location: cais,
            }])
            .unwrap();
        assert_eq!(out.violations.len(), 1, "regressed event still flagged");
    }

    #[test]
    fn crash_before_the_prune_applies_never_duplicates_archive_records() {
        let dir = ScratchDir::new("durable-retention-idem");
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let core = wide_open_core(cais, ntu.model);
        let (mut durable, _alerts) =
            DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
        durable.ingest(&two_subject_events(cais)).unwrap();
        let policy = RetentionPolicy::keep_last(100);
        // Simulate the crash window: the archive segment lands but the
        // in-memory prune (and any later snapshot) never happens.
        let prunable = durable.engine().collect_prunable(&policy, Time(150));
        durable.archive.append_run(0, 150, &prunable).unwrap();
        assert_eq!(durable.retention_watermark(), Time::ZERO);
        // Queries stay correct: the archive is only consulted below the
        // watermark, which never advanced.
        assert_eq!(
            durable.whereabouts(SubjectId(0), Time(15)).unwrap(),
            Some(cais)
        );
        // The re-run after "recovery" replaces the stranded segment
        // with an identical superset: no record is ever in the archive
        // twice (live state may have gained records since the stranded
        // write, so the rewrite is never skipped).
        let outcome = durable.run_retention_with(&policy, Time(250)).unwrap();
        assert!(outcome.pruned > 0);
        assert_eq!(
            outcome.archived, outcome.pruned,
            "stranded segment replaced"
        );
        let data = durable.archive.load().unwrap();
        assert_eq!(data.stays_of(SubjectId(0)).len(), 1);
        assert_eq!(data.stays_of(SubjectId(1)).len(), 1);
        let contacts = durable
            .contacts(SubjectId(0), Interval::lit(0, 300))
            .unwrap();
        assert_eq!(contacts.len(), 1, "no duplicate contact rows");
    }

    #[test]
    fn late_records_below_a_stranded_chain_are_archived_not_lost() {
        let dir = ScratchDir::new("durable-retention-late");
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let core = wide_open_core(cais, ntu.model);
        let (mut durable, _alerts) =
            DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
        let bob = SubjectId(1);
        durable.ingest(&two_subject_events(cais)).unwrap();
        let policy = RetentionPolicy::keep_last(100);
        // Strand a segment: archive written, prune never applied (the
        // crash window).
        let prunable = durable.engine().collect_prunable(&policy, Time(150));
        durable.archive.append_run(0, 150, &prunable).unwrap();
        // A record arrives *below* the stranded chain end — legal,
        // sensor clocks are only per-subject monotone (Bob's clock is
        // at 25).
        durable
            .ingest(&[
                Event::Request {
                    time: Time(60),
                    subject: bob,
                    location: cais,
                },
                Event::Enter {
                    time: Time(60),
                    subject: bob,
                    location: cais,
                },
                Event::Exit {
                    time: Time(70),
                    subject: bob,
                    location: cais,
                },
            ])
            .unwrap();
        // The next run's horizon clamps to the chain end (150); the
        // late stay must travel in the replacement segment, not be
        // silently dropped with nothing archived.
        let outcome = durable.run_retention_with(&policy, Time(250)).unwrap();
        assert_eq!(outcome.watermark, Time(150));
        assert_eq!(outcome.archived, outcome.pruned);
        assert_eq!(durable.whereabouts(bob, Time(65)).unwrap(), Some(cais));
        let data = durable.archive.load().unwrap();
        assert_eq!(data.stays_of(bob).len(), 2, "no loss, no duplicates");
    }

    #[test]
    fn stranded_segment_contents_are_never_double_counted() {
        let dir = ScratchDir::new("durable-retention-doublecount");
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let core = wide_open_core(cais, ntu.model);
        let (mut durable, _alerts) =
            DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
        let bob = SubjectId(1);
        let policy = RetentionPolicy::keep_last(100);
        durable.ingest(&two_subject_events(cais)).unwrap();
        // An applied run advances the watermark to 110.
        durable.run_retention_with(&policy, Time(210)).unwrap();
        assert_eq!(durable.retention_watermark(), Time(110));
        // Bob (own clock at 25) legally ingests a stay whose timestamps
        // sit BELOW the watermark — the late-arrival case.
        durable
            .ingest(&[
                Event::Request {
                    time: Time(60),
                    subject: bob,
                    location: cais,
                },
                Event::Enter {
                    time: Time(60),
                    subject: bob,
                    location: cais,
                },
                Event::Exit {
                    time: Time(70),
                    subject: bob,
                    location: cais,
                },
            ])
            .unwrap();
        // Crash window: the next run's segment lands but its prune
        // never applies. The stranded segment [110, 150) holds the late
        // stay, and so does live state.
        let prunable = durable.engine().collect_prunable(&policy, Time(150));
        durable.archive.append_run(110, 150, &prunable).unwrap();
        // Time-based clipping would admit the archived copy (70 < 110);
        // segment provenance (starts at 110, not below it) must not.
        let present = durable.present_during(cais, Interval::lit(50, 80)).unwrap();
        assert_eq!(present, vec![(bob, Interval::lit(60, 70))], "counted once");
        let contacts = durable.contacts(bob, Interval::lit(50, 80)).unwrap();
        assert!(contacts.is_empty(), "{contacts:?}");
        // After the run completes (replacing the stranded segment and
        // applying the prune), the stay counts exactly once — from the
        // archive this time.
        durable.run_retention_with(&policy, Time(250)).unwrap();
        assert_eq!(durable.retention_watermark(), Time(150));
        let present = durable.present_during(cais, Interval::lit(50, 80)).unwrap();
        assert_eq!(present, vec![(bob, Interval::lit(60, 70))]);
    }

    #[test]
    fn disabling_movement_pruning_does_not_discard_archived_violations() {
        let dir = ScratchDir::new("durable-retention-classes");
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let core = wide_open_core(cais, ntu.model);
        let (mut durable, _alerts) =
            DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
        let policy = RetentionPolicy {
            movements: false,
            ..RetentionPolicy::keep_last(50)
        };
        let tailgate = |t: u64, s: u32| Event::Enter {
            time: Time(t),
            subject: SubjectId(s + 5), // unauthorized
            location: cais,
        };
        durable.ingest(&[tailgate(10, 0)]).unwrap();
        let r1 = durable.run_retention_with(&policy, Time(200)).unwrap();
        assert_eq!(r1.pruned, 1, "the t=10 violation");
        durable.ingest(&[tailgate(300, 1)]).unwrap();
        // The second run must anchor on the violations watermark (the
        // movements watermark never advances under this policy) and
        // extend the chain — not rewrite it from the epoch and discard
        // the first run's archived violation.
        let r2 = durable.run_retention_with(&policy, Time(400)).unwrap();
        assert_eq!(r2.pruned, 1, "only the t=300 violation");
        let vs = durable.violations_in(Interval::lit(0, 50)).unwrap();
        assert_eq!(vs.len(), 1, "the t=10 violation survived the second run");
        assert_eq!(vs[0].time(), Time(10));
        // Movements were never pruned: live whereabouts still answers.
        assert_eq!(
            durable.whereabouts(SubjectId(5), Time(10)).unwrap(),
            Some(cais)
        );
        assert_eq!(durable.retention_watermark(), Time::ZERO);
    }

    #[test]
    fn missing_archive_refuses_below_watermark_queries() {
        let dir = ScratchDir::new("durable-retention-refuse");
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let core = wide_open_core(cais, ntu.model);
        let (mut durable, _alerts) =
            DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
        let (alice, bob) = (SubjectId(0), SubjectId(1));
        durable.ingest(&two_subject_events(cais)).unwrap();
        durable
            .run_retention_with(&RetentionPolicy::keep_last(100), Time(250))
            .unwrap();
        // An operator (or disaster) removes the archive tier.
        for entry in std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
        {
            if entry.file_name().to_string_lossy().ends_with(".arch") {
                std::fs::remove_file(entry.path()).unwrap();
            }
        }
        // Below the watermark with a live miss: refuse loudly.
        let err = durable.whereabouts(bob, Time(15)).unwrap_err();
        assert!(matches!(err, HistoryError::Unarchived { .. }), "{err}");
        assert!(err.to_string().contains("refusing"), "{err}");
        let err = durable.contacts(alice, Interval::lit(0, 300)).unwrap_err();
        assert!(matches!(err, HistoryError::Unarchived { .. }));
        // At or above the watermark: live answers as usual.
        assert_eq!(durable.whereabouts(alice, Time(205)).unwrap(), Some(cais));
        assert!(durable
            .contacts(alice, Interval::lit(150, 300))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn configured_retention_runs_automatically_on_ingest() {
        let dir = ScratchDir::new("durable-retention-auto");
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let core = wide_open_core(cais, ntu.model);
        let config = StoreConfig {
            retention: Some(RetentionPolicy::keep_last(100)),
            ..test_config()
        };
        let (mut durable, _alerts) = DurableEngine::create(dir.path(), core, 2, config).unwrap();
        let alice = SubjectId(0);
        // Long trace of short clean cycles: live history must stay
        // bounded by the horizon, not grow with the trace.
        let mut live_peak = 0usize;
        for i in 0..400u64 {
            let t = i * 10;
            durable
                .ingest(&[
                    Event::Request {
                        time: Time(t),
                        subject: alice,
                        location: cais,
                    },
                    Event::Enter {
                        time: Time(t + 1),
                        subject: alice,
                        location: cais,
                    },
                    Event::Exit {
                        time: Time(t + 5),
                        subject: alice,
                        location: cais,
                    },
                ])
                .unwrap();
            let live: usize = (0..2)
                .map(|s| durable.engine().read_shard(s, |st| st.movements().len()))
                .sum();
            live_peak = live_peak.max(live);
        }
        assert!(durable.take_retention_error().is_none());
        assert!(durable.retention_watermark() >= Time(3_000));
        // 400 cycles × 3 events ingested, but live never held more than
        // ~a horizon's worth (100 chronons ≈ 10 cycles ≈ 30 events,
        // plus slack for the maintenance cadence).
        assert!(live_peak <= 60, "live history unbounded: peak {live_peak}");
        // Nothing was lost: whereabouts across the whole trace still
        // answer through the archive.
        assert_eq!(durable.whereabouts(alice, Time(2)).unwrap(), Some(cais));
        assert_eq!(durable.whereabouts(alice, Time(3_902)).unwrap(), Some(cais));
    }

    #[test]
    fn reshard_after_retention_keeps_watermark_and_guards() {
        let dir = ScratchDir::new("durable-retention-reshard");
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let (alice, bob) = (SubjectId(0), SubjectId(1));
        {
            let core = wide_open_core(cais, ntu.model);
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            durable.ingest(&two_subject_events(cais)).unwrap();
            durable
                .run_retention_with(&RetentionPolicy::keep_last(100), Time(250))
                .unwrap();
            durable.snapshot().unwrap();
        }
        // Reopen on 5 shards: subject state re-deals, and the retention
        // bookkeeping re-deals with it.
        let (mut durable, _alerts, _) =
            DurableEngine::open_with_shards(dir.path(), test_config(), 5).unwrap();
        assert_eq!(durable.engine().shard_count(), 5);
        assert_eq!(durable.retention_watermark(), Time(150));
        // Bob's history was entirely pruned, yet his time-regression
        // guard crossed the reshard: a stale event is still flagged.
        let out = durable
            .ingest(&[Event::Enter {
                time: Time(3),
                subject: bob,
                location: cais,
            }])
            .unwrap();
        assert_eq!(out.violations.len(), 1, "guard lost in redistribution");
        // Tiered queries still merge the archive.
        assert_eq!(durable.whereabouts(alice, Time(15)).unwrap(), Some(cais));
        let contacts = durable.contacts(alice, Interval::lit(0, 300)).unwrap();
        assert_eq!(contacts.len(), 1);
        assert_eq!(contacts[0].other, bob);
    }

    #[test]
    fn reopen_onto_more_shards_redistributes_state() {
        let dir = ScratchDir::new("durable-reshard");
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut core = PolicyCore::new(ntu.model);
        let subjects: Vec<SubjectId> = (0..16).map(SubjectId).collect();
        for &s in &subjects {
            core.add_authorization(
                Authorization::new(
                    Interval::lit(0, 1_000),
                    Interval::lit(0, 2_000),
                    s,
                    cais,
                    EntryLimit::Unbounded,
                )
                .unwrap(),
            );
        }
        let events: Vec<Event> = subjects
            .iter()
            .flat_map(|&s| {
                [
                    Event::Request {
                        time: Time(10),
                        subject: s,
                        location: cais,
                    },
                    Event::Enter {
                        time: Time(11),
                        subject: s,
                        location: cais,
                    },
                ]
            })
            .collect();
        {
            let (mut durable, _alerts) =
                DurableEngine::create(dir.path(), core, 2, test_config()).unwrap();
            durable.ingest(&events).unwrap();
            durable.snapshot().unwrap();
        }
        let (durable, _alerts, _) =
            DurableEngine::open_with_shards(dir.path(), test_config(), 5).unwrap();
        assert_eq!(durable.engine().shard_count(), 5);
        assert_eq!(durable.engine().total_entries(), 16);
        // Every subject's stay is still live and exits clean.
        for &s in &subjects {
            assert!(
                durable.engine().observe_exit(Time(20), s, cais).is_none(),
                "{s} lost its active stay in redistribution"
            );
        }
    }
}
