//! Replication building blocks: the primary's shippable-file inventory
//! and the follower's WAL tail scanner.
//!
//! Replication reuses the store's on-disk artifacts as its wire format:
//! snapshots, archive segments, the policy-epoch marker and WAL
//! segments are already versioned, CRC'd and total-decoding, so a
//! follower can bootstrap by fetching byte-identical copies of them and
//! then tail the primary's active WAL segment. This module supplies the
//! two halves that are genuinely new:
//!
//! * an **inventory** of shippable files addressed by *numbers, not
//!   paths* ([`ReplFileId`]): the serving tier never lets a peer name a
//!   filesystem path, it reconstructs the well-known file name from the
//!   id and refuses anything outside the store directory by design;
//! * a **[`TailScanner`]**: the follower-side resume state machine that
//!   consumes raw WAL segment bytes fetched from `(segment, offset)`
//!   cursors, verifies every record the same way crash recovery does
//!   (header, length bounds, CRC32, total event decoding), and yields
//!   intact batches **preserving the primary's record boundaries** — so
//!   replaying them through normal ingest commits the same groups the
//!   primary committed. A damaged or torn region is reported as a
//!   [`TailFault`] with the exact resume cursor; the scanner never
//!   yields a wrong-but-valid record, and never advances past bytes it
//!   could not verify.
//!
//! The serve crate's replication loop drives both halves; the
//! workspace's replication battery (`tests/replication.rs`,
//! `failure_injection.rs`, and the serve property tests) proves the
//! never-diverge contract under truncation, bit flips and crashes.

use crate::codec::{decode_record_payload, RecordPayload};
use crate::crc::crc32;
use crate::wal::{RECORD_HEADER_LEN, SEGMENT_HEADER_LEN, WAL_MAGIC, WAL_VERSION};
use ltam_core::subject::SubjectId;
use ltam_engine::batch::Event;
use ltam_situate::SituationOp;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// A shippable store file, addressed by its well-known numbers rather
/// than a path (a peer can never name a file outside the store
/// directory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplFileId {
    /// A snapshot file (`snap-<seq>-<epoch>.snap`).
    Snapshot {
        /// WAL sequence the snapshot covers.
        seq: u64,
        /// Policy epoch baked into the snapshot.
        epoch: u64,
    },
    /// An archive segment (`arch-<from>-<to>.arch`).
    Archive {
        /// First sequence the segment covers (inclusive).
        from: u64,
        /// End of coverage (exclusive).
        to: u64,
    },
    /// A WAL segment (`wal-<first_seq>.log`).
    WalSegment {
        /// Sequence number of the segment's first event.
        first_seq: u64,
    },
    /// The acked-policy-epoch marker (`policy.epoch`).
    EpochMarker,
}

impl ReplFileId {
    /// The well-known file name this id maps to (store-relative; the
    /// formats mirror `wal.rs`, `snapshot.rs`, `archive.rs` and
    /// `durable.rs` exactly).
    pub fn file_name(&self) -> String {
        match self {
            ReplFileId::Snapshot { seq, epoch } => format!("snap-{seq:020}-{epoch:010}.snap"),
            ReplFileId::Archive { from, to } => format!("arch-{from:020}-{to:020}.arch"),
            ReplFileId::WalSegment { first_seq } => format!("wal-{first_seq:020}.log"),
            ReplFileId::EpochMarker => "policy.epoch".to_string(),
        }
    }

    /// The file's path inside `dir`.
    pub fn path(&self, dir: &Path) -> PathBuf {
        dir.join(self.file_name())
    }
}

/// One inventory row: a shippable file and its length at listing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplFile {
    /// Which file.
    pub file: ReplFileId,
    /// Its size in bytes when the inventory was taken. Immutable files
    /// (snapshots, archive segments, the marker) keep this length; the
    /// active WAL segment only grows past it.
    pub len: u64,
}

fn file_len(path: &Path) -> io::Result<Option<u64>> {
    match fs::metadata(path) {
        Ok(meta) => Ok(Some(meta.len())),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// The newest snapshot in `dir` (highest covered sequence, then highest
/// epoch), if any — the bootstrap anchor a follower fetches first.
pub fn newest_snapshot(dir: &Path) -> io::Result<Option<ReplFile>> {
    let mut best: Option<(u64, u64)> = None;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(rest) = name
            .strip_prefix("snap-")
            .and_then(|r| r.strip_suffix(".snap"))
        else {
            continue;
        };
        let Some((seq, epoch)) = rest.split_once('-') else {
            continue;
        };
        let (Ok(seq), Ok(epoch)) = (seq.parse::<u64>(), epoch.parse::<u64>()) else {
            continue;
        };
        if best.is_none_or(|b| (seq, epoch) > b) {
            best = Some((seq, epoch));
        }
    }
    let Some((seq, epoch)) = best else {
        return Ok(None);
    };
    let id = ReplFileId::Snapshot { seq, epoch };
    Ok(file_len(&id.path(dir))?.map(|len| ReplFile { file: id, len }))
}

/// Every archive segment in `dir`, sorted by coverage start — the cold
/// tier a follower copies verbatim (the chain is contiguous from 0, and
/// segments are immutable once written).
pub fn archive_files(dir: &Path) -> io::Result<Vec<ReplFile>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(rest) = name
            .strip_prefix("arch-")
            .and_then(|r| r.strip_suffix(".arch"))
        else {
            continue;
        };
        let Some((from, to)) = rest.split_once('-') else {
            continue;
        };
        let (Ok(from), Ok(to)) = (from.parse::<u64>(), to.parse::<u64>()) else {
            continue;
        };
        out.push(ReplFile {
            file: ReplFileId::Archive { from, to },
            len: entry.metadata()?.len(),
        });
    }
    out.sort_by_key(|f| match f.file {
        ReplFileId::Archive { from, to } => (from, to),
        _ => unreachable!("only archive ids pushed"),
    });
    Ok(out)
}

/// The first sequence number of every WAL segment in `dir`, ascending.
/// All but the last are sealed (immutable); the last is the active
/// segment the primary is appending to.
pub fn wal_segment_ids(dir: &Path) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".log"))
            .and_then(|d| d.parse::<u64>().ok())
        {
            out.push(seq);
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// The policy-epoch marker, if one has ever been written (absent until
/// the first durable policy edit).
pub fn epoch_marker_file(dir: &Path) -> io::Result<Option<ReplFile>> {
    let id = ReplFileId::EpochMarker;
    Ok(file_len(&id.path(dir))?.map(|len| ReplFile { file: id, len }))
}

/// A chunk of a shippable file's bytes, plus the file's total length at
/// read time (so the fetcher can tell "caught up to the end" from "the
/// file grew while I read").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRead {
    /// The bytes at `[offset, offset + bytes.len())`.
    pub bytes: Vec<u8>,
    /// The file's length when the chunk was read.
    pub file_len: u64,
}

/// Read up to `max_len` bytes of `file` starting at `offset`. Returns
/// `None` when the file does not exist (rotated away, compacted, or
/// pruned since the manifest was taken — the peer must re-plan), and an
/// empty chunk when `offset` is at or past the current end.
pub fn read_file_chunk(
    dir: &Path,
    file: ReplFileId,
    offset: u64,
    max_len: u32,
) -> io::Result<Option<ChunkRead>> {
    let path = file.path(dir);
    let mut f = match fs::File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let file_len = f.metadata()?.len();
    if offset >= file_len {
        return Ok(Some(ChunkRead {
            bytes: Vec::new(),
            file_len,
        }));
    }
    let want = (file_len - offset).min(max_len as u64) as usize;
    f.seek(SeekFrom::Start(offset))?;
    let mut bytes = vec![0u8; want];
    let mut read = 0usize;
    while read < want {
        match f.read(&mut bytes[read..]) {
            Ok(0) => break, // truncated under us; return what we got
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    bytes.truncate(read);
    Ok(Some(ChunkRead { bytes, file_len }))
}

// --- the follower's tail scanner -------------------------------------------

/// A verification failure in shipped segment bytes: the exact cursor
/// that did not scan. The fetch loop retries the same cursor a bounded
/// number of times (an in-flight append can look torn for one poll) and
/// parks the follower if the fault persists — it never applies the
/// bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailFault {
    /// First sequence of the segment that faulted.
    pub segment: u64,
    /// Byte offset of the first unverifiable byte.
    pub offset: u64,
    /// What failed to verify.
    pub reason: String,
}

impl std::fmt::Display for TailFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "segment {} offset {}: {}",
            self.segment, self.offset, self.reason
        )
    }
}

/// One verified WAL record yielded by the scanner, preserving the
/// primary's record *kind*: a plain ingest batch replays through
/// enforcement, a quarantine batch goes back onto the follower's
/// quarantine ledger — never through enforcement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailBatch {
    /// A trusted ingest batch (one WAL record).
    Events(Vec<Event>),
    /// A quarantine record: events from a below-trust sensor.
    Quarantine {
        /// The sensor the events came from.
        source: SubjectId,
        /// Its trust level when the primary quarantined the batch.
        level: u8,
        /// The quarantined events.
        events: Vec<Event>,
    },
    /// A situation record: the follower re-applies the op to its own
    /// policy at the same stream position the primary did, keeping the
    /// two judging identically from that sequence on.
    Situation(SituationOp),
}

impl TailBatch {
    /// The record's events, whatever its kind.
    pub fn events(&self) -> &[Event] {
        match self {
            TailBatch::Events(events) | TailBatch::Quarantine { events, .. } => events,
            TailBatch::Situation(_) => &[],
        }
    }
}

/// What one [`TailScanner::apply`] call produced: every batch that
/// verified (in order, record boundaries preserved), and optionally the
/// fault that stopped the scan. `fault: None` with no batches simply
/// means "need more bytes" — a partial record at the active segment's
/// tail is normal, not damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailStep {
    /// Verified batches, one per WAL record.
    pub batches: Vec<TailBatch>,
    /// The verification failure that stopped the scan, if any.
    pub fault: Option<TailFault>,
}

/// The follower-side resume state machine over a primary's WAL.
///
/// The scanner holds a `(segment, offset)` byte cursor plus the
/// sequence number of the next event it expects. Feed it chunks fetched
/// from exactly [`TailScanner::offset`]; it verifies and yields whole
/// records and commits the cursor **only past bytes it fully
/// verified**. Bytes of a record still straddling the last chunk are
/// carried in an internal buffer — the fetch cursor keeps advancing
/// even when one record is larger than one fetch, so progress never
/// depends on the chunk size. On a verification fault the carry buffer
/// is discarded and the cursor snaps back to the first unverified byte:
/// a retry (or a reconnect) re-fetches from there, so a transiently
/// torn read heals and a real corruption faults again, deterministically.
/// Events below the `skip_below` floor (already applied via the
/// bootstrap snapshot) are trimmed from the yielded batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailScanner {
    segment: u64,
    /// File offset of the first byte not yet *verified* — the start of
    /// `buf` within the segment.
    committed: u64,
    /// Fetched-but-unverified bytes (a record straddling chunks).
    buf: Vec<u8>,
    next_seq: u64,
    skip_below: u64,
}

impl TailScanner {
    /// Position a scanner so that replaying from it covers every event
    /// at sequence `applied` and beyond, given the primary's current
    /// segment inventory. Returns `None` when no segment can cover
    /// `applied` — the WAL was compacted past the follower's position
    /// and only a fresh bootstrap can help.
    pub fn start(applied: u64, segments: &[u64]) -> Option<TailScanner> {
        let segment = segments.iter().copied().filter(|&s| s <= applied).max()?;
        Some(TailScanner {
            segment,
            committed: 0,
            buf: Vec::new(),
            next_seq: segment,
            skip_below: applied,
        })
    }

    /// First sequence of the segment the cursor is in.
    pub fn segment(&self) -> u64 {
        self.segment
    }

    /// Byte offset within the segment to fetch next (past both the
    /// verified bytes and the carried partial record).
    pub fn offset(&self) -> u64 {
        self.committed + self.buf.len() as u64
    }

    /// Sequence number of the next event the scanner will see.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Commit the verified prefix `pos` of the carry buffer and stop
    /// this pass: a `hard` stop discards the unverified remainder and
    /// reports a fault at the commit point (the retry cursor); a soft
    /// one keeps it for the next chunk to complete.
    fn pause(&mut self, pos: usize, batches: Vec<TailBatch>, hard: bool, reason: &str) -> TailStep {
        self.committed += pos as u64;
        self.buf.drain(..pos);
        let fault = if hard {
            self.buf.clear();
            Some(TailFault {
                segment: self.segment,
                offset: self.committed,
                reason: reason.into(),
            })
        } else {
            None
        };
        TailStep { batches, fault }
    }

    /// Verify and consume `chunk`, which must hold the segment's bytes
    /// starting exactly at [`TailScanner::offset`]. `file_len` and
    /// `sealed` describe the segment at the time the chunk was read:
    /// `sealed` segments must end on a record boundary, while the
    /// active segment may legitimately end mid-record (an append in
    /// flight) — the scanner waits rather than faulting.
    pub fn apply(&mut self, chunk: &[u8], file_len: u64, sealed: bool) -> TailStep {
        self.buf.extend_from_slice(chunk);
        let mut batches = Vec::new();
        // Did the fetched bytes reach the end of the file as it existed
        // when read? Only then can a partial record in a sealed segment
        // be called damage rather than a short read.
        let saw_eof = self.committed + self.buf.len() as u64 >= file_len;
        let mut pos = 0usize;
        if self.committed == 0 {
            let Some(header) = self.buf.get(..SEGMENT_HEADER_LEN as usize) else {
                // Header still being written (or chunked): poll again,
                // unless the sealed file genuinely ends inside it.
                let hard = sealed && saw_eof;
                return self.pause(0, batches, hard, "sealed segment shorter than its header");
            };
            let header_ok = header[0..4] == WAL_MAGIC
                && u16::from_le_bytes([header[4], header[5]]) == WAL_VERSION
                && u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")) == self.segment;
            if !header_ok {
                return self.pause(0, batches, true, "bad segment header");
            }
            pos = SEGMENT_HEADER_LEN as usize;
        }
        loop {
            let avail = &self.buf[pos..];
            if avail.is_empty() {
                self.committed += pos as u64;
                self.buf.drain(..pos);
                break;
            }
            let Some(header) = avail.get(..RECORD_HEADER_LEN as usize) else {
                // Partial record header at the tail: carried to the
                // next chunk (or damage, if the sealed file ends here).
                let hard = sealed && saw_eof;
                return self.pause(pos, batches, hard, "sealed segment ends mid record header");
            };
            let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            let start = RECORD_HEADER_LEN as usize;
            let Some(payload) = start.checked_add(len).and_then(|end| avail.get(start..end)) else {
                // Partial payload at the tail.
                let hard = sealed && saw_eof;
                return self.pause(pos, batches, hard, "sealed segment ends mid record payload");
            };
            if crc32(payload) != crc {
                return self.pause(pos, batches, true, "record CRC mismatch");
            }
            // The payload must decode *exactly* into one record (plain
            // or quarantine) — same totality bar as crash recovery's
            // scan.
            let Ok(record) = decode_record_payload(payload) else {
                return self.pause(
                    pos,
                    batches,
                    true,
                    "record payload is not a clean event batch",
                );
            };
            let count = record.seq_count();
            if self.next_seq + count > self.skip_below {
                let skip = self.skip_below.saturating_sub(self.next_seq) as usize;
                batches.push(match record {
                    RecordPayload::Events(mut events) => TailBatch::Events(events.split_off(skip)),
                    RecordPayload::Quarantine {
                        source,
                        level,
                        mut events,
                    } => TailBatch::Quarantine {
                        source,
                        level,
                        events: events.split_off(skip),
                    },
                    // A situation record is one seq; reaching this arm
                    // means it is wholly above `skip_below` (skip == 0).
                    RecordPayload::Situation(op) => TailBatch::Situation(op),
                });
            }
            self.next_seq += count;
            pos += start + len;
        }
        // Fully consumed a sealed segment: hop to the next one (WAL
        // segments are seq-contiguous, so its first sequence is exactly
        // the next event's).
        if sealed && saw_eof && self.committed >= file_len {
            if self.next_seq <= self.segment {
                // A sealed segment with zero records cannot be followed
                // by another (the successor would collide on the same
                // name); refuse rather than loop.
                return self.pause(0, batches, true, "sealed segment holds no records");
            }
            self.segment = self.next_seq;
            self.committed = 0;
        }
        TailStep {
            batches,
            fault: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use crate::wal::{Wal, WalConfig};
    use ltam_core::subject::SubjectId;
    use ltam_graph::LocationId;
    use ltam_time::Time;

    fn event(t: u64) -> Event {
        Event::Request {
            time: Time(t),
            subject: SubjectId((t % 5) as u32),
            location: LocationId(1),
        }
    }

    /// Build a WAL with `batches`, rotating after each call to `rotate`.
    fn build_wal(dir: &Path, batches: &[Vec<Event>], rotate_every: usize) -> Vec<u64> {
        let (mut wal, _) = Wal::open(
            dir,
            WalConfig {
                fsync: false,
                ..WalConfig::default()
            },
        )
        .unwrap();
        for (i, b) in batches.iter().enumerate() {
            wal.append_batch(b).unwrap();
            if rotate_every > 0 && (i + 1) % rotate_every == 0 {
                wal.rotate().unwrap();
            }
        }
        wal_segment_ids(dir).unwrap()
    }

    /// Unwrap plain batches (the pre-quarantine shape most tests build).
    fn plain(batches: Vec<TailBatch>) -> Vec<Vec<Event>> {
        batches
            .into_iter()
            .map(|b| match b {
                TailBatch::Events(events) => events,
                TailBatch::Quarantine { .. } | TailBatch::Situation(_) => {
                    panic!("expected a plain batch")
                }
            })
            .collect()
    }

    fn drive_scanner(dir: &Path, scanner: &mut TailScanner, chunk_bytes: u32) -> Vec<TailBatch> {
        let mut out = Vec::new();
        loop {
            let segs = wal_segment_ids(dir).unwrap();
            let sealed = segs.iter().any(|&s| s > scanner.segment());
            let chunk = read_file_chunk(
                dir,
                ReplFileId::WalSegment {
                    first_seq: scanner.segment(),
                },
                scanner.offset(),
                chunk_bytes,
            )
            .unwrap()
            .expect("segment exists");
            let at_end = chunk.bytes.is_empty() && !sealed;
            let step = scanner.apply(&chunk.bytes, chunk.file_len, sealed);
            assert_eq!(step.fault, None, "clean log never faults");
            out.extend(step.batches);
            if at_end {
                return out;
            }
        }
    }

    #[test]
    fn scanner_replays_a_multi_segment_log_preserving_batch_boundaries() {
        let dir = ScratchDir::new("replica-scan");
        let batches: Vec<Vec<Event>> = (0..10u64)
            .map(|i| (i * 3..i * 3 + 3).map(event).collect())
            .collect();
        build_wal(dir.path(), &batches, 3);
        for chunk_bytes in [7u32, 64, 1 << 20] {
            let mut scanner = TailScanner::start(0, &wal_segment_ids(dir.path()).unwrap()).unwrap();
            let got = plain(drive_scanner(dir.path(), &mut scanner, chunk_bytes));
            assert_eq!(got, batches, "chunk size {chunk_bytes}");
            assert_eq!(scanner.next_seq(), 30);
        }
    }

    #[test]
    fn scanner_trims_events_below_the_bootstrap_floor() {
        let dir = ScratchDir::new("replica-floor");
        let batches: Vec<Vec<Event>> = (0..6u64)
            .map(|i| (i * 4..i * 4 + 4).map(event).collect())
            .collect();
        let segs = build_wal(dir.path(), &batches, 2);
        // Floor mid-batch: the covering record is re-fetched, the
        // already-applied prefix trimmed.
        let mut scanner = TailScanner::start(10, &segs).unwrap();
        let got = plain(drive_scanner(dir.path(), &mut scanner, 1 << 20));
        let flat: Vec<Event> = got.into_iter().flatten().collect();
        let expected: Vec<Event> = (10..24u64).map(event).collect();
        assert_eq!(flat, expected);
    }

    #[test]
    fn start_refuses_when_the_floor_predates_every_segment() {
        assert!(TailScanner::start(5, &[8, 16]).is_none());
        assert!(TailScanner::start(8, &[8, 16]).is_some());
        assert!(TailScanner::start(0, &[]).is_none());
    }

    #[test]
    fn torn_tail_of_the_active_segment_waits_instead_of_faulting() {
        let dir = ScratchDir::new("replica-torn");
        let batches: Vec<Vec<Event>> = (0..3u64).map(|i| vec![event(i)]).collect();
        build_wal(dir.path(), &batches, 0);
        let path = ReplFileId::WalSegment { first_seq: 0 }.path(dir.path());
        let full = fs::read(&path).unwrap();
        for cut in 1..full.len() {
            let mut scanner = TailScanner::start(0, &[0]).unwrap();
            let step = scanner.apply(&full[..cut], cut as u64, false);
            assert_eq!(step.fault, None, "cut at {cut} is a wait, not a fault");
            let yielded: usize = step.batches.iter().map(|b| b.events().len()).sum();
            assert!(yielded <= 3);
            // Whatever was yielded is an exact prefix of the real events.
            let flat: Vec<Event> = plain(step.batches).into_iter().flatten().collect();
            let expected: Vec<Event> = (0..yielded as u64).map(event).collect();
            assert_eq!(flat, expected);
        }
    }

    #[test]
    fn truncated_sealed_segment_faults_and_never_yields_wrong_records() {
        let dir = ScratchDir::new("replica-truncated");
        let batches: Vec<Vec<Event>> = (0..3u64).map(|i| vec![event(i)]).collect();
        build_wal(dir.path(), &batches, 0);
        let path = ReplFileId::WalSegment { first_seq: 0 }.path(dir.path());
        let full = fs::read(&path).unwrap();
        for cut in 0..full.len() - 1 {
            let mut scanner = TailScanner::start(0, &[0]).unwrap();
            let step = scanner.apply(&full[..cut], cut as u64, true);
            let fault = step.fault.clone();
            let flat: Vec<Event> = plain(step.batches).into_iter().flatten().collect();
            let expected: Vec<Event> = (0..flat.len() as u64).map(event).collect();
            assert_eq!(flat, expected, "prefix property at cut {cut}");
            assert!(
                fault.is_some() || scanner.offset() < full.len() as u64,
                "a truncated sealed segment must fault or stop short (cut {cut})"
            );
        }
    }

    #[test]
    fn bit_flips_fault_at_the_damaged_record() {
        let dir = ScratchDir::new("replica-flip");
        let batches: Vec<Vec<Event>> = (0..4u64).map(|i| vec![event(i)]).collect();
        build_wal(dir.path(), &batches, 0);
        let path = ReplFileId::WalSegment { first_seq: 0 }.path(dir.path());
        let full = fs::read(&path).unwrap();
        for byte in 0..full.len() {
            let mut damaged = full.clone();
            damaged[byte] ^= 0x10;
            let mut scanner = TailScanner::start(0, &[0]).unwrap();
            let step = scanner.apply(&damaged, damaged.len() as u64, true);
            let flat: Vec<Event> = plain(step.batches).into_iter().flatten().collect();
            let expected: Vec<Event> = (0..flat.len() as u64).map(event).collect();
            assert_eq!(
                flat, expected,
                "flip at byte {byte} yielded a wrong-but-valid record"
            );
        }
    }

    #[test]
    fn quarantine_records_ship_with_their_kind_and_consume_sequences() {
        use crate::wal::WalBatch;
        let dir = ScratchDir::new("replica-quarantine");
        let (mut wal, _) = Wal::open(
            dir.path(),
            WalConfig {
                fsync: false,
                ..WalConfig::default()
            },
        )
        .unwrap();
        let trusted: Vec<Event> = (0..3u64).map(event).collect();
        let held: Vec<Event> = (3..5u64).map(event).collect();
        let tail: Vec<Event> = (5..6u64).map(event).collect();
        wal.append_batch(&trusted).unwrap();
        wal.append_mixed(&[WalBatch::Quarantine {
            source: SubjectId(9),
            level: 1,
            events: &held,
        }])
        .unwrap();
        wal.append_batch(&tail).unwrap();
        let segs = wal_segment_ids(dir.path()).unwrap();
        let mut scanner = TailScanner::start(0, &segs).unwrap();
        let got = drive_scanner(dir.path(), &mut scanner, 1 << 20);
        assert_eq!(
            got,
            vec![
                TailBatch::Events(trusted),
                TailBatch::Quarantine {
                    source: SubjectId(9),
                    level: 1,
                    events: held.clone(),
                },
                TailBatch::Events(tail),
            ]
        );
        assert_eq!(scanner.next_seq(), 6, "quarantine records consume seqs");
        // A floor inside the quarantine record trims its prefix but
        // keeps the kind.
        let mut scanner = TailScanner::start(4, &segs).unwrap();
        let got = drive_scanner(dir.path(), &mut scanner, 1 << 20);
        assert_eq!(
            got[0],
            TailBatch::Quarantine {
                source: SubjectId(9),
                level: 1,
                events: held[1..].to_vec(),
            }
        );
    }

    #[test]
    fn inventory_lists_and_reads_store_files() {
        let dir = ScratchDir::new("replica-inventory");
        let batches: Vec<Vec<Event>> = (0..4u64).map(|i| vec![event(i)]).collect();
        let segs = build_wal(dir.path(), &batches, 2);
        assert_eq!(segs, vec![0, 2, 4]);
        assert_eq!(newest_snapshot(dir.path()).unwrap(), None);
        assert_eq!(archive_files(dir.path()).unwrap(), Vec::new());
        assert_eq!(epoch_marker_file(dir.path()).unwrap(), None);
        // Chunked read reassembles the exact file.
        let path = ReplFileId::WalSegment { first_seq: 0 }.path(dir.path());
        let full = fs::read(&path).unwrap();
        let mut got = Vec::new();
        loop {
            let chunk = read_file_chunk(
                dir.path(),
                ReplFileId::WalSegment { first_seq: 0 },
                got.len() as u64,
                5,
            )
            .unwrap()
            .unwrap();
            assert_eq!(chunk.file_len, full.len() as u64);
            if chunk.bytes.is_empty() {
                break;
            }
            got.extend(chunk.bytes);
        }
        assert_eq!(got, full);
        // Missing files are None, not errors.
        assert_eq!(
            read_file_chunk(dir.path(), ReplFileId::WalSegment { first_seq: 99 }, 0, 5).unwrap(),
            None
        );
    }
}
