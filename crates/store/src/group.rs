//! [`GroupCommit`] — a dedicated commit thread that coalesces ingest
//! batches from many submitters into one WAL write + one `fsync`.
//!
//! ## Why
//!
//! `DurableEngine::ingest` pays one `fsync` per batch. That is the
//! right call shape for a single in-process writer, but a serving tier
//! has *many* concurrent submitters (one per connection), and giving
//! each its own fsync serializes the whole tier on the disk's flush
//! latency. Group commit is the classic fix: submitters queue, a
//! single commit thread drains whatever has accumulated, appends every
//! batch under **one** WAL write + one `fsync`
//! ([`DurableEngine::commit_group`]), and then acks every waiter. Under
//! load, the queue is never empty when the fsync returns, so the cost
//! amortizes across more and more batches exactly when it matters.
//!
//! ## Ordering and atomicity
//!
//! Batches commit and are enforced in submission (queue) order; each
//! batch stays its own WAL record, so it is all-or-nothing across a
//! crash exactly as if it had been ingested alone. A waiter is acked
//! only after its batch's fsync returned — never before durability —
//! and acks go out **before** maintenance (retention, snapshot
//! cadence), so a snapshot stall delays the *next* group, not the acks
//! of the one already durable.
//!
//! ## Shutdown
//!
//! Dropping every [`CommitHandle`] closes the queue; the commit thread
//! drains what is left, runs a final maintenance pass, and parks the
//! engine for [`GroupCommit::shutdown`] to reclaim.

use crate::durable::DurableEngine;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use ltam_core::capability::{AdminOp, AdminOutcome};
use ltam_core::subject::SubjectId;
use ltam_engine::batch::{BatchOutcome, Event};
use ltam_situate::{SituationOp, SituationOutcome};
use std::io;
use std::thread::JoinHandle;

/// Tunables for a [`GroupCommit`] thread.
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitConfig {
    /// Stop draining the queue once a group holds this many **events**
    /// (not batches). Caps both ack latency under a flood and the size
    /// of a single WAL write; the group that triggers the cap still
    /// commits in full.
    pub max_group_events: usize,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_group_events: 32 * 1024,
        }
    }
}

/// One queued unit of durable work. Everything that mutates the engine
/// flows through this queue — ingest batches, quarantine batches from
/// below-trust sensors, and admin (policy/token) operations — so all
/// three commit in submission order on the single commit thread, and
/// admin ops are serialized with the ingest they govern.
enum Job {
    /// A trusted ingest batch and the completion to run after its
    /// fsync (or failure).
    Ingest {
        events: Vec<Event>,
        done: Box<dyn FnOnce(io::Result<BatchOutcome>) + Send>,
        /// When the batch entered the queue — the start of its
        /// `store_group_queue_wait_seconds` span.
        queued_at: std::time::Instant,
    },
    /// Events from a below-trust-threshold sensor, bound for the
    /// quarantine ledger (durable, but never enforced).
    Quarantine {
        source: SubjectId,
        level: u8,
        events: Vec<Event>,
        done: Box<dyn FnOnce(io::Result<usize>) + Send>,
    },
    /// A policy/token administration operation.
    Admin {
        op: AdminOp,
        done: Box<dyn FnOnce(io::Result<AdminOutcome>) + Send>,
    },
    /// A situation operation (mode declaration, responder/pin edit, or
    /// a workflow-constraint change).
    Situation {
        op: SituationOp,
        done: Box<dyn FnOnce(io::Result<SituationOutcome>) + Send>,
    },
}

impl Job {
    /// Events this job contributes toward the group-size cap.
    fn event_count(&self) -> usize {
        match self {
            Job::Ingest { events, .. } | Job::Quarantine { events, .. } => events.len(),
            // Admin and situation ops snapshot inline; count them like a
            // small batch so a flood of them still bounds the group.
            Job::Admin { .. } | Job::Situation { .. } => 1,
        }
    }
}

/// A cloneable submission handle onto a [`GroupCommit`] thread. Every
/// connection (or worker) holds one; dropping the last one shuts the
/// commit thread down.
#[derive(Clone)]
pub struct CommitHandle {
    tx: Sender<Job>,
}

impl std::fmt::Debug for CommitHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitHandle").finish_non_exhaustive()
    }
}

impl CommitHandle {
    /// Queue a batch and return immediately; `done` runs on the commit
    /// thread once the batch is durable (or failed). Keep the callback
    /// cheap — it delays every later waiter in the group — typically a
    /// channel send plus a waker poke.
    ///
    /// Errors only if the commit thread is gone (shut down), handing
    /// the events back.
    pub fn submit(
        &self,
        events: Vec<Event>,
        done: impl FnOnce(io::Result<BatchOutcome>) + Send + 'static,
    ) -> Result<(), Vec<Event>> {
        self.tx
            .send(Job::Ingest {
                events,
                done: Box::new(done),
                queued_at: std::time::Instant::now(),
            })
            .map_err(|e| match e.0 {
                Job::Ingest { events, .. } => events,
                _ => unreachable!("send returns the job it was given"),
            })
    }

    /// Queue a batch and block until it is durable — the convenience
    /// shape for tests and non-event-loop callers.
    pub fn commit(&self, events: Vec<Event>) -> io::Result<BatchOutcome> {
        let (tx, rx) = unbounded();
        self.submit(events, move |result| {
            let _ = tx.send(result);
        })
        .map_err(|_| io::Error::other("commit thread is shut down"))?;
        rx.recv()
            .unwrap_or_else(|_| Err(io::Error::other("commit thread died before acking")))
    }

    /// Queue a quarantine batch (events from a below-trust sensor);
    /// `done` runs once the batch is durable on the quarantine ledger.
    pub fn submit_quarantine(
        &self,
        source: SubjectId,
        level: u8,
        events: Vec<Event>,
        done: impl FnOnce(io::Result<usize>) + Send + 'static,
    ) -> Result<(), Vec<Event>> {
        self.tx
            .send(Job::Quarantine {
                source,
                level,
                events,
                done: Box::new(done),
            })
            .map_err(|e| match e.0 {
                Job::Quarantine { events, .. } => events,
                _ => unreachable!("send returns the job it was given"),
            })
    }

    /// Queue a quarantine batch and block until it is durable.
    pub fn commit_quarantine(
        &self,
        source: SubjectId,
        level: u8,
        events: Vec<Event>,
    ) -> io::Result<usize> {
        let (tx, rx) = unbounded();
        self.submit_quarantine(source, level, events, move |result| {
            let _ = tx.send(result);
        })
        .map_err(|_| io::Error::other("commit thread is shut down"))?;
        rx.recv()
            .unwrap_or_else(|_| Err(io::Error::other("commit thread died before acking")))
    }

    /// Queue an admin operation; `done` runs once it is applied and
    /// durable (admin edits snapshot before acking).
    pub fn submit_admin(
        &self,
        op: AdminOp,
        done: impl FnOnce(io::Result<AdminOutcome>) + Send + 'static,
    ) -> Result<(), Box<AdminOp>> {
        self.tx
            .send(Job::Admin {
                op,
                done: Box::new(done),
            })
            .map_err(|e| match e.0 {
                Job::Admin { op, .. } => Box::new(op),
                _ => unreachable!("send returns the job it was given"),
            })
    }

    /// Queue an admin operation and block until it is durable.
    pub fn admin(&self, op: AdminOp) -> io::Result<AdminOutcome> {
        let (tx, rx) = unbounded();
        self.submit_admin(op, move |result| {
            let _ = tx.send(result);
        })
        .map_err(|_| io::Error::other("commit thread is shut down"))?;
        rx.recv()
            .unwrap_or_else(|_| Err(io::Error::other("commit thread died before acking")))
    }

    /// Queue a situation operation; `done` runs once it is applied,
    /// WAL-logged, and snapshotted. It commits in queue position, so a
    /// mode declared before a batch governs that batch.
    pub fn submit_situation(
        &self,
        op: SituationOp,
        done: impl FnOnce(io::Result<SituationOutcome>) + Send + 'static,
    ) -> Result<(), Box<SituationOp>> {
        self.tx
            .send(Job::Situation {
                op,
                done: Box::new(done),
            })
            .map_err(|e| match e.0 {
                Job::Situation { op, .. } => Box::new(op),
                _ => unreachable!("send returns the job it was given"),
            })
    }

    /// Queue a situation operation and block until it is durable.
    pub fn situation(&self, op: SituationOp) -> io::Result<SituationOutcome> {
        let (tx, rx) = unbounded();
        self.submit_situation(op, move |result| {
            let _ = tx.send(result);
        })
        .map_err(|_| io::Error::other("commit thread is shut down"))?;
        rx.recv()
            .unwrap_or_else(|_| Err(io::Error::other("commit thread died before acking")))
    }
}

/// The owner of a running commit thread (see the [module docs](self)).
#[derive(Debug)]
pub struct GroupCommit {
    join: JoinHandle<DurableEngine>,
    /// Kept so `handle()` can mint more; dropped by `shutdown`.
    handle: CommitHandle,
}

impl GroupCommit {
    /// Move `engine` onto a new commit thread and return the owner plus
    /// the first submission handle.
    pub fn start(engine: DurableEngine, config: GroupCommitConfig) -> (GroupCommit, CommitHandle) {
        let (tx, rx) = unbounded::<Job>();
        let join = std::thread::Builder::new()
            .name("ltam-commit".into())
            .spawn(move || commit_loop(engine, rx, config))
            .expect("spawn commit thread");
        let handle = CommitHandle { tx };
        (
            GroupCommit {
                join,
                handle: handle.clone(),
            },
            handle,
        )
    }

    /// Mint another submission handle.
    pub fn handle(&self) -> CommitHandle {
        self.handle.clone()
    }

    /// Close the queue, drain every batch already submitted (each still
    /// acked after its fsync), and hand the engine back. Outstanding
    /// [`CommitHandle`] clones keep the queue open — drop them first or
    /// this blocks until they go away.
    pub fn shutdown(self) -> io::Result<DurableEngine> {
        drop(self.handle);
        self.join
            .join()
            .map_err(|_| io::Error::other("commit thread panicked"))
    }
}

fn commit_loop(
    mut engine: DurableEngine,
    rx: Receiver<Job>,
    config: GroupCommitConfig,
) -> DurableEngine {
    while let Ok(first) = rx.recv() {
        let mut total = first.event_count();
        let mut jobs = vec![first];
        // Natural batching: drain whatever queued while the previous
        // group's fsync ran. No linger timer — waiting for more work
        // when the disk is idle only adds latency; under load the queue
        // is never empty here.
        while total < config.max_group_events {
            match rx.try_recv() {
                Ok(job) => {
                    total += job.event_count();
                    jobs.push(job);
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        // The group is formed: its shape and each member's time-in-queue
        // are the observables PR 6's p99 hunt wanted and lacked.
        if !ltam_obs::disabled() {
            let now = std::time::Instant::now();
            let wait = ltam_obs::histogram!(
                "store_group_queue_wait_seconds",
                "Time an ingest batch waited in the group-commit queue before its group formed",
                SecondsFromMicros
            );
            for job in &jobs {
                if let Job::Ingest { queued_at, .. } = job {
                    wait.observe(now.duration_since(*queued_at).as_micros() as u64);
                }
            }
        }
        ltam_obs::counter!(
            "store_group_commits_total",
            "Commit groups flushed (one WAL write + one fsync each)"
        )
        .inc();
        ltam_obs::histogram!(
            "store_group_events",
            "Events coalesced into one commit group",
            None
        )
        .observe(total as u64);
        ltam_obs::histogram!(
            "store_group_batches",
            "Ingest batches coalesced into one commit group",
            None
        )
        .observe(jobs.len() as u64);
        // Walk the group in submission order. Consecutive ingest jobs
        // coalesce into one `commit_group` call (one WAL write + one
        // fsync); quarantine and admin jobs commit where they stand so
        // ordering against neighboring ingest is preserved — an admin
        // revocation submitted before a batch governs that batch.
        let mut iter = jobs.into_iter().peekable();
        while let Some(job) = iter.next() {
            match job {
                Job::Ingest { .. } => {
                    let mut run = vec![job];
                    while iter.peek().is_some_and(|j| matches!(j, Job::Ingest { .. })) {
                        run.push(iter.next().expect("peeked"));
                    }
                    let batches: Vec<&[Event]> = run
                        .iter()
                        .map(|j| match j {
                            Job::Ingest { events, .. } => events.as_slice(),
                            _ => unreachable!("run holds only ingest jobs"),
                        })
                        .collect();
                    let result = engine.commit_group(&batches);
                    match result {
                        Ok(outcomes) => {
                            debug_assert_eq!(outcomes.len(), run.len());
                            for (job, outcome) in run.into_iter().zip(outcomes) {
                                if let Job::Ingest { done, .. } = job {
                                    done(Ok(outcome));
                                }
                            }
                        }
                        Err(e) => {
                            // The run never reached the WAL: every
                            // submitter gets the same verdict and may
                            // retry.
                            let kind = e.kind();
                            let message = e.to_string();
                            for job in run {
                                if let Job::Ingest { done, .. } = job {
                                    done(Err(io::Error::new(kind, message.clone())));
                                }
                            }
                        }
                    }
                }
                Job::Quarantine {
                    source,
                    level,
                    events,
                    done,
                } => done(engine.commit_quarantine(source, level, &events)),
                Job::Admin { op, done } => done(engine.apply_admin(op)),
                Job::Situation { op, done } => done(engine.apply_situation(&op)),
            }
        }
        // Acks are out; now the cadence work (snapshot imaging is
        // about a millisecond — the expensive write is backgrounded).
        engine.maintain();
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::StoreConfig;
    use crate::scratch::ScratchDir;
    use ltam_core::model::{Authorization, EntryLimit};
    use ltam_core::subject::SubjectId;
    use ltam_engine::batch::PolicyCore;
    use ltam_graph::examples::ntu_campus;
    use ltam_time::{Interval, Time};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn store(dir: &std::path::Path, fsync: bool) -> DurableEngine {
        let ntu = ntu_campus();
        let cais = ntu.cais;
        let mut core = PolicyCore::new(ntu.model);
        for s in 0..64u32 {
            core.add_authorization(
                Authorization::new(
                    Interval::ALL,
                    Interval::ALL,
                    SubjectId(s),
                    cais,
                    EntryLimit::Unbounded,
                )
                .unwrap(),
            );
        }
        let config = StoreConfig {
            snapshot_every: 0,
            fsync,
            ..StoreConfig::default()
        };
        DurableEngine::create(dir, core, 2, config).unwrap().0
    }

    fn request(t: u64, s: u32) -> Event {
        let cais = ntu_campus().cais;
        Event::Request {
            time: Time(t),
            subject: SubjectId(s),
            location: cais,
        }
    }

    #[test]
    fn concurrent_submitters_all_commit_with_far_fewer_fsyncs() {
        let dir = ScratchDir::new("group-basic");
        let engine = store(dir.path(), true);
        let fsyncs_before = engine.wal_fsyncs();
        let (gc, handle) = GroupCommit::start(engine, GroupCommitConfig::default());
        let submitters: Vec<_> = (0..8)
            .map(|thread| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    for i in 0..25u64 {
                        let out = h.commit(vec![request(i, thread)]).unwrap();
                        assert_eq!(out.granted, 1);
                    }
                })
            })
            .collect();
        for t in submitters {
            t.join().unwrap();
        }
        drop(handle);
        let engine = gc.shutdown().unwrap();
        assert_eq!(engine.applied(), 200);
        let fsyncs = engine.wal_fsyncs() - fsyncs_before;
        assert!(
            fsyncs < 200,
            "200 one-event batches from 8 threads must share fsyncs (got {fsyncs})"
        );
    }

    #[test]
    fn acks_preserve_submission_order_and_outcomes_line_up() {
        let dir = ScratchDir::new("group-order");
        let engine = store(dir.path(), false);
        let (gc, handle) = GroupCommit::start(engine, GroupCommitConfig::default());
        let acked = Arc::new(AtomicUsize::new(0));
        let mut ranks = Vec::new();
        for i in 0..50u64 {
            let acked = Arc::clone(&acked);
            let (tx, rx) = unbounded();
            handle
                .submit(vec![request(i, (i % 4) as u32)], move |result| {
                    let rank = acked.fetch_add(1, Ordering::SeqCst);
                    let _ = tx.send((rank, result.unwrap().granted));
                })
                .unwrap();
            ranks.push(rx);
        }
        for (i, rx) in ranks.into_iter().enumerate() {
            let (rank, granted) = rx.recv().unwrap();
            assert_eq!(rank, i, "acks ran in submission order");
            assert_eq!(granted, 1);
        }
        drop(handle);
        let engine = gc.shutdown().unwrap();
        assert_eq!(engine.applied(), 50);
    }

    #[test]
    fn shutdown_drains_queued_batches_before_returning_the_engine() {
        let dir = ScratchDir::new("group-drain");
        let engine = store(dir.path(), false);
        let (gc, handle) = GroupCommit::start(engine, GroupCommitConfig::default());
        for i in 0..100u64 {
            handle.submit(vec![request(i, 0)], drop).unwrap();
        }
        drop(handle);
        let engine = gc.shutdown().unwrap();
        assert_eq!(engine.applied(), 100, "nothing queued is dropped");
    }
}
