//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) — the per-record and
//! per-snapshot integrity check of the on-disk formats.
//!
//! Table-driven ("slicing-by-8"), with the tables built at compile time;
//! no external crate needed. The reflected IEEE variant is the one
//! `zlib`, Ethernet and most storage formats use, so fixtures written
//! here can be checked with standard tooling.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Eight chained tables: `TABLES[k][b]` advances a CRC by one byte `b`
/// followed by `k` zero bytes, which lets the hot loop fold 8 input
/// bytes per iteration (snapshot payloads are megabytes, so the plain
/// byte-at-a-time loop was showing up in the snapshot stall).
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC-32 of `bytes` (IEEE, reflected, init and final XOR `0xFFFFFFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][chunk[4] as usize]
            ^ TABLES[2][chunk[5] as usize]
            ^ TABLES[1][chunk[6] as usize]
            ^ TABLES[0][chunk[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"ltam-store record");
        let mut corrupted = b"ltam-store record".to_vec();
        for i in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {i} bit {bit}");
                corrupted[i] ^= 1 << bit;
            }
        }
    }
}
