//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) — the per-record and
//! per-snapshot integrity check of the on-disk formats.
//!
//! Table-driven, with the table built at compile time; no external crate
//! needed. The reflected IEEE variant is the one `zlib`, Ethernet and
//! most storage formats use, so fixtures written here can be checked with
//! standard tooling.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, reflected, init and final XOR `0xFFFFFFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"ltam-store record");
        let mut corrupted = b"ltam-store record".to_vec();
        for i in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {i} bit {bit}");
                corrupted[i] ^= 1 << bit;
            }
        }
    }
}
