//! Segmented, append-only write-ahead log for [`Event`] streams.
//!
//! ## On-disk format (version 1)
//!
//! A WAL is a directory of segment files named `wal-<first_seq>.log`,
//! where `<first_seq>` is the zero-padded sequence number of the
//! segment's first record. Each segment is:
//!
//! ```text
//! ┌────────────────────────── segment header (16 bytes) ─────────────┐
//! │ magic "LTWL" │ version u16 LE │ reserved u16 │ first_seq u64 LE  │
//! ├────────────────────────── records ───────────────────────────────┤
//! │ len u32 LE │ crc32 u32 LE │ payload (len bytes, >= 1 Events)     │
//! │ ...                                                              │
//! └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The CRC covers the payload; the payload is the [`codec`](crate::codec)
//! binary encoding of **one or more** concatenated events — one record
//! per appended batch. (Before group commit landed, every record held
//! exactly one event; such logs are a special case of this format and
//! still replay, so the version stays 1.) A record is the unit of
//! atomicity: recovery keeps it in full or discards it in full, which is
//! what makes an appended batch all-or-nothing across a crash. Appends
//! take **one `fsync` per call** — [`Wal::append_batches`] stacks many
//! batches into that single fsync, which is the group-commit path — and
//! a segment rotates once it crosses [`WalConfig::segment_bytes`]
//! (checked at append granularity, so a segment may exceed the threshold
//! by at most one append).
//!
//! ## Recovery
//!
//! [`Wal::open`] scans every segment in sequence order and stops at the
//! **first** invalid byte: a torn record header, a short payload, a CRC
//! mismatch, a payload that is not exactly one event, or a segment whose
//! header or name disagrees with the expected sequence. Everything before
//! that point is returned as recovered `(seq, Event)` pairs and is never
//! dropped; everything from that point on is disregarded, because record
//! boundaries after a corrupt region cannot be trusted. The damaged
//! segment is truncated to its last valid record, so the log is
//! immediately appendable again; later segments (which may hold intact,
//! acked records) are renamed to `*.quarantine` — set aside for
//! operators, never deleted.
//!
//! Compaction ([`Wal::compact`]) removes sealed segments all of whose
//! records are at sequence numbers below a snapshot's cover point.

use crate::codec::{
    decode_record_payload, encode_event, encode_quarantine, encode_situation, RecordPayload,
};
use crate::crc::crc32;
use ltam_core::subject::SubjectId;
use ltam_engine::batch::{Event, QuarantinedEvent};
use ltam_situate::SituationOp;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL segment.
pub const WAL_MAGIC: [u8; 4] = *b"LTWL";
/// On-disk format version written into segment headers.
pub const WAL_VERSION: u16 = 1;
/// Bytes of the segment header.
pub const SEGMENT_HEADER_LEN: u64 = 16;
/// Bytes of a record header (length + CRC).
pub const RECORD_HEADER_LEN: u64 = 8;

/// Tunables for the write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Rotate to a new segment once the active one crosses this many
    /// bytes (checked per batch).
    pub segment_bytes: u64,
    /// `fsync` after every appended batch. Disable only for benchmarks
    /// and tests; without it a crash can lose the tail the OS had not
    /// flushed (recovery still truncates cleanly).
    pub fsync: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 1 << 20,
            fsync: true,
        }
    }
}

/// What [`Wal::open`] found (and repaired) on disk.
#[derive(Debug, Clone, Default)]
pub struct WalRecovery {
    /// Every intact plain-record event, in sequence order.
    pub events: Vec<(u64, Event)>,
    /// Every intact quarantine-record event, in sequence order (these
    /// occupy sequence numbers interleaved with `events`; they replay
    /// onto the quarantine ledger, never through enforcement).
    pub quarantined: Vec<(u64, QuarantinedEvent)>,
    /// Every intact situation record, in sequence order. These interleave
    /// with `events` and must be re-applied **at their sequence position**
    /// during replay — a mode declaration changes how every later event
    /// is judged.
    pub situations: Vec<(u64, SituationOp)>,
    /// Bytes cut off the damaged segment (0 for a clean log).
    pub truncated_bytes: u64,
    /// Whole segments disregarded because they followed (or were) a
    /// corrupt region — renamed to `*.quarantine` in the directory, never
    /// deleted, so acked records they may hold stay recoverable by hand.
    pub dropped_segments: usize,
}

/// One batch in a mixed append group: either a trusted ingest batch or
/// a quarantine batch (events from a below-trust sensor, recorded under
/// their own WAL record kind). Both consume sequence numbers uniformly
/// — one per event — so replication and the applied watermark never
/// care which kind a record was.
#[derive(Debug, Clone, Copy)]
pub enum WalBatch<'a> {
    /// A plain ingest batch (one record, concatenated events).
    Events(&'a [Event]),
    /// A quarantine batch (one record, sentinel-tagged payload).
    Quarantine {
        /// The sensor the events came from.
        source: SubjectId,
        /// Its trust level at quarantine time.
        level: u8,
        /// The quarantined events.
        events: &'a [Event],
    },
    /// A situation op (one record, one sequence number, no events).
    Situation(&'a SituationOp),
}

impl WalBatch<'_> {
    /// The batch's events, whatever its kind.
    pub fn events(&self) -> &[Event] {
        match self {
            WalBatch::Events(events) | WalBatch::Quarantine { events, .. } => events,
            WalBatch::Situation(_) => &[],
        }
    }

    /// Sequence numbers the batch consumes (events, or one for a
    /// situation op).
    pub fn seq_count(&self) -> u64 {
        match self {
            WalBatch::Situation(_) => 1,
            _ => self.events().len() as u64,
        }
    }
}

#[derive(Debug)]
struct Segment {
    first_seq: u64,
    path: PathBuf,
    /// Valid bytes (records end exactly here).
    len: u64,
    /// Events in the segment (a record may hold several).
    records: u64,
}

/// The segmented write-ahead log. See the [module docs](self) for the
/// format and recovery protocol.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    sealed: Vec<Segment>,
    active: Segment,
    file: File,
    next_seq: u64,
    /// `sync_data`/`sync_all` calls issued so far — the group-commit
    /// effectiveness metric (events per fsync) surfaces through here.
    fsyncs: u64,
    /// Set when a failed append could not be rolled back to the last
    /// known-good boundary; all further appends refuse.
    poisoned: bool,
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:020}.log"))
}

fn segment_header(first_seq: u64) -> [u8; 16] {
    let mut h = [0u8; 16];
    h[0..4].copy_from_slice(&WAL_MAGIC);
    h[4..6].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&first_seq.to_le_bytes());
    h
}

fn create_segment(dir: &Path, first_seq: u64, fsync: bool) -> io::Result<(Segment, File)> {
    let path = segment_path(dir, first_seq);
    let mut file = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(&path)?;
    file.write_all(&segment_header(first_seq))?;
    if fsync {
        file.sync_data()?;
        // The new directory entry must be durable too: without this, a
        // power cut can drop the whole segment file — and every
        // fsync-acked record inside it — while older segments survive,
        // which recovery could not distinguish from a legitimately
        // shorter log.
        if let Ok(d) = File::open(dir) {
            d.sync_all()?;
        }
    }
    Ok((
        Segment {
            first_seq,
            path,
            len: SEGMENT_HEADER_LEN,
            records: 0,
        },
        file,
    ))
}

/// Parse one segment's bytes. Returns the records that scanned cleanly
/// and, if the segment is damaged, the byte offset of the first invalid
/// byte.
fn scan_segment(bytes: &[u8], expected_first_seq: u64) -> (Vec<RecordPayload>, u64, Option<u64>) {
    let header_ok = bytes.len() >= SEGMENT_HEADER_LEN as usize
        && bytes[0..4] == WAL_MAGIC
        && u16::from_le_bytes([bytes[4], bytes[5]]) == WAL_VERSION
        && u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) == expected_first_seq;
    if !header_ok {
        return (Vec::new(), 0, Some(0));
    }
    let mut records = Vec::new();
    let mut at = SEGMENT_HEADER_LEN as usize;
    loop {
        if at == bytes.len() {
            return (records, at as u64, None);
        }
        let Some(header) = bytes.get(at..at + RECORD_HEADER_LEN as usize) else {
            return (records, at as u64, Some(at as u64));
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let start = at + RECORD_HEADER_LEN as usize;
        let Some(payload) = start.checked_add(len).and_then(|end| bytes.get(start..end)) else {
            return (records, at as u64, Some(at as u64));
        };
        if crc32(payload) != crc {
            return (records, at as u64, Some(at as u64));
        }
        // A record payload must decode exactly — one or more events, or
        // a quarantine batch; anything else (including an empty payload)
        // marks the record, and everything after it, invalid.
        let Ok(record) = decode_record_payload(payload) else {
            return (records, at as u64, Some(at as u64));
        };
        records.push(record);
        at = start + len;
    }
}

/// `dir`'s segment files as `(first_seq, path)`, sorted by sequence.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Move a segment the log can no longer trust out of the `wal-*.log`
/// namespace (so scans skip it and rotation can never collide with it)
/// while preserving its bytes for operators. The target name probes for
/// a free slot: if the log's sequence later re-crosses this segment's
/// range and corruption strikes again, the second quarantine must not
/// clobber the first one's evidence.
fn quarantine_segment(path: &Path) -> io::Result<()> {
    let target = free_quarantine_slot(path)?;
    fs::rename(path, target)
}

/// Park the cut-off bytes of a truncated segment next to it (same
/// naming scheme as whole-file quarantine).
fn quarantine_bytes(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let target = free_quarantine_slot(path)?;
    fs::write(target, bytes)
}

fn free_quarantine_slot(path: &Path) -> io::Result<PathBuf> {
    for attempt in 0..1000u32 {
        let mut target = path.as_os_str().to_owned();
        target.push(if attempt == 0 {
            ".quarantine".to_string()
        } else {
            format!(".quarantine-{attempt}")
        });
        let target = PathBuf::from(target);
        if !target.exists() {
            return Ok(target);
        }
    }
    Err(io::Error::other(format!(
        "no free quarantine slot for {}",
        path.display()
    )))
}

impl Wal {
    /// Open (or create) the WAL in `dir`, repairing any torn tail: the
    /// damaged segment is truncated to its last intact record and later
    /// segments are removed. Returns the log positioned for appending and
    /// everything it recovered.
    pub fn open(dir: &Path, config: WalConfig) -> io::Result<(Wal, WalRecovery)> {
        fs::create_dir_all(dir)?;
        let names = list_segments(dir)?;

        let mut recovery = WalRecovery::default();
        let mut segments: Vec<Segment> = Vec::new();
        let mut expected_seq: Option<u64> = None;
        let mut corrupt: Option<(usize, u64)> = None; // (segment index in `names`, offset)
        for (i, (first_seq, path)) in names.iter().enumerate() {
            // A gap between segments (or a name/header mismatch) means the
            // contiguous record sequence ends here.
            if expected_seq.is_some_and(|e| e != *first_seq) {
                corrupt = Some((i, 0));
                break;
            }
            let bytes = fs::read(path)?;
            let (scanned, valid_len, bad_at) = scan_segment(&bytes, *first_seq);
            let mut records = 0u64;
            for record in scanned {
                match record {
                    RecordPayload::Events(events) => {
                        for event in events {
                            recovery.events.push((first_seq + records, event));
                            records += 1;
                        }
                    }
                    RecordPayload::Quarantine {
                        source,
                        level,
                        events,
                    } => {
                        for event in events {
                            recovery.quarantined.push((
                                first_seq + records,
                                QuarantinedEvent {
                                    source,
                                    level,
                                    event,
                                },
                            ));
                            records += 1;
                        }
                    }
                    RecordPayload::Situation(op) => {
                        recovery.situations.push((first_seq + records, op));
                        records += 1;
                    }
                }
            }
            segments.push(Segment {
                first_seq: *first_seq,
                path: path.clone(),
                len: valid_len,
                records,
            });
            expected_seq = Some(first_seq + records);
            if let Some(off) = bad_at {
                recovery.truncated_bytes += bytes.len() as u64 - off;
                corrupt = Some((i, off));
                break;
            }
        }

        if let Some((i, off)) = corrupt {
            // Later segments cannot be trusted past a corrupt region —
            // but they may hold intact, fsync-acked records, so they are
            // QUARANTINED (renamed aside for operators/forensics), never
            // deleted. The caller decides whether losing them is
            // acceptable; `DurableEngine::open` refuses when they could
            // hold events past the usable snapshot.
            for (_, path) in &names[i + 1..] {
                quarantine_segment(path)?;
                recovery.dropped_segments += 1;
            }
            if off == 0 && i < segments.len() && segments[i].records == 0 {
                // Nothing valid in the damaged segment at all (bad
                // header): quarantine the whole file.
                let seg = segments.pop().expect("segment was just scanned");
                quarantine_segment(&seg.path)?;
            } else if i < segments.len() {
                // Truncate the damaged tail — but park its bytes first:
                // past the first invalid byte there may still be
                // CRC-intact acked records (e.g. a mid-segment bit flip),
                // and if the caller refuses this recovery, those bytes
                // are the operator's only repair material.
                let seg = &segments[i];
                let tail = fs::read(&seg.path)?;
                if (tail.len() as u64) > seg.len {
                    quarantine_bytes(&seg.path, &tail[seg.len as usize..])?;
                }
                let f = OpenOptions::new().write(true).open(&seg.path)?;
                f.set_len(seg.len)?;
                f.sync_data()?;
            } else {
                // Corruption was a sequence gap: the segment at `i` was
                // never scanned; quarantine it too.
                quarantine_segment(&names[i].1)?;
                recovery.dropped_segments += 1;
            }
        }

        let next_seq = segments
            .last()
            .map(|s| s.first_seq + s.records)
            .unwrap_or(0);
        let (active, file) = match segments.pop() {
            Some(seg) => {
                let file = OpenOptions::new().append(true).open(&seg.path)?;
                (seg, file)
            }
            None => create_segment(dir, next_seq, config.fsync)?,
        };
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                config,
                sealed: segments,
                active,
                file,
                next_seq,
                fsyncs: 0,
                poisoned: false,
            },
            recovery,
        ))
    }

    /// The sequence number the next appended event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// `fsync` calls this log has issued since it was opened (appends,
    /// rotations, and new-segment directory syncs).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Count `n` fsyncs against this log **and** the process-wide
    /// `store_wal_fsyncs_total` series. Every `self.fsyncs` increment
    /// funnels through here so the scraped counter matches
    /// [`Wal::fsyncs`] exactly (the serve drill asserts the equality
    /// over the wire).
    fn note_fsyncs(&mut self, n: u64) {
        self.fsyncs += n;
        ltam_obs::counter!(
            "store_wal_fsyncs_total",
            "fsync calls issued by the write-ahead log (appends, rotations, directory syncs)"
        )
        .inc_by(n);
    }

    /// List `dir`'s WAL segment files by name, sorted by first sequence,
    /// without opening (or repairing) the log — for fixtures, corruption
    /// drills, and tooling that needs to damage or inspect segments.
    pub fn segment_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
        Ok(list_segments(dir)?.into_iter().map(|(_, p)| p).collect())
    }

    /// Paths of every live segment, sealed first, active last.
    pub fn segment_paths(&self) -> Vec<PathBuf> {
        let mut out: Vec<PathBuf> = self.sealed.iter().map(|s| s.path.clone()).collect();
        out.push(self.active.path.clone());
        out
    }

    /// Append a batch of events as **one record**, one write + one
    /// `fsync` (if enabled). Returns the sequence number of the first
    /// event appended. The record framing is what makes the batch
    /// all-or-nothing: a crash mid-write tears the record, and recovery
    /// discards it in full — never a half-applied batch.
    ///
    /// A failed write is rolled back: the segment is truncated to its
    /// last known-good boundary, so a retried append never lands after
    /// partial junk (which recovery would treat as the end of the log,
    /// discarding every acked record behind it). If that rollback itself
    /// fails the log is poisoned and every further append errors.
    pub fn append_batch(&mut self, events: &[Event]) -> io::Result<u64> {
        self.append_batches(&[events])
    }

    /// Append several batches — one record each — as a single write and
    /// a single `fsync`: the group-commit primitive. Returns the
    /// sequence number of the first event appended.
    ///
    /// All batches share one durability point. On any failure the whole
    /// group is rolled back (or the log poisoned), so no caller can be
    /// acked while another group member is half-written; on a torn
    /// crash, recovery keeps a prefix of whole records, so each batch is
    /// individually all-or-nothing.
    pub fn append_batches(&mut self, batches: &[&[Event]]) -> io::Result<u64> {
        let mixed: Vec<WalBatch<'_>> = batches.iter().map(|b| WalBatch::Events(b)).collect();
        self.append_mixed(&mixed)
    }

    /// Append a group that may mix plain and quarantine batches — the
    /// full group-commit primitive. Same contract as
    /// [`Wal::append_batches`]: one record per batch, one write, one
    /// `fsync`, all-or-nothing rollback on failure.
    pub fn append_mixed(&mut self, batches: &[WalBatch<'_>]) -> io::Result<u64> {
        if self.poisoned {
            return Err(io::Error::other(
                "WAL poisoned: a failed append could not be rolled back; reopen to repair",
            ));
        }
        let first = self.next_seq;
        let total: u64 = batches.iter().map(|b| b.seq_count()).sum();
        if total == 0 {
            return Ok(first);
        }
        if self.active.len >= self.config.segment_bytes {
            self.rotate()?;
        }
        let mut buf = Vec::with_capacity(total as usize * 16);
        let mut payload = Vec::with_capacity(256);
        for batch in batches {
            if batch.seq_count() == 0 {
                continue;
            }
            payload.clear();
            match batch {
                WalBatch::Events(events) => {
                    for event in *events {
                        encode_event(event, &mut payload);
                    }
                }
                WalBatch::Quarantine {
                    source,
                    level,
                    events,
                } => encode_quarantine(*source, *level, events, &mut payload),
                WalBatch::Situation(op) => encode_situation(op, &mut payload),
            }
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(&payload).to_le_bytes());
            buf.extend_from_slice(&payload);
        }
        let written = self.file.write_all(&buf).and_then(|()| {
            if self.config.fsync {
                let span = ltam_obs::timed!("store_fsync_seconds", "WAL append fsync latency");
                let result = self.file.sync_data();
                drop(span);
                self.note_fsyncs(1);
                result
            } else {
                Ok(())
            }
        });
        if let Err(e) = written {
            if self.file.set_len(self.active.len).is_err() {
                self.poisoned = true;
            }
            return Err(e);
        }
        ltam_obs::counter!(
            "store_wal_appended_bytes_total",
            "Bytes appended to the write-ahead log"
        )
        .inc_by(buf.len() as u64);
        ltam_obs::counter!(
            "store_wal_records_total",
            "Events appended to the write-ahead log"
        )
        .inc_by(total);
        self.active.len += buf.len() as u64;
        self.active.records += total;
        self.next_seq += total;
        Ok(first)
    }

    /// Seal the active segment and start a new one at the current
    /// sequence. No-op if the active segment holds no records.
    pub fn rotate(&mut self) -> io::Result<()> {
        if self.active.records == 0 {
            return Ok(());
        }
        self.note_fsyncs(1);
        self.file.sync_data()?;
        let created = create_segment(&self.dir, self.next_seq, self.config.fsync)?;
        if self.config.fsync {
            self.note_fsyncs(2); // segment data + directory entry
        }
        let (next, file) = created;
        self.sealed.push(std::mem::replace(&mut self.active, next));
        self.file = file;
        Ok(())
    }

    /// Remove sealed segments all of whose records precede `covered_upto`
    /// (exclusive) — i.e. are already captured by a snapshot at that
    /// sequence. Returns the number of segments removed.
    pub fn compact(&mut self, covered_upto: u64) -> io::Result<usize> {
        let mut removed = 0;
        while let Some(first) = self.sealed.first() {
            let end = first.first_seq + first.records;
            if end > covered_upto {
                break;
            }
            let seg = self.sealed.remove(0);
            fs::remove_file(&seg.path)?;
            removed += 1;
        }
        Ok(removed)
    }

    /// Discard every segment and restart the log at sequence `seq` — the
    /// recovery escape hatch for a store whose WAL is missing or entirely
    /// unreadable but whose snapshot is valid.
    pub fn reset_to(&mut self, seq: u64) -> io::Result<()> {
        for seg in self.sealed.drain(..) {
            fs::remove_file(&seg.path)?;
        }
        fs::remove_file(&self.active.path)?;
        let (active, file) = create_segment(&self.dir, seq, self.config.fsync)?;
        if self.config.fsync {
            self.note_fsyncs(2);
        }
        self.active = active;
        self.file = file;
        self.next_seq = seq;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use ltam_core::subject::SubjectId;
    use ltam_graph::LocationId;
    use ltam_time::Time;

    fn ev(i: u64) -> Event {
        match i % 4 {
            0 => Event::Request {
                time: Time(i),
                subject: SubjectId((i % 97) as u32),
                location: LocationId((i % 13) as u32),
            },
            1 => Event::Enter {
                time: Time(i),
                subject: SubjectId((i % 97) as u32),
                location: LocationId((i % 13) as u32),
            },
            2 => Event::Exit {
                time: Time(i),
                subject: SubjectId((i % 97) as u32),
                location: LocationId((i % 13) as u32),
            },
            _ => Event::Tick { now: Time(i) },
        }
    }

    fn events(n: u64) -> Vec<Event> {
        (0..n).map(ev).collect()
    }

    #[test]
    fn append_reopen_round_trip() {
        let dir = ScratchDir::new("wal-roundtrip");
        let all = events(500);
        {
            let (mut wal, rec) = Wal::open(dir.path(), WalConfig::default()).unwrap();
            assert!(rec.events.is_empty());
            for chunk in all.chunks(37) {
                wal.append_batch(chunk).unwrap();
            }
            assert_eq!(wal.next_seq(), 500);
        }
        let (wal, rec) = Wal::open(dir.path(), WalConfig::default()).unwrap();
        assert_eq!(wal.next_seq(), 500);
        assert_eq!(rec.truncated_bytes, 0);
        let got: Vec<Event> = rec.events.iter().map(|&(_, e)| e).collect();
        assert_eq!(got, all);
        let seqs: Vec<u64> = rec.events.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn segments_rotate_at_the_byte_threshold() {
        let dir = ScratchDir::new("wal-rotate");
        let config = WalConfig {
            segment_bytes: 256,
            fsync: false,
        };
        let (mut wal, _) = Wal::open(dir.path(), config).unwrap();
        for chunk in events(400).chunks(10) {
            wal.append_batch(chunk).unwrap();
        }
        assert!(wal.segment_paths().len() > 2, "{:?}", wal.segment_paths());
        let (_, rec) = Wal::open(dir.path(), config).unwrap();
        assert_eq!(rec.events.len(), 400);
    }

    #[test]
    fn torn_tail_is_truncated_earlier_records_survive() {
        let dir = ScratchDir::new("wal-torn");
        let config = WalConfig {
            segment_bytes: 1 << 20,
            fsync: false,
        };
        {
            let (mut wal, _) = Wal::open(dir.path(), config).unwrap();
            // One event per append, so each is its own record.
            for e in events(100) {
                wal.append_batch(&[e]).unwrap();
            }
        }
        let path = segment_path(dir.path(), 0);
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap(); // tear the last record
        drop(f);
        let (wal, rec) = Wal::open(dir.path(), config).unwrap();
        assert_eq!(rec.events.len(), 99, "only the torn record is lost");
        assert!(rec.truncated_bytes > 0);
        assert_eq!(wal.next_seq(), 99);
        // The log is appendable again and a further reopen is clean.
        let mut wal = wal;
        wal.append_batch(&[ev(99)]).unwrap();
        let (_, rec) = Wal::open(dir.path(), config).unwrap();
        assert_eq!(rec.events.len(), 100);
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn bit_flip_truncates_from_the_flip_never_before() {
        let dir = ScratchDir::new("wal-flip");
        let config = WalConfig {
            segment_bytes: 1 << 20,
            fsync: false,
        };
        let all = events(64);
        {
            let (mut wal, _) = Wal::open(dir.path(), config).unwrap();
            for chunk in all.chunks(4) {
                wal.append_batch(chunk).unwrap();
            }
        }
        let path = segment_path(dir.path(), 0);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let (_, rec) = Wal::open(dir.path(), config).unwrap();
        let got: Vec<Event> = rec.events.iter().map(|&(_, e)| e).collect();
        assert!(got.len() < all.len());
        assert_eq!(got[..], all[..got.len()], "recovered events are a prefix");
    }

    #[test]
    fn a_torn_tail_drops_whole_batches_never_parts_of_one() {
        // Each appended batch is one record, so a crash mid-write can
        // only lose entire batches — the all-or-nothing guarantee group
        // commit relies on.
        let dir = ScratchDir::new("wal-torn-batch");
        let config = WalConfig {
            segment_bytes: 1 << 20,
            fsync: false,
        };
        {
            let (mut wal, _) = Wal::open(dir.path(), config).unwrap();
            for chunk in events(100).chunks(10) {
                wal.append_batch(chunk).unwrap();
            }
        }
        let path = segment_path(dir.path(), 0);
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap(); // tear into the last record
        drop(f);
        let (_, rec) = Wal::open(dir.path(), config).unwrap();
        assert_eq!(rec.events.len(), 90, "the torn batch is lost in full");
        // Tearing deep into the middle record still cuts at a batch edge.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        let len = fs::metadata(&path).unwrap().len();
        f.set_len(len / 2).unwrap();
        drop(f);
        let (_, rec) = Wal::open(dir.path(), config).unwrap();
        assert_eq!(
            rec.events.len() % 10,
            0,
            "recovery cuts at a batch boundary"
        );
    }

    #[test]
    fn append_batches_shares_one_fsync_across_the_group() {
        let dir = ScratchDir::new("wal-group");
        let config = WalConfig {
            segment_bytes: 1 << 20,
            fsync: true,
        };
        let all = events(60);
        {
            let (mut wal, _) = Wal::open(dir.path(), config).unwrap();
            let batches: Vec<&[Event]> = all.chunks(12).collect();
            let first = wal.append_batches(&batches).unwrap();
            assert_eq!(first, 0);
            assert_eq!(wal.next_seq(), 60);
            assert_eq!(wal.fsyncs(), 1, "five batches, one fsync");
            // Empty members are skipped without burning a record.
            let first = wal.append_batches(&[&[], &all[..3], &[]]).unwrap();
            assert_eq!(first, 60);
            assert_eq!(wal.next_seq(), 63);
            assert_eq!(wal.fsyncs(), 2);
            let first = wal.append_batches(&[]).unwrap();
            assert_eq!(first, 63);
            assert_eq!(wal.fsyncs(), 2, "an empty group costs nothing");
        }
        let (_, rec) = Wal::open(dir.path(), config).unwrap();
        assert_eq!(rec.events.len(), 63);
        let got: Vec<Event> = rec.events.iter().take(60).map(|&(_, e)| e).collect();
        assert_eq!(got, all);
        let seqs: Vec<u64> = rec.events.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, (0..63).collect::<Vec<_>>());
    }

    #[test]
    fn situation_records_take_one_seq_and_recover_in_position() {
        let dir = ScratchDir::new("wal-situation");
        let config = WalConfig {
            segment_bytes: 1 << 20,
            fsync: false,
        };
        let lockdown = SituationOp::Declare(ltam_situate::SituationMode::Lockdown);
        let responder = SituationOp::AddResponder(SubjectId(7));
        {
            let (mut wal, _) = Wal::open(dir.path(), config).unwrap();
            wal.append_batch(&events(5)).unwrap(); // seqs 0..5
            let first = wal.append_mixed(&[WalBatch::Situation(&lockdown)]).unwrap();
            assert_eq!(first, 5);
            assert_eq!(wal.next_seq(), 6);
            let mid = events(3);
            wal.append_mixed(&[WalBatch::Events(&mid), WalBatch::Situation(&responder)])
                .unwrap(); // seqs 6..9 then 9
            assert_eq!(wal.next_seq(), 10);
        }
        let (wal, rec) = Wal::open(dir.path(), config).unwrap();
        assert_eq!(wal.next_seq(), 10);
        let seqs: Vec<u64> = rec.events.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 6, 7, 8]);
        assert_eq!(rec.situations, vec![(5, lockdown), (9, responder)]);
    }

    #[test]
    fn compaction_drops_only_covered_segments() {
        let dir = ScratchDir::new("wal-compact");
        let config = WalConfig {
            segment_bytes: 128,
            fsync: false,
        };
        let (mut wal, _) = Wal::open(dir.path(), config).unwrap();
        for chunk in events(200).chunks(8) {
            wal.append_batch(chunk).unwrap();
        }
        wal.rotate().unwrap();
        let before = wal.segment_paths().len();
        let removed = wal.compact(150).unwrap();
        assert!(removed > 0);
        assert_eq!(wal.segment_paths().len(), before - removed);
        // Records >= 150 are still on disk.
        let (_, rec) = Wal::open(dir.path(), config).unwrap();
        assert!(rec.events.iter().any(|&(s, _)| s == 150));
        assert!(rec.events.iter().all(|&(s, _)| s < 150 || s <= 199));
        let last = rec.events.last().unwrap().0;
        assert_eq!(last, 199);
    }
}
