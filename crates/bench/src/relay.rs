//! A tiny TCP relay for the replication test battery.
//!
//! A follower is configured with one fixed `primary_addr` for its
//! whole life, but the tests need to kill the primary and bring it
//! back — and `std`'s listener (no `SO_REUSEADDR`) cannot reliably
//! re-bind the old port while its connections sit in TIME_WAIT. The
//! relay solves both: the follower points at the relay's stable
//! address, and each restarted primary binds a fresh ephemeral port
//! behind it ([`TcpRelay::set_upstream`]). Killing the primary kills
//! every relayed link naturally (the upstream side closes and the
//! pump tears down the downstream side); [`TcpRelay::sever`] cuts the
//! links without touching the primary, for pure-reconnect tests.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// A running relay. The accept loop and per-link pump threads live
/// until [`TcpRelay::stop`] (or process exit); links die whenever
/// either side closes.
pub struct TcpRelay {
    addr: String,
    upstream: Arc<Mutex<String>>,
    links: Arc<Mutex<Vec<TcpStream>>>,
    stopped: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl TcpRelay {
    /// Bind an ephemeral port and start relaying to `upstream`.
    pub fn start(upstream: &str) -> std::io::Result<TcpRelay> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?.to_string();
        let upstream = Arc::new(Mutex::new(upstream.to_string()));
        let links: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let stopped = Arc::new(AtomicBool::new(false));
        let accept = {
            let upstream = Arc::clone(&upstream);
            let links = Arc::clone(&links);
            let stopped = Arc::clone(&stopped);
            thread::Builder::new()
                .name("ltam-relay".into())
                .spawn(move || {
                    while !stopped.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((down, _)) => {
                                let target = upstream.lock().unwrap().clone();
                                link(down, &target, &links);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn relay accept thread")
        };
        Ok(TcpRelay {
            addr,
            upstream,
            links,
            stopped,
            accept: Some(accept),
        })
    }

    /// The stable address followers should connect to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Point future connections at a new primary (existing links are
    /// left alone — kill the old primary or [`TcpRelay::sever`] them).
    pub fn set_upstream(&self, addr: &str) {
        *self.upstream.lock().unwrap() = addr.to_string();
    }

    /// Cut every live link (both directions), as a network partition
    /// between follower and primary would.
    pub fn sever(&self) {
        let mut links = self.links.lock().unwrap();
        for s in links.drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// Sever all links and join the accept loop.
    pub fn stop(mut self) {
        self.stopped.store(true, Ordering::SeqCst);
        self.sever();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Connect `down` to `target` and spawn the two pump threads. A
/// failed upstream connect simply drops the downstream socket — the
/// follower sees a closed connection and retries, exactly as with a
/// dead primary.
fn link(down: TcpStream, target: &str, links: &Arc<Mutex<Vec<TcpStream>>>) {
    let Ok(up) = TcpStream::connect(target) else {
        return;
    };
    let mut registry = links.lock().unwrap();
    registry.retain(|s| {
        // Prune links whose sockets already died, so long tests don't
        // accumulate file descriptors.
        s.take_error().is_ok() && s.peer_addr().is_ok()
    });
    registry.push(down.try_clone().expect("clone relay socket"));
    registry.push(up.try_clone().expect("clone relay socket"));
    drop(registry);
    pump(
        down.try_clone().expect("clone relay socket"),
        up.try_clone().expect("clone relay socket"),
    );
    pump(up, down);
}

/// One copy direction; on EOF or error, both ends are shut down so
/// the opposite pump exits too.
fn pump(mut from: TcpStream, mut to: TcpStream) {
    thread::Builder::new()
        .name("ltam-relay-pump".into())
        .spawn(move || {
            let mut buf = [0u8; 8192];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
        })
        .expect("spawn relay pump thread");
}
