//! Shared fixtures for the LTAM benchmarks and the paper-reproduction
//! harness (`repro` binary).
//!
//! Every table and figure of the paper maps to a subcommand of `repro`
//! (see `EXPERIMENTS.md` at the workspace root); the Criterion benches
//! cover the §6 complexity claim and the ablations called out in
//! `DESIGN.md`.

#![warn(missing_docs)]

pub mod relay;

use ltam_core::db::AuthId;
use ltam_core::inaccessible::AuthsByLocation;
use ltam_core::model::{Authorization, EntryLimit};
use ltam_core::subject::SubjectId;
use ltam_engine::batch::{shard_of, Event};
use ltam_engine::shared::SharedEngine;
use ltam_engine::violation::Violation;
use ltam_graph::examples::{fig4_cycle, Fig4};
use ltam_time::Interval;

/// Alice, the paper's running subject.
pub const ALICE: SubjectId = SubjectId(0);

/// Table 1's authorization set on the Figure 4 graph.
pub fn table1_auths(f: &Fig4) -> AuthsByLocation {
    let auth = |l, entry: (u64, u64), exit: (u64, u64)| {
        Authorization::new(
            Interval::lit(entry.0, entry.1),
            Interval::lit(exit.0, exit.1),
            ALICE,
            l,
            EntryLimit::Finite(1),
        )
        .expect("Table 1 rows satisfy Definition 4")
    };
    let mut m = AuthsByLocation::new();
    m.insert(f.a, vec![auth(f.a, (2, 35), (20, 50))]);
    m.insert(f.b, vec![auth(f.b, (40, 60), (55, 80))]);
    m.insert(f.c, vec![auth(f.c, (38, 45), (70, 90))]);
    m.insert(f.d, vec![auth(f.d, (5, 25), (10, 30))]);
    m
}

/// The Figure 4 instance, ready to run.
pub fn fig4_instance() -> (Fig4, AuthsByLocation) {
    let f = fig4_cycle();
    let auths = table1_auths(&f);
    (f, auths)
}

/// The canonical throughput-comparison workload, parameterized only by
/// scale. The `throughput` Criterion bench and `repro throughput` build
/// their traces through this one constructor so both always measure the
/// same workload shape (grid, tick cadence, behaviour mix, seed) and
/// `BENCH_throughput.json` baselines stay comparable across runs.
pub fn throughput_workload(subjects: usize, events: usize) -> ltam_sim::TraceConfig {
    ltam_sim::TraceConfig {
        subjects,
        events,
        grid: 8,
        tick_every: 256,
        tailgater_fraction: 0.1,
        overstayer_fraction: 0.1,
        seed: 42,
    }
}

/// The canonical *serving* workload: the throughput workload with the
/// interleaved clock ticks removed. A network deployment has no global
/// event order — N clients deliver their subjects' streams
/// concurrently — so a tick's position in the generated trace is
/// meaningless on the wire, and tick-driven overstay detection would
/// fire at interleaving-dependent scan times. The serve drill instead
/// sends one final tick after every stream has drained, which is
/// deterministic (see `repro serve`).
pub fn serve_workload(subjects: usize, events: usize) -> ltam_sim::TraceConfig {
    ltam_sim::TraceConfig {
        tick_every: 0,
        ..throughput_workload(subjects, events)
    }
}

/// Partition a trace by subject across `threads` groups for the
/// global-lock throughput comparison, preserving per-subject order;
/// broadcast events (ticks) go to group 0, so the single engine runs
/// one global overstay scan per tick.
///
/// Shared by the `throughput` Criterion bench and `repro throughput` so
/// both measure exactly the same global-lock workload.
pub fn partition_events(events: &[Event], threads: usize) -> Vec<Vec<Event>> {
    assert!(threads >= 1, "need at least one group");
    let mut groups = vec![Vec::new(); threads];
    for e in events {
        match e.subject() {
            Some(s) => groups[shard_of(s, threads)].push(*e),
            None => groups[0].push(*e),
        }
    }
    groups
}

/// A total order on violations, so two violation multisets compare as
/// sorted vectors (shared by the durability drill and the equivalence
/// tests; detection *order* is legitimately engine-shape-dependent, the
/// multiset is not).
pub fn violation_sort_key(v: &Violation) -> (u8, u64, u32, u32, u64) {
    let kind = match v {
        Violation::UnauthorizedEntry { .. } => 0,
        Violation::ExitOutsideWindow { .. } => 1,
        Violation::Overstay { .. } => 2,
        Violation::InconsistentMovement { .. } => 3,
    };
    let auth = match *v {
        Violation::ExitOutsideWindow {
            auth: AuthId(a), ..
        }
        | Violation::Overstay {
            auth: AuthId(a), ..
        } => a,
        _ => u64::MAX,
    };
    (kind, v.time().get(), v.subject().0, v.location().0, auth)
}

/// Sort a violation list into canonical multiset order (see
/// [`violation_sort_key`]).
pub fn violation_multiset(mut vs: Vec<Violation>) -> Vec<Violation> {
    vs.sort_by_key(violation_sort_key);
    vs
}

/// Total live history records — movement events + audit records +
/// violations, summed across shards. This is exactly the quantity a
/// retention policy bounds: enforcement state (ledger, pending grants,
/// active stays) is population-bounded and excluded. Shared by
/// `repro retention` and the `retention_equivalence` test.
pub fn live_history_records(engine: &ltam_engine::batch::ShardedEngine) -> usize {
    (0..engine.shard_count())
        .map(|s| {
            engine.read_shard(s, |st| {
                st.movements().len() + st.audit().len() + st.violations().len()
            })
        })
        .sum()
}

/// A total order on contact rows, so tier-merged and unpruned contact
/// lists compare as sorted vectors (companion of [`violation_sort_key`];
/// only `(other, start)` is ordered by the query contract, the rest of
/// the key just makes ties deterministic).
pub fn contact_sort_key(c: &ltam_engine::movement::Contact) -> (u32, u32, u64, u64) {
    (
        c.other.0,
        c.location.0,
        c.overlap.start().get(),
        c.overlap
            .end()
            .finite()
            .map(|t| t.get())
            .unwrap_or(u64::MAX),
    )
}

/// Sort a contact list into canonical multiset order (see
/// [`contact_sort_key`]).
pub fn contact_multiset(
    mut cs: Vec<ltam_engine::movement::Contact>,
) -> Vec<ltam_engine::movement::Contact> {
    cs.sort_by_key(contact_sort_key);
    cs
}

/// Replay a slice of events into a [`SharedEngine`] — the per-sensor
/// thread body of the global-lock throughput comparison.
pub fn drive_shared(shared: &SharedEngine, events: &[Event]) {
    for e in events {
        match *e {
            Event::Request {
                time,
                subject,
                location,
            } => {
                shared.request_enter(time, subject, location);
            }
            Event::Enter {
                time,
                subject,
                location,
            } => shared.observe_enter(time, subject, location),
            Event::Exit {
                time,
                subject,
                location,
            } => shared.observe_exit(time, subject, location),
            Event::Tick { now } => shared.tick(now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltam_core::inaccessible::find_inaccessible;
    use ltam_graph::EffectiveGraph;

    #[test]
    fn fixture_reproduces_table2_result() {
        let (f, auths) = fig4_instance();
        let g = EffectiveGraph::build(&f.model);
        let report = find_inaccessible(&g, &auths);
        assert_eq!(report.inaccessible, vec![f.c]);
    }
}
