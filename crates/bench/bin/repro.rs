//! Paper-reproduction harness: regenerates every figure and table of
//! *LTAM: A Location-Temporal Authorization Model* (Yu & Lim, SDM 2004).
//!
//! ```text
//! repro [fig1|fig2|fig3|authz|rules|section5|table2|scaling|baseline|planner|throughput|durability|retention|serve|replicate|auth|situations|metrics|all]
//! ```
//!
//! With no argument (or `all`) every experiment runs in paper order.
//! `EXPERIMENTS.md` records this output against the paper's claims.
//! `throughput`, `durability`, `retention`, `serve` and `replicate`
//! (extensions, not paper artifacts) measure sharded batch ingestion
//! vs the global-lock engine, crash-recovery of the WAL-backed engine,
//! bounded live state under history retention, the network serving
//! tier under concurrent clients, and read-replica staleness with a
//! mid-stream follower kill + re-bootstrap respectively; see each
//! subcommand's `--help`. `metrics` is not an experiment at all: it
//! scrapes a running server's metric registry over the wire
//! (`docs/OPERATIONS.md` §7).

use ltam_bench::{fig4_instance, ALICE};
use ltam_core::decision::Decision;
use ltam_core::inaccessible::{find_inaccessible, find_inaccessible_traced, TraceRow};
use ltam_core::model::{Authorization, EntryLimit};
use ltam_core::rules::{CountExpr, LocationOp, OpTuple, Rule, StaticProfiles, SubjectOp};
use ltam_core::subject::SubjectId;
use ltam_core::{AuthorizationDb, RuleEngine};
use ltam_engine::engine::AccessControlEngine;
use ltam_graph::examples::ntu_campus;
use ltam_graph::{dot, EffectiveGraph, LocationKind, LocationModel, Route};
use ltam_sim::{
    overstay_detection, sars_contact_tracing, scaling_instance, tailgating_differential,
};
use ltam_time::{Interval, TemporalOp, Time};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = args.first().map(String::as_str).unwrap_or("all");
    match arg {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "authz" => authz(),
        "rules" => rules(),
        "section5" => section5(),
        "table2" => table2(),
        "scaling" => scaling(),
        "baseline" => baseline(),
        "planner" => planner(),
        "throughput" => throughput(&args[1..]),
        "durability" => durability(&args[1..]),
        "retention" => retention(&args[1..]),
        "serve" => serve(&args[1..]),
        "replicate" => replicate(&args[1..]),
        "auth" => auth(&args[1..]),
        "situations" => situations(&args[1..]),
        "metrics" => metrics(&args[1..]),
        "all" => {
            for f in [
                fig1, fig2, fig3, authz, rules, section5, table2, scaling, baseline, planner,
            ] {
                f();
                println!();
            }
            throughput(&[]);
            println!();
            durability(&[]);
            println!();
            retention(&[]);
            println!();
            serve(&[]);
            println!();
            replicate(&[]);
            println!();
            auth(&[]);
            println!();
            situations(&[]);
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            eprintln!(
                "usage: repro [fig1|fig2|fig3|authz|rules|section5|table2|scaling|baseline|planner|throughput|durability|retention|serve|replicate|auth|situations|metrics|all]"
            );
            eprintln!("       repro throughput --help   # enforcement-throughput options");
            eprintln!("       repro durability --help   # crash-recovery drill options");
            eprintln!("       repro retention --help    # bounded-live-state drill options");
            eprintln!("       repro serve --help        # network serving drill options");
            eprintln!("       repro auth --help         # wire-auth & quarantine drill options");
            eprintln!("       repro replicate --help    # read-replica drill options");
            eprintln!("       repro situations --help   # situation-enforcement drill options");
            eprintln!("       repro metrics --help      # one-shot wire metrics scrape");
            std::process::exit(2);
        }
    }
}

fn banner(title: &str) {
    println!("==== {title} ====");
}

/// Figure 1: the NTU location layout (hierarchy listing).
fn fig1() {
    banner("Figure 1: NTU location layout");
    let ntu = ntu_campus();
    print_tree(&ntu.model, ntu.model.root(), 0);
}

fn print_tree(model: &LocationModel, at: ltam_graph::LocationId, depth: usize) {
    let indent = "  ".repeat(depth);
    let kind = match model.kind(at) {
        LocationKind::Primitive => "room",
        LocationKind::Composite => "graph",
    };
    let entry = if model.is_entry(at) { "  [entry]" } else { "" };
    println!("{indent}{} ({kind}){entry}", model.name(at));
    for &c in model.children(at) {
        print_tree(model, c, depth + 1);
    }
}

/// Figure 2: the multilevel location graph (DOT + route validations).
fn fig2() {
    banner("Figure 2: multilevel location graph");
    let ntu = ntu_campus();
    println!("{}", dot::to_dot(&ntu.model));
    let g = EffectiveGraph::build(&ntu.model);
    println!(
        "primitives: {}, effective edges: {}, campus entries: {:?}",
        g.len(),
        g.edge_count(),
        g.global_entries()
            .iter()
            .map(|&l| ntu.model.name(l))
            .collect::<Vec<_>>()
    );
    let simple = [ntu.sce_dean, ntu.sce_a, ntu.sce_b, ntu.cais];
    let r = Route::simple(&ntu.model, &simple).expect("paper's simple route holds");
    println!("simple route (paper, §3.1):  {}", r.display(&ntu.model));
    let complex = [
        ntu.eee_dean,
        ntu.eee_a,
        ntu.eee_go,
        ntu.sce_go,
        ntu.sce_a,
        ntu.sce_dean,
    ];
    let r = Route::complex(&g, &complex).expect("paper's complex route holds");
    println!("complex route (paper, §3.1): {}", r.display(&ntu.model));
}

/// Figure 3: the enforcement architecture, demonstrated live.
fn fig3() {
    banner("Figure 3: enforcement architecture (live demo)");
    let ntu = ntu_campus();
    let cais = ntu.cais;
    let mut engine = AccessControlEngine::new(ntu.model);
    let alice = engine.profiles_mut().add_user("Alice", "researcher");
    let bob = engine.profiles_mut().add_user("Bob", "professor");
    engine.profiles_mut().set_supervisor(alice, bob);
    let a1 = engine.add_authorization(
        Authorization::new(
            Interval::lit(5, 40),
            Interval::lit(20, 100),
            alice,
            cais,
            EntryLimit::Finite(1),
        )
        .expect("valid authorization"),
    );
    // Alice can also traverse the corridor from the SCE general office, so
    // CAIS is reachable from a campus entry (cf. §6: defining the CAIS
    // authorization alone would leave it inaccessible).
    for l in [ntu.sce_go, ntu.sce_a, ntu.sce_b] {
        engine.add_authorization(
            Authorization::new(
                Interval::ALL,
                Interval::ALL,
                alice,
                l,
                EntryLimit::Unbounded,
            )
            .expect("valid authorization"),
        );
    }
    println!(
        "components: Authorization DB ({} auths), Location&Movements DB ({} events),",
        engine.db().len(),
        engine.movements().len()
    );
    println!(
        "            User Profile DB ({} users), Access Control Engine, Query Engine",
        engine.profiles().len()
    );
    println!("administrator adds {a1}: ([5, 40], [20, 100], (Alice, CAIS), 1)");
    let d = engine.request_enter(Time(10), alice, cais);
    println!("t=10 access request (10, Alice, CAIS): {d}");
    engine.observe_enter(Time(10), alice, cais);
    println!("t=10 tracking reports Alice entering CAIS (ledger: 1 entry used)");
    for q in [
        "CAN Alice ENTER CAIS AT 12",
        "WHO IN CAIS AT 10",
        "ACCESSIBLE FOR Alice",
    ] {
        println!("query> {q}");
        print!("{}", engine.query(q).expect("query evaluates"));
    }
    engine.observe_exit(Time(15), alice, cais);
    println!("t=15 Alice leaves CAIS (before exit window [20,100] opens)");
    println!("query> VIOLATIONS");
    print!("{}", engine.query("VIOLATIONS").expect("query evaluates"));
}

/// §3.2: the authorization semantics example.
fn authz() {
    banner("§3.2 example: ([5, 40], [20, 100], (Alice, CAIS), 1)");
    let ntu = ntu_campus();
    let a = Authorization::new(
        Interval::lit(5, 40),
        Interval::lit(20, 100),
        ALICE,
        ntu.cais,
        EntryLimit::Finite(1),
    )
    .expect("valid authorization");
    println!("authorization: {a}");
    for (t, what) in [(4, "enter"), (5, "enter"), (40, "enter"), (41, "enter")] {
        println!(
            "  may {what} at t={t}? {}",
            if a.admits_entry_at(Time(t)) {
                "yes"
            } else {
                "no"
            }
        );
    }
    for t in [19, 20, 100, 101] {
        println!(
            "  may exit at t={t}? {}",
            if a.admits_exit_at(Time(t)) {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!("  staying past t=100 raises an overstay warning to the guards");
}

/// §4 Examples 1–3: rule derivations r1, r2, r3.
fn rules() {
    banner("§4 Examples 1-3: authorization rules");
    let ntu = ntu_campus();
    let graph = EffectiveGraph::build(&ntu.model);
    let mut db = AuthorizationDb::new();
    let alice = SubjectId(0);
    let bob = SubjectId(1);
    let a1 = db.insert(
        Authorization::new(
            Interval::lit(5, 20),
            Interval::lit(15, 50),
            alice,
            ntu.cais,
            EntryLimit::Finite(2),
        )
        .expect("valid authorization"),
    );
    let mut profiles = StaticProfiles::default();
    profiles.supervisors.insert(alice, bob);
    let engine = RuleEngine::new();
    println!("a1 = ([5, 20], [15, 50], (Alice, CAIS), 2)   [{a1}]");

    let show = |name: &str, rule: &Rule, engine: &RuleEngine| {
        let derived = engine
            .derive(rule, &db, &profiles, &graph)
            .expect("rule derives");
        println!("{name}:");
        for a in &derived {
            let subj = if a.subject() == alice { "Alice" } else { "Bob" };
            println!(
                "  derived ({}, {}, ({subj}, {}), {})",
                a.entry_window(),
                a.exit_window(),
                ntu.model.name(a.location()),
                a.limit()
            );
        }
    };

    // r1: ⟨7: a1, (WHENEVER, WHENEVER, Supervisor_Of, CAIS, 2)⟩
    let r1 = Rule {
        valid_from: Time(7),
        base: a1,
        ops: OpTuple {
            subject_op: SubjectOp::SupervisorOf,
            count: CountExpr::Const(2),
            ..OpTuple::default()
        },
    };
    show(
        "r1 = <7: a1, (WHENEVER, WHENEVER, Supervisor_Of, CAIS, 2)>",
        &r1,
        &engine,
    );

    // r2: entry INTERSECTION([10, 30]).
    let r2 = Rule {
        valid_from: Time(7),
        base: a1,
        ops: OpTuple {
            entry_op: TemporalOp::Intersection(Interval::lit(10, 30)),
            subject_op: SubjectOp::SupervisorOf,
            count: CountExpr::Const(2),
            ..OpTuple::default()
        },
    };
    show(
        "r2 = <7: a1, (INTERSECTION([10, 30]), WHENEVER, Supervisor_Of, CAIS, 2)>",
        &r2,
        &engine,
    );

    // r3: all_route_from(SCE.GO).
    let r3 = Rule {
        valid_from: Time(7),
        base: a1,
        ops: OpTuple {
            location_op: LocationOp::AllRouteFrom { source: ntu.sce_go },
            count: CountExpr::Const(2),
            ..OpTuple::default()
        },
    };
    show(
        "r3 = <7: a1, (WHENEVER, WHENEVER, -, all_route_from(SCE.GO), 2)>",
        &r3,
        &engine,
    );
}

/// §5: the enforcement walkthrough at t = 10, 15, 16, 20, 30.
fn section5() {
    banner("§5 scenario: A1/A2 decision sequence");
    let ntu = ntu_campus();
    let mut engine = AccessControlEngine::new(ntu.model);
    let alice = engine.profiles_mut().add_user("Alice", "researcher");
    let bob = engine.profiles_mut().add_user("Bob", "professor");
    let a1 = engine.add_authorization(
        Authorization::new(
            Interval::lit(10, 20),
            Interval::lit(10, 50),
            alice,
            ntu.cais,
            EntryLimit::Finite(2),
        )
        .expect("valid"),
    );
    let a2 = engine.add_authorization(
        Authorization::new(
            Interval::lit(5, 35),
            Interval::lit(20, 100),
            bob,
            ntu.chipes,
            EntryLimit::Finite(1),
        )
        .expect("valid"),
    );
    println!("A1 [{a1}] = ([10, 20], [10, 50], (Alice, CAIS), 2)");
    println!("A2 [{a2}] = ([5, 35], [20, 100], (Bob, CHIPES), 1)");
    let step = |engine: &mut AccessControlEngine, t: u64, who: SubjectId, name: &str, l, lname| {
        let d = engine.request_enter(Time(t), who, l);
        println!("t={t}: access request ({t}, {name}, {lname}) -> {d}");
        if let Decision::Granted { .. } = d {
            engine.observe_enter(Time(t), who, l);
        }
    };
    step(&mut engine, 10, alice, "Alice", ntu.cais, "CAIS");
    step(&mut engine, 15, bob, "Bob", ntu.cais, "CAIS");
    step(&mut engine, 16, bob, "Bob", ntu.chipes, "CHIPES");
    engine.observe_exit(Time(20), bob, ntu.chipes);
    println!("t=20: Bob leaves CHIPES (inside exit window [20, 100])");
    step(&mut engine, 30, bob, "Bob", ntu.chipes, "CHIPES");
}

/// Figure 4 + Tables 1–2: the FindInaccessible trace.
fn table2() {
    banner("Figure 4 + Table 1 + Table 2: FindInaccessible(G, Alice)");
    let (f, auths) = fig4_instance();
    println!("Table 1 (authorizations):");
    for (l, v) in &auths {
        for a in v {
            println!(
                "  {}: ({}, {}, (Alice, {}), {})",
                f.model.name(*l),
                a.entry_window(),
                a.exit_window(),
                f.model.name(*l),
                a.limit()
            );
        }
    }
    let g = EffectiveGraph::build(&f.model);
    let (report, trace) = find_inaccessible_traced(&g, &auths);
    println!("\nTable 2 (algorithm trace):");
    print_trace_header(&f.model, &trace.rows[0]);
    for row in &trace.rows {
        print_trace_row(&f.model, row);
    }
    println!(
        "\ninaccessible locations: {:?}",
        report
            .inaccessible
            .iter()
            .map(|&l| f.model.name(l))
            .collect::<Vec<_>>()
    );
    println!("rounds: {}, updates: {}", report.rounds, report.updates);
}

fn print_trace_header(model: &LocationModel, row: &TraceRow) {
    print!("{:<12}", "step");
    for s in &row.states {
        print!(
            "| {:^30} ",
            format!("{} (flag, T^g, T^d)", model.name(s.location))
        );
    }
    println!();
}

fn print_trace_row(model: &LocationModel, row: &TraceRow) {
    let label = row
        .label
        .strip_prefix("Update ")
        .map(|rest| {
            let id: ltam_graph::LocationId = row
                .states
                .iter()
                .map(|s| s.location)
                .find(|l| l.to_string() == rest)
                .unwrap_or(row.states[0].location);
            format!("Update {}", model.name(id))
        })
        .unwrap_or_else(|| row.label.clone());
    print!("{label:<12}");
    for s in &row.states {
        let flag = if s.flag { "T" } else { "F" };
        print!(
            "| {flag} {:>12} {:>12} ",
            s.grant.to_string(),
            s.departure.to_string()
        );
    }
    println!();
}

/// §6: the complexity claim O(N_L² · N_d · N_a), measured.
fn scaling() {
    banner("§6 complexity: Algorithm 1 scaling (wall-clock, single runs)");
    println!(
        "{:<10} {:<6} {:<6} {:>12} {:>10}",
        "N_L", "N_d", "N_a", "updates", "time"
    );
    for &(n, d, a) in &[
        (16usize, 4usize, 2usize),
        (32, 4, 2),
        (64, 4, 2),
        (128, 4, 2),
        (256, 4, 2),
        (512, 4, 2),
        (64, 2, 2),
        (64, 8, 2),
        (64, 16, 2),
        (64, 4, 1),
        (64, 4, 4),
        (64, 4, 8),
    ] {
        let (world, auths) = scaling_instance(n, d, a, 42);
        let start = std::time::Instant::now();
        let report = find_inaccessible(&world.graph, &auths);
        let elapsed = start.elapsed();
        println!(
            "{:<10} {:<6} {:<6} {:>12} {:>10.2?}",
            n,
            world.graph.max_degree(),
            a,
            report.updates,
            elapsed
        );
    }
}

/// §1 claims: LTAM vs the card-reader baseline.
fn baseline() {
    banner("§1 baseline comparison: LTAM vs card-reader systems");
    println!("tailgating (group follows one authorized leader):");
    println!(
        "{:>12} {:>16} {:>20}",
        "tailgaters", "LTAM detected", "card-reader detected"
    );
    for &k in &[1usize, 2, 4, 8] {
        let out = tailgating_differential(k, 80, 42);
        println!(
            "{:>12} {:>16} {:>20}",
            out.tailgaters, out.ltam_detected, out.baseline_detected
        );
    }
    println!("\noverstay detection (subjects ignoring exit windows):");
    for &(o, c) in &[(1usize, 5usize), (3, 5), (5, 5)] {
        let out = overstay_detection(o, c, 42);
        println!(
            "  {} overstayers, {} compliant -> flagged {}, false positives {}",
            out.overstayers, c, out.flagged, out.false_positives
        );
    }
    println!("\nSARS contact tracing over the movements DB:");
    for &staff in &[4usize, 8, 16] {
        let out = sars_contact_tracing(staff, 150, 42);
        println!(
            "  staff {} -> quarantine list {} subjects ({} co-location records)",
            out.staff,
            out.quarantine.len(),
            out.contact_records
        );
    }
}

const THROUGHPUT_HELP: &str = "\
usage: repro throughput [--json] [--events N] [--subjects N] [--shards LIST] [--grant-ttl T]

Measures enforcement throughput (events/sec) of sharded batch ingestion
(ShardedEngine::ingest) against the global-lock path (SharedEngine driven
by one sensor thread per shard) on the same generated multi-shard trace.

options:
  --json          emit machine-readable JSON (the BENCH_throughput.json schema)
  --events N      trace length in events                     [default 20000]
  --subjects N    simulated population size                  [default 256]
  --shards LIST   comma-separated shard counts to sweep      [default 1,2,4,8]
  --grant-ttl T   grant time-to-live in CHRONONS (the paper's smallest,
                  indivisible time unit): an entry at chronon t is honored
                  iff granted_at <= t <= granted_at + T      [default 5]
  --help          this text
";

/// One row of the `repro throughput --json` report (the
/// `BENCH_throughput.json` schema).
#[derive(serde::Serialize)]
struct ThroughputRow {
    shards: usize,
    global_lock_events_per_sec: u64,
    sharded_events_per_sec: u64,
}

/// The `repro throughput --json` envelope.
#[derive(serde::Serialize)]
struct ThroughputReport {
    experiment: &'static str,
    events: usize,
    subjects: usize,
    grant_ttl_chronons: u64,
    results: Vec<ThroughputRow>,
}

/// Exit with a usage error for the throughput subcommand.
fn throughput_usage_error(message: &str) -> ! {
    eprintln!("{message}\n{THROUGHPUT_HELP}");
    std::process::exit(2);
}

/// Extension: sharded batch ingestion vs the global-lock engine.
fn throughput(args: &[String]) {
    use ltam_bench::{drive_shared, partition_events};
    use ltam_engine::EngineConfig;
    use ltam_sim::multi_shard_trace;

    let mut json = false;
    let mut events = 20_000usize;
    let mut subjects = 256usize;
    let mut shard_counts = vec![1usize, 2, 4, 8];
    let mut grant_ttl = ltam_engine::DEFAULT_GRANT_TTL;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| throughput_usage_error(&format!("{name} needs a value")))
                .clone()
        };
        let parsed = |name: &str, raw: String| -> u64 {
            raw.parse()
                .unwrap_or_else(|_| throughput_usage_error(&format!("{name}: bad value {raw:?}")))
        };
        match a.as_str() {
            "--json" => json = true,
            "--events" => events = parsed("--events", value("--events")) as usize,
            "--subjects" => subjects = parsed("--subjects", value("--subjects")) as usize,
            "--shards" => {
                shard_counts = value("--shards")
                    .split(',')
                    .map(|s| parsed("--shards", s.trim().to_string()) as usize)
                    .collect();
            }
            "--grant-ttl" => grant_ttl = parsed("--grant-ttl", value("--grant-ttl")),
            "--help" | "-h" => {
                print!("{THROUGHPUT_HELP}");
                return;
            }
            other => throughput_usage_error(&format!("unknown throughput option {other:?}")),
        }
    }
    if events == 0 {
        throughput_usage_error("--events must be at least 1");
    }
    if subjects == 0 {
        throughput_usage_error("--subjects must be at least 1");
    }
    if shard_counts.is_empty() || shard_counts.contains(&0) {
        throughput_usage_error("--shards needs a comma-separated list of counts >= 1");
    }

    let config = EngineConfig { grant_ttl };
    let trace = multi_shard_trace(&ltam_bench::throughput_workload(subjects, events));
    let n_events = trace.events.len();

    // Best of 3 runs, fresh engines each run.
    let best_of =
        |f: &mut dyn FnMut() -> std::time::Duration| (0..3).map(|_| f()).min().expect("three runs");

    if !json {
        banner("Extension: sharded enforcement throughput (events/sec, best of 3)");
        println!("{n_events} events, {subjects} subjects, grant TTL {grant_ttl} chronons");
        println!(
            "{:<8} {:>18} {:>18} {:>9}",
            "shards", "global-lock ev/s", "sharded ev/s", "speedup"
        );
    }
    let mut rows = Vec::new();
    for &shards in &shard_counts {
        let lock_time = best_of(&mut || {
            let (shared, _rx) = trace.build_shared();
            shared.write(|e| e.set_config(config));
            let groups = partition_events(&trace.events, shards);
            let start = std::time::Instant::now();
            std::thread::scope(|scope| {
                for g in &groups {
                    let shared = shared.clone();
                    scope.spawn(move || drive_shared(&shared, g));
                }
            });
            start.elapsed()
        });
        let sharded_time = best_of(&mut || {
            let (engine, _rx) = trace.build_sharded(shards);
            engine.update_policy(|p| p.set_config(config));
            let start = std::time::Instant::now();
            engine.ingest(&trace.events);
            start.elapsed()
        });
        let lock_eps = n_events as f64 / lock_time.as_secs_f64();
        let sharded_eps = n_events as f64 / sharded_time.as_secs_f64();
        if !json {
            println!(
                "{:<8} {:>18.0} {:>18.0} {:>8.2}x",
                shards,
                lock_eps,
                sharded_eps,
                sharded_eps / lock_eps
            );
        }
        rows.push(ThroughputRow {
            shards,
            global_lock_events_per_sec: lock_eps.round() as u64,
            sharded_events_per_sec: sharded_eps.round() as u64,
        });
    }
    if json {
        let report = ThroughputReport {
            experiment: "throughput",
            events: n_events,
            subjects,
            grant_ttl_chronons: grant_ttl,
            results: rows,
        };
        println!(
            "{}",
            serde_json::to_string(&report).expect("report serializes")
        );
    }
}

const DURABILITY_HELP: &str = "\
usage: repro durability [--json] [--events N] [--subjects N] [--shards N]
                        [--crash-after N] [--segment-kib N]

Crash-recovery drill for the WAL-backed DurableEngine. Generates the
canonical multi-shard trace, ingests it durably (WAL-append + fsync
before enforcement, one snapshot mid-stream), simulates a crash after
--crash-after events by dropping the engine and TEARING the last WAL
record (a partial write), recovers (snapshot + WAL-tail replay,
truncating the torn record), ingests the rest of the trace, and compares
the final violation multiset against an uninterrupted in-memory run.
Exits non-zero if the multisets diverge.

options:
  --json            emit one machine-readable JSON object
  --events N        trace length in events                 [default 20000]
  --subjects N      simulated population size              [default 256]
  --shards N        engine shard count                     [default 4]
  --crash-after N   events ingested before the crash       [default events/2]
  --segment-kib N   WAL segment rotation threshold (KiB)   [default 256]
  --help            this text
";

/// The `repro durability --json` report.
#[derive(serde::Serialize)]
struct DurabilityReport {
    experiment: &'static str,
    events: usize,
    subjects: usize,
    shards: usize,
    crash_after: u64,
    snapshot_seq: u64,
    replayed: usize,
    torn_record_lost: u64,
    truncated_bytes: u64,
    append_events_per_sec: u64,
    recovery_micros: u64,
    violations: usize,
    violations_match: bool,
}

/// Exit with a usage error for the durability subcommand.
fn durability_usage_error(message: &str) -> ! {
    eprintln!("{message}\n{DURABILITY_HELP}");
    std::process::exit(2);
}

/// Extension: crash recovery of the durable (WAL + snapshot) engine.
fn durability(args: &[String]) {
    use ltam_bench::violation_multiset;
    use ltam_sim::multi_shard_trace;
    use ltam_store::{DurableEngine, ScratchDir, StoreConfig};

    let mut json = false;
    let mut events = 20_000usize;
    let mut subjects = 256usize;
    let mut shards = 4usize;
    let mut crash_after: Option<u64> = None;
    let mut segment_kib = 256u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| durability_usage_error(&format!("{name} needs a value")))
                .clone()
        };
        let parsed = |name: &str, raw: String| -> u64 {
            raw.parse()
                .unwrap_or_else(|_| durability_usage_error(&format!("{name}: bad value {raw:?}")))
        };
        match a.as_str() {
            "--json" => json = true,
            "--events" => events = parsed("--events", value("--events")) as usize,
            "--subjects" => subjects = parsed("--subjects", value("--subjects")) as usize,
            "--shards" => shards = parsed("--shards", value("--shards")) as usize,
            "--crash-after" => crash_after = Some(parsed("--crash-after", value("--crash-after"))),
            "--segment-kib" => segment_kib = parsed("--segment-kib", value("--segment-kib")),
            "--help" | "-h" => {
                print!("{DURABILITY_HELP}");
                return;
            }
            other => durability_usage_error(&format!("unknown durability option {other:?}")),
        }
    }
    if events < 2 {
        durability_usage_error("--events must be at least 2");
    }
    if subjects == 0 || shards == 0 || segment_kib == 0 {
        durability_usage_error("--subjects, --shards and --segment-kib must be at least 1");
    }

    let trace = multi_shard_trace(&ltam_bench::throughput_workload(subjects, events));
    let n_events = trace.events.len();
    let crash_after = crash_after
        .unwrap_or(n_events as u64 / 2)
        .min(n_events as u64);

    // The uninterrupted reference: the whole trace through one engine.
    let mut reference = trace.build_engine();
    for e in &trace.events {
        ltam_engine::batch::apply_to_engine(&mut reference, e);
    }
    let expected = violation_multiset(reference.violations().to_vec());

    let dir = ScratchDir::new("repro-durability");
    let config = StoreConfig {
        segment_bytes: segment_kib * 1024,
        snapshot_every: 0, // the drill controls its own snapshot point
        fsync: true,
        retention: None,
    };

    // Phase 1: durable ingest up to the crash point, snapshotting midway
    // so recovery exercises snapshot + WAL-tail replay, not just replay.
    let (mut durable, _alerts) =
        DurableEngine::create(dir.path(), trace.build_policy_core(), shards, config)
            .expect("create store");
    let append_start = std::time::Instant::now();
    let mut snapshotted = false;
    for chunk in trace.events[..crash_after as usize].chunks(512) {
        durable.ingest(chunk).expect("durable ingest");
        if !snapshotted && durable.applied() >= crash_after / 2 {
            durable.snapshot().expect("mid-stream snapshot");
            snapshotted = true;
        }
    }
    let append_secs = append_start.elapsed().as_secs_f64();
    let append_eps = if append_secs > 0.0 {
        (crash_after as f64 / append_secs).round() as u64
    } else {
        0
    };
    drop(durable); // the crash

    // Tear the last WAL record: chop 3 bytes off the newest segment, as a
    // power cut mid-write would.
    let wal_segments = ltam_store::Wal::segment_files(dir.path()).expect("list store dir");
    let last = wal_segments.last().expect("at least one segment");
    let len = std::fs::metadata(last).expect("segment metadata").len();
    let torn = crash_after > 0 && len > 3;
    if torn {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(last)
            .expect("open segment");
        f.set_len(len - 3).expect("tear segment");
    }

    // Phase 2: recover, then finish the trace. The torn record's event is
    // no longer in the log, so it is re-ingested with the remainder.
    let recovery_start = std::time::Instant::now();
    let (mut durable, _alerts, report) =
        DurableEngine::open(dir.path(), config).expect("recover store");
    let recovery_micros = recovery_start.elapsed().as_micros() as u64;
    let resumed_at = durable.applied() as usize;
    assert!(
        resumed_at as u64 >= report.snapshot_seq,
        "recovery resumed before its own snapshot"
    );
    durable
        .ingest(&trace.events[resumed_at..])
        .expect("post-recovery ingest");
    let got = violation_multiset(durable.engine().violations());
    let violations_match = got == expected;

    if json {
        let report = DurabilityReport {
            experiment: "durability",
            events: n_events,
            subjects,
            shards,
            crash_after,
            snapshot_seq: report.snapshot_seq,
            replayed: report.replayed,
            torn_record_lost: crash_after - resumed_at as u64,
            truncated_bytes: report.truncated_bytes,
            append_events_per_sec: append_eps,
            recovery_micros,
            violations: got.len(),
            violations_match,
        };
        println!(
            "{}",
            serde_json::to_string(&report).expect("report serializes")
        );
    } else {
        banner("Extension: durable enforcement — crash recovery drill");
        println!("{n_events} events, {subjects} subjects, {shards} shards, crash after {crash_after} events");
        println!(
            "append (WAL fsync-per-batch + enforcement): {append_eps} events/sec over {crash_after} events"
        );
        println!(
            "crash: last WAL record torn ({} event(s) lost from the log, re-ingested after recovery)",
            crash_after - resumed_at as u64
        );
        println!(
            "recovery: snapshot @ {} + {} replayed events, {} bytes truncated, {:.2} ms",
            report.snapshot_seq,
            report.replayed,
            report.truncated_bytes,
            recovery_micros as f64 / 1000.0
        );
        println!(
            "violation multiset vs uninterrupted run: {} ({} violations)",
            if violations_match {
                "MATCH"
            } else {
                "MISMATCH"
            },
            got.len()
        );
    }
    if !violations_match {
        eprintln!("durability drill FAILED: recovered violations diverge from the reference run");
        std::process::exit(1);
    }
}

/// Extension: temporal route planning on the Figure 4 instance
/// (cross-validates Algorithm 1 with an independent algorithm).
fn planner() {
    use ltam_core::planner::earliest_visit;
    banner("Extension: earliest authorized visits (Figure 4 instance)");
    let (f, auths) = fig4_instance();
    let g = EffectiveGraph::build(&f.model);
    let report = find_inaccessible(&g, &auths);
    println!(
        "{:<10} {:>18} {:>14}",
        "location", "earliest entry", "Algorithm 1"
    );
    for l in g.locations() {
        let plan = earliest_visit(&g, &auths, l, Time(0));
        let earliest = plan
            .as_ref()
            .map(|it| format!("t={}", it.arrival))
            .unwrap_or_else(|| "unreachable".to_string());
        let alg1 = if report.is_inaccessible(l) {
            "inaccessible"
        } else {
            "accessible"
        };
        println!("{:<10} {:>18} {:>14}", f.model.name(l), earliest, alg1);
        if let Some(it) = plan {
            let hops: Vec<String> = it
                .steps
                .iter()
                .map(|s| format!("{}@{}", f.model.name(s.location), s.enter_at))
                .collect();
            println!("{:<10} via {}", "", hops.join(" -> "));
        }
    }
}

const RETENTION_HELP: &str = "\
usage: repro retention [--json] [--events N] [--subjects N] [--shards N]
                       [--horizon H] [--checkpoints K]

Bounded-live-state drill for the retention/tiering subsystem. Ingests
the canonical multi-shard trace through a DurableEngine whose retention
policy keeps the last H chronons live (older history is archived, then
pruned), sampling live history size and snapshot size at K checkpoints.
Afterwards, historical queries spanning the WHOLE trace — whereabouts,
contact tracing (the paper's SARS scenario, across the horizon
boundary), and the violation report — run through the tier-aware API
and every answer is compared against an unpruned volatile reference
run. Exits non-zero if live state is not bounded at steady state or any
answer diverges.

options:
  --json          emit one machine-readable JSON object
  --events N      trace length in events                 [default 20000]
  --subjects N    simulated population size              [default 256]
  --shards N      engine shard count                     [default 4]
  --horizon H     retention horizon in chronons          [default 100]
  --checkpoints K live-size samples across the trace     [default 8]
  --help          this text
";

/// One live-size sample of the `repro retention` drill.
#[derive(serde::Serialize)]
struct RetentionSample {
    ingested: usize,
    live_records: usize,
    snapshot_bytes: u64,
}

/// The `repro retention --json` report.
#[derive(serde::Serialize)]
struct RetentionReport {
    experiment: &'static str,
    events: usize,
    subjects: usize,
    shards: usize,
    horizon_chronons: u64,
    trace_span_chronons: u64,
    watermark: u64,
    total_records: usize,
    live_final_records: usize,
    live_peak_records: usize,
    snapshot_bytes_final: u64,
    state_bytes_final: u64,
    state_bytes_unpruned: u64,
    archive_bytes: u64,
    live_bounded: bool,
    queries_match: bool,
    samples: Vec<RetentionSample>,
}

/// Exit with a usage error for the retention subcommand.
fn retention_usage_error(message: &str) -> ! {
    eprintln!("{message}\n{RETENTION_HELP}");
    std::process::exit(2);
}

/// Size of the newest snapshot file in a store directory.
fn newest_snapshot_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .ok()
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
        .max_by_key(|e| e.file_name())
        .and_then(|e| e.metadata().ok())
        .map(|m| m.len())
        .unwrap_or(0)
}

/// Extension: bounded live state under history retention + tiering.
fn retention(args: &[String]) {
    use ltam_bench::{contact_multiset, live_history_records, violation_multiset};
    use ltam_core::retention::RetentionPolicy;
    use ltam_sim::multi_shard_trace;
    use ltam_store::{DurableEngine, ScratchDir, StoreConfig};

    let mut json = false;
    let mut events = 20_000usize;
    let mut subjects = 256usize;
    let mut shards = 4usize;
    let mut horizon = 100u64;
    let mut checkpoints = 8usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| retention_usage_error(&format!("{name} needs a value")))
                .clone()
        };
        let parsed = |name: &str, raw: String| -> u64 {
            raw.parse()
                .unwrap_or_else(|_| retention_usage_error(&format!("{name}: bad value {raw:?}")))
        };
        match a.as_str() {
            "--json" => json = true,
            "--events" => events = parsed("--events", value("--events")) as usize,
            "--subjects" => subjects = parsed("--subjects", value("--subjects")) as usize,
            "--shards" => shards = parsed("--shards", value("--shards")) as usize,
            "--horizon" => horizon = parsed("--horizon", value("--horizon")),
            "--checkpoints" => {
                checkpoints = parsed("--checkpoints", value("--checkpoints")) as usize
            }
            "--help" | "-h" => {
                print!("{RETENTION_HELP}");
                return;
            }
            other => retention_usage_error(&format!("unknown retention option {other:?}")),
        }
    }
    if events == 0 || subjects == 0 || shards == 0 || checkpoints == 0 {
        retention_usage_error(
            "--events, --subjects, --shards and --checkpoints must be at least 1",
        );
    }
    if horizon == 0 {
        retention_usage_error("--horizon must be at least 1 chronon");
    }

    let trace = multi_shard_trace(&ltam_bench::throughput_workload(subjects, events));
    let n_events = trace.events.len();
    let span = trace.max_time().get();

    // The unpruned reference: the whole trace through a single volatile
    // engine (the proven-equivalent semantics).
    let mut reference = trace.build_engine();
    for e in &trace.events {
        ltam_engine::batch::apply_to_engine(&mut reference, e);
    }
    let total_records =
        reference.movements().len() + reference.audit().len() + reference.violations().len();

    // What the UNPRUNED per-shard state weighs in a snapshot (a
    // volatile sharded run serialized through the same image schema).
    // The policy image is deliberately excluded from the bound: it is
    // invariant under retention and, on authorization-heavy workloads,
    // dominates whole-file snapshot size.
    let state_bytes_unpruned = {
        let (unpruned, _rx) = trace.build_sharded(shards);
        unpruned.ingest(&trace.events);
        serde_json::to_string(&unpruned.export_images())
            .expect("images serialize")
            .len() as u64
    };

    let dir = ScratchDir::new("repro-retention");
    let policy = RetentionPolicy::keep_last(horizon);
    let config = StoreConfig {
        segment_bytes: 256 * 1024,
        snapshot_every: 0, // the drill snapshots at its own checkpoints
        fsync: true,
        retention: Some(policy),
    };
    let (mut durable, _alerts) =
        DurableEngine::create(dir.path(), trace.build_policy_core(), shards, config)
            .expect("create store");

    let chunk = n_events.div_ceil(checkpoints).max(1);
    let mut samples = Vec::new();
    let mut live_peak = 0usize;
    let mut ingested = 0usize;
    for batch in trace.events.chunks(chunk) {
        durable.ingest(batch).expect("durable ingest");
        ingested += batch.len();
        durable.snapshot().expect("checkpoint snapshot");
        let live = live_history_records(durable.engine());
        live_peak = live_peak.max(live);
        samples.push(RetentionSample {
            ingested,
            live_records: live,
            snapshot_bytes: newest_snapshot_bytes(dir.path()),
        });
    }
    if let Some(e) = durable.take_retention_error() {
        eprintln!("retention drill FAILED: maintenance run error: {e}");
        std::process::exit(1);
    }
    let watermark = durable.retention_watermark().get();
    let live_final = samples.last().map(|s| s.live_records).unwrap_or(0);
    let snapshot_bytes_final = samples.last().map(|s| s.snapshot_bytes).unwrap_or(0);
    let state_bytes_final = serde_json::to_string(&durable.engine().export_images())
        .expect("images serialize")
        .len() as u64;
    let archive_bytes: u64 = std::fs::read_dir(dir.path())
        .ok()
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".arch"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();

    // Bounded: at steady state the live tier holds a horizon's worth of
    // history, not the whole trace. (The horizon is a fraction of the
    // trace span, so half the total is a generous ceiling.)
    let live_bounded = watermark > 0
        && live_final * 2 <= total_records
        && state_bytes_final * 2 <= state_bytes_unpruned;

    // Query equivalence across the horizon boundary, vs the unpruned run.
    let all = ltam_time::Interval::ALL;
    let mut queries_match = true;
    let mut mismatch = String::new();
    let expected_violations = violation_multiset(reference.violations().to_vec());
    let got_violations =
        violation_multiset(durable.violations_in(all).expect("tier-aware violations"));
    if got_violations != expected_violations {
        queries_match = false;
        mismatch = format!(
            "violation multiset diverged ({} vs {})",
            got_violations.len(),
            expected_violations.len()
        );
    }
    let sample_subjects: Vec<ltam_core::subject::SubjectId> = (0..subjects.min(16))
        .map(|i| ltam_core::subject::SubjectId(i as u32))
        .collect();
    let sample_times: Vec<ltam_time::Time> =
        (0..=8).map(|i| ltam_time::Time(span * i / 8)).collect();
    for &s in &sample_subjects {
        for &t in &sample_times {
            let got = durable.whereabouts(s, t).expect("tier-aware whereabouts");
            let want = reference.movements().whereabouts(s, t);
            if got != want {
                queries_match = false;
                mismatch = format!("whereabouts({s}, {t}): {got:?} != {want:?}");
            }
        }
        let got = contact_multiset(durable.contacts(s, all).expect("tier-aware contacts"));
        let want = contact_multiset(reference.movements().contacts(s, all));
        if got != want {
            queries_match = false;
            mismatch = format!("contacts({s}): {} rows != {} rows", got.len(), want.len());
        }
    }

    if json {
        let report = RetentionReport {
            experiment: "retention",
            events: n_events,
            subjects,
            shards,
            horizon_chronons: horizon,
            trace_span_chronons: span,
            watermark,
            total_records,
            live_final_records: live_final,
            live_peak_records: live_peak,
            snapshot_bytes_final,
            state_bytes_final,
            state_bytes_unpruned,
            archive_bytes,
            live_bounded,
            queries_match,
            samples,
        };
        println!(
            "{}",
            serde_json::to_string(&report).expect("report serializes")
        );
    } else {
        banner("Extension: history retention — bounded live state + archive tier");
        println!(
            "{n_events} events over {span} chronons, {subjects} subjects, {shards} shards, horizon {horizon} chronons"
        );
        println!(
            "{:>10} {:>14} {:>16}",
            "ingested", "live records", "snapshot bytes"
        );
        for s in &samples {
            println!(
                "{:>10} {:>14} {:>16}",
                s.ingested, s.live_records, s.snapshot_bytes
            );
        }
        println!(
            "watermark: t={watermark}; live {live_final}/{total_records} records at end (peak {live_peak}); archive {archive_bytes} bytes"
        );
        println!(
            "shard-state image: {state_bytes_final} bytes pruned vs {state_bytes_unpruned} bytes \
             unpruned (full snapshot file: {snapshot_bytes_final} bytes incl. the invariant policy)"
        );
        println!(
            "live state bounded: {}; whole-trace queries vs unpruned run: {}",
            if live_bounded { "YES" } else { "NO" },
            if queries_match { "MATCH" } else { "MISMATCH" }
        );
    }
    let mut failed = false;
    if !live_bounded {
        eprintln!("retention drill FAILED: live state/snapshot not bounded (watermark {watermark}, live {live_final}/{total_records}, state bytes {state_bytes_final}/{state_bytes_unpruned})");
        failed = true;
    }
    if !queries_match {
        eprintln!(
            "retention drill FAILED: tier-merged answers diverge from the unpruned run: {mismatch}"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

const SERVE_HELP: &str = "\
usage: repro serve [--json] [--events N] [--subjects N] [--shards N]
                   [--clients N] [--batch N] [--pipeline N]
                   [--poll-threads N] [--no-metrics]

Closed-loop drill for the ltam-serve network tier. Generates the
canonical multi-shard trace WITHOUT interleaved clock ticks (a network
deployment has no global event order, so tick-driven overstay scans
would fire at interleaving-dependent times; one final tick after every
stream drains restores overstay coverage deterministically), starts a
TCP server over a fresh durable store on a loopback ephemeral port,
partitions the trace into per-subject client streams, and replays them
from N concurrent client threads, up to --pipeline requests in flight
per connection (the server's group commit coalesces concurrent and
pipelined batches into shared fsyncs). Reports request/event
throughput, p50/p90/p99 round-trip latency and the fsync rate, then
verifies OVER THE WIRE that the served violation multiset and sampled
whereabouts equal an in-process run of the same trace. The drill also
scrapes the server's metric registry through the KIND_METRICS frame
and checks the exposition: grammar-valid, duplicate-free, core series
present, and the scraped WAL-fsync counter exactly equal to the
engine's own count. Exits non-zero on any client-side error, any
server-counted protocol error, any divergence, or a bad scrape.

options:
  --json           emit one machine-readable JSON object
  --events N       trace length in events                 [default 20000]
  --subjects N     simulated population size              [default 256]
  --shards N       engine shard count                     [default 4]
  --clients N      concurrent client connections          [default 4]
  --batch N        events per ingest request              [default 64]
  --pipeline N     ingest requests in flight per client   [default 4]
  --poll-threads N server event-loop threads              [default 1]
  --no-metrics     disable timing spans (the overhead A/B knob;
                   counters still record, histogram checks are skipped)
  --help           this text
";

/// The `repro serve --json` report (the `BENCH_serve.json` schema).
#[derive(serde::Serialize)]
struct ServeReport {
    experiment: &'static str,
    events: usize,
    subjects: usize,
    shards: usize,
    clients: usize,
    batch: usize,
    pipeline: usize,
    poll_threads: usize,
    requests: u64,
    requests_per_sec: u64,
    events_per_sec: u64,
    latency_p50_us: u64,
    latency_p90_us: u64,
    latency_p99_us: u64,
    wal_fsyncs: u64,
    fsyncs_per_sec: u64,
    client_errors: u64,
    server_protocol_errors: u64,
    violations: usize,
    violations_match: bool,
    whereabouts_match: bool,
    metrics: ServeMetricsBlock,
}

/// The registry-sourced `metrics` block of [`ServeReport`]. Times are
/// raw histogram units (microseconds); `-1` marks a value whose series
/// never recorded (e.g. under `--no-metrics`).
#[derive(serde::Serialize)]
struct ServeMetricsBlock {
    scrape_valid: bool,
    fsync_count_exact: bool,
    series: usize,
    fsync_p50_us: i64,
    fsync_p99_us: i64,
    mean_group_events: f64,
    backpressure_activations: u64,
}

/// Exit with a usage error for the serve subcommand.
fn serve_usage_error(message: &str) -> ! {
    eprintln!("{message}\n{SERVE_HELP}");
    std::process::exit(2);
}

/// Extension: the network serving tier under concurrent clients.
fn serve(args: &[String]) {
    use ltam_bench::violation_multiset;
    use ltam_engine::batch::Event;
    use ltam_serve::{LoadConfig, LtamClient, Server, ServerConfig};
    use ltam_sim::multi_shard_trace;
    use ltam_store::{ScratchDir, StoreConfig};
    use ltam_time::Time;

    let mut json = false;
    let mut events = 20_000usize;
    let mut subjects = 256usize;
    let mut shards = 4usize;
    let mut clients = 4usize;
    // Default window = pipeline * batch = 256 events per client: deep
    // enough that group commit amortizes fsyncs ~10x, small enough
    // that a whole window round-trips in low single-digit
    // milliseconds. Doubling batch or pipeline roughly doubles
    // throughput again at the cost of tail latency — the knobs to turn
    // when raw events/s is the goal.
    let mut batch = 64usize;
    let mut pipeline = 4usize;
    let mut poll_threads = 1usize;
    let mut no_metrics = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| serve_usage_error(&format!("{name} needs a value")))
                .clone()
        };
        let parsed = |name: &str, raw: String| -> u64 {
            raw.parse()
                .unwrap_or_else(|_| serve_usage_error(&format!("{name}: bad value {raw:?}")))
        };
        match a.as_str() {
            "--json" => json = true,
            "--no-metrics" => no_metrics = true,
            "--events" => events = parsed("--events", value("--events")) as usize,
            "--subjects" => subjects = parsed("--subjects", value("--subjects")) as usize,
            "--shards" => shards = parsed("--shards", value("--shards")) as usize,
            "--clients" => clients = parsed("--clients", value("--clients")) as usize,
            "--batch" => batch = parsed("--batch", value("--batch")) as usize,
            "--pipeline" => pipeline = parsed("--pipeline", value("--pipeline")) as usize,
            "--poll-threads" => {
                poll_threads = parsed("--poll-threads", value("--poll-threads")) as usize
            }
            "--help" | "-h" => {
                print!("{SERVE_HELP}");
                return;
            }
            other => serve_usage_error(&format!("unknown serve option {other:?}")),
        }
    }
    if events == 0
        || subjects == 0
        || shards == 0
        || clients == 0
        || batch == 0
        || pipeline == 0
        || poll_threads == 0
    {
        serve_usage_error(
            "--events, --subjects, --shards, --clients, --batch, --pipeline and --poll-threads must be >= 1",
        );
    }

    let trace = multi_shard_trace(&ltam_bench::serve_workload(subjects, events));
    let n_events = trace.events.len();
    let span = trace.max_time();
    // One deterministic overstay scan once every stream has drained
    // (see SERVE_HELP); both runs ingest it as their final event.
    let final_tick = Event::Tick {
        now: Time(span.get() + 1),
    };

    // The in-process reference: the same trace + final tick through the
    // proven-equivalent single-threaded engine.
    let mut reference = trace.build_engine();
    for e in trace.events.iter().chain(std::iter::once(&final_tick)) {
        ltam_engine::batch::apply_to_engine(&mut reference, e);
    }
    let expected = violation_multiset(reference.violations().to_vec());

    let dir = ScratchDir::new("repro-serve");
    let store_config = StoreConfig {
        // Large segments on purpose: at several hundred thousand
        // events/s the WAL grows ~1 MiB per drill, and 256 KiB segments
        // would roll over mid-drill — each rollover is a file create +
        // directory fsync that serializes with the group-commit fsyncs
        // on the filesystem journal and shows up directly in tail
        // latency. Snapshot rotation still bounds segment count.
        segment_bytes: 8 * 1024 * 1024,
        snapshot_every: (n_events as u64 / 4).max(1), // exercised mid-drill
        fsync: true,
        retention: None,
    };
    // The overhead A/B knob: `--no-metrics` turns off timing spans
    // process-wide before the drill. Counters still record (they are a
    // handful of relaxed atomic adds), so the fsync-exactness check
    // below stays meaningful either way.
    ltam_obs::set_disabled(no_metrics);
    // The registry is process-global and `repro all` runs WAL-touching
    // drills earlier in this same process, so exactness is a DELTA
    // against the counter's value before this store exists.
    let fsyncs_base =
        ltam_obs::counter_value(ltam_obs::registry(), "store_wal_fsyncs_total", &[]).unwrap_or(0);
    let (engine, _alerts) = ltam_store::DurableEngine::create(
        dir.path(),
        trace.build_policy_core(),
        shards,
        store_config,
    )
    .expect("create store");
    let server_config = ServerConfig {
        max_connections: clients + 8,
        poll_threads,
        ..ServerConfig::default()
    };
    let server = Server::start(engine, "127.0.0.1:0", server_config).expect("bind loopback");
    let addr = server.local_addr().to_string();

    // Drive the partitioned streams from N concurrent closed-loop clients.
    let streams = trace.client_streams(clients);
    let load = ltam_serve::drive(
        &addr,
        &streams,
        LoadConfig {
            batch,
            status_every: 16,
            pipeline,
        },
    );

    // Control connection: final tick, then verification over the wire.
    let mut control = LtamClient::connect(&addr).expect("control client");
    control.ingest(&[final_tick]).expect("final tick");
    let got = violation_multiset(
        control
            .violations_in(ltam_time::Interval::ALL)
            .expect("served violation report"),
    );
    let violations_match = got == expected;
    let mut whereabouts_match = true;
    for i in 0..subjects.min(16) {
        let s = ltam_core::subject::SubjectId(i as u32);
        for t in [Time(span.get() / 3), Time(span.get() / 2), span] {
            let served = control.whereabouts(s, t).expect("served whereabouts");
            if served != reference.movements().whereabouts(s, t) {
                whereabouts_match = false;
            }
        }
    }
    let status = control.status().expect("served status");
    let drained = status.events_ingested == n_events as u64 + 1;

    // Scrape the registry over the wire (KIND_METRICS) while every
    // ingested batch is already durable: the fsync counter's delta
    // since before this store existed must equal the status report's
    // figure EXACTLY — the check that the instrumentation sits on the
    // real fsync path rather than alongside it.
    let scrape = control.metrics().expect("metrics scrape");
    let expo = match ltam_obs::validate(&scrape) {
        Ok(expo) => Some(expo),
        Err(e) => {
            eprintln!("metrics scrape rejected by validator: {e}");
            None
        }
    };
    let scrape_valid = expo.is_some();
    let scraped_fsyncs = expo
        .as_ref()
        .and_then(|e| e.value("store_wal_fsyncs_total", &[]))
        .unwrap_or(-1.0);
    let fsync_count_exact = scraped_fsyncs >= 0.0
        && (scraped_fsyncs as u64).saturating_sub(fsyncs_base) == status.wal_fsyncs;
    // Core-series liveness: a drill that ingested tens of thousands of
    // events must have left tracks in each tier's headline series.
    let mut missing_series: Vec<&str> = Vec::new();
    if let Some(expo) = &expo {
        for name in [
            "store_wal_records_total",
            "store_group_commits_total",
            "engine_decisions_total",
            "serve_connections_total",
        ] {
            if expo.family_sum(name) <= 0.0 {
                missing_series.push(name);
            }
        }
        if !no_metrics {
            for name in ["store_fsync_seconds", "serve_request_seconds"] {
                if expo.family_sum(&format!("{name}_count")) <= 0.0 {
                    missing_series.push(name);
                }
            }
        }
    }
    let registry = ltam_obs::registry();
    let fsync_hist = ltam_obs::histogram_snapshot(registry, "store_fsync_seconds", &[]);
    let group_hist = ltam_obs::histogram_snapshot(registry, "store_group_events", &[]);
    let metrics_block = ServeMetricsBlock {
        scrape_valid,
        fsync_count_exact,
        series: expo.as_ref().map_or(0, |e| e.samples.len()),
        fsync_p50_us: fsync_hist
            .as_ref()
            .filter(|h| h.count > 0)
            .map_or(-1, |h| h.percentile(50.0) as i64),
        fsync_p99_us: fsync_hist
            .as_ref()
            .filter(|h| h.count > 0)
            .map_or(-1, |h| h.percentile(99.0) as i64),
        mean_group_events: group_hist
            .as_ref()
            .filter(|h| h.count > 0)
            .map_or(-1.0, |h| h.mean()),
        backpressure_activations: ltam_obs::counter_family_sum(
            registry,
            "serve_backpressure_total",
        ),
    };

    // Stop without the parting snapshot: the store is scratch (deleted
    // on exit), so imaging + durably writing megabytes at teardown only
    // adds disk churn between back-to-back drills. The WAL alone makes
    // the store re-servable — tests/serve_recovery.rs proves exactly
    // that crash-shaped recovery, and graceful-shutdown snapshots are
    // covered by the server's own tests.
    let engine = server.abort().expect("server stop");
    let applied = engine.applied();
    drop(engine);

    let p50 = load.latency_percentile_us(50.0);
    let p90 = load.latency_percentile_us(90.0);
    let p99 = load.latency_percentile_us(99.0);
    let fsyncs_per_sec = if load.elapsed.as_secs_f64() > 0.0 {
        (status.wal_fsyncs as f64 / load.elapsed.as_secs_f64()).round() as u64
    } else {
        0
    };
    if json {
        let report = ServeReport {
            experiment: "serve",
            events: n_events,
            subjects,
            shards,
            clients,
            batch,
            pipeline,
            poll_threads,
            requests: load.requests,
            requests_per_sec: load.requests_per_sec().round() as u64,
            events_per_sec: load.events_per_sec().round() as u64,
            latency_p50_us: p50,
            latency_p90_us: p90,
            latency_p99_us: p99,
            wal_fsyncs: status.wal_fsyncs,
            fsyncs_per_sec,
            client_errors: load.errors,
            server_protocol_errors: status.protocol_errors,
            violations: got.len(),
            violations_match,
            whereabouts_match,
            metrics: metrics_block,
        };
        println!(
            "{}",
            serde_json::to_string(&report).expect("report serializes")
        );
    } else {
        banner("Extension: network serving tier — closed-loop drill");
        println!(
            "{n_events} events, {subjects} subjects, {shards} shards, {clients} clients, batch {batch}, pipeline {pipeline}, {poll_threads} poll thread(s)"
        );
        println!(
            "load: {} requests at {:.0} req/s ({:.0} events/s); latency p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms",
            load.requests,
            load.requests_per_sec(),
            load.events_per_sec(),
            p50 as f64 / 1000.0,
            p90 as f64 / 1000.0,
            p99 as f64 / 1000.0
        );
        println!(
            "group commit: {} WAL fsyncs ({} fsync/s) for {} ingest batches",
            status.wal_fsyncs, fsyncs_per_sec, load.requests
        );
        println!(
            "errors: {} client, {} server-counted protocol; WAL position {} (snapshot @ {})",
            load.errors, status.protocol_errors, applied, status.snapshot_seq
        );
        println!(
            "served violation multiset vs in-process run: {} ({} violations); whereabouts sample: {}",
            if violations_match { "MATCH" } else { "MISMATCH" },
            got.len(),
            if whereabouts_match { "MATCH" } else { "MISMATCH" }
        );
        println!(
            "metrics: scrape {} ({} series); fsync count {}; fsync p50 {} us, p99 {} us; mean group {:.1} events; backpressure {}",
            if metrics_block.scrape_valid { "VALID" } else { "INVALID" },
            metrics_block.series,
            if metrics_block.fsync_count_exact { "EXACT" } else { "MISMATCH" },
            metrics_block.fsync_p50_us,
            metrics_block.fsync_p99_us,
            metrics_block.mean_group_events,
            metrics_block.backpressure_activations
        );
    }
    let mut failed = false;
    if load.errors > 0 || status.protocol_errors > 0 {
        eprintln!(
            "serve drill FAILED: {} client errors, {} protocol errors",
            load.errors, status.protocol_errors
        );
        failed = true;
    }
    if !drained {
        eprintln!(
            "serve drill FAILED: server ingested {} of {} events",
            status.events_ingested,
            n_events + 1
        );
        failed = true;
    }
    if !violations_match || !whereabouts_match {
        eprintln!("serve drill FAILED: served answers diverge from the in-process run");
        failed = true;
    }
    if !scrape_valid {
        eprintln!("serve drill FAILED: wire-scraped exposition is malformed");
        failed = true;
    }
    if !fsync_count_exact {
        eprintln!(
            "serve drill FAILED: scraped store_wal_fsyncs_total delta {} != status wal_fsyncs {}",
            if scraped_fsyncs >= 0.0 {
                (scraped_fsyncs as u64)
                    .saturating_sub(fsyncs_base)
                    .to_string()
            } else {
                "absent".to_string()
            },
            status.wal_fsyncs
        );
        failed = true;
    }
    if !missing_series.is_empty() {
        eprintln!("serve drill FAILED: core series silent or absent: {missing_series:?}");
        failed = true;
    }
    // Leave the process-global knob as we found it for `repro all`.
    ltam_obs::set_disabled(false);
    if failed {
        std::process::exit(1);
    }
}

const METRICS_HELP: &str = "\
usage: repro metrics --addr HOST:PORT

Scrape a running ltam-serve server's metric registry over the wire
(the KIND_METRICS frame), validate the exposition against the text
grammar (including duplicate-series rejection), and print it to
stdout. Point any text-format-speaking collector at the same frame, or
use this as a one-shot `curl` stand-in during incidents
(docs/OPERATIONS.md section 7 builds its checklist on these series).

options:
  --addr HOST:PORT  server address to scrape                 [required]
  --help            this text
";

/// Exit with a usage error for the metrics subcommand.
fn metrics_usage_error(message: &str) -> ! {
    eprintln!("{message}\n{METRICS_HELP}");
    std::process::exit(2);
}

/// One-shot wire scrape of a running server's registry.
fn metrics(args: &[String]) {
    use ltam_serve::LtamClient;

    let mut addr: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                addr = Some(
                    it.next()
                        .unwrap_or_else(|| metrics_usage_error("--addr needs a value"))
                        .clone(),
                );
            }
            "--help" | "-h" => {
                print!("{METRICS_HELP}");
                return;
            }
            other => metrics_usage_error(&format!("unknown metrics option {other:?}")),
        }
    }
    let addr = addr.unwrap_or_else(|| metrics_usage_error("--addr is required"));
    let mut client = match LtamClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("metrics: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let text = match client.metrics() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("metrics: scrape failed: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = ltam_obs::validate(&text) {
        eprintln!("metrics: exposition failed validation: {e}");
        std::process::exit(1);
    }
    print!("{text}");
}

const REPLICATE_HELP: &str = "\
usage: repro replicate [--json] [--events N] [--subjects N] [--shards N]
                       [--batch N]

Read-replica drill. Starts a primary over a fresh durable store,
ingests a quarter of the canonical trace, then bootstraps a follower
over the wire (snapshot + archive chain) and starts it tailing the
primary's WAL while a loader thread streams the rest of the trace.
Staleness lag (primary sequence minus follower watermark) is sampled
throughout. Mid-load the follower is KILLED (abort, no shutdown) and a
fresh one is re-bootstrapped with the dead follower's watermark as its
floor — the monotone-read guarantee across the generation change.
After a final deterministic overstay tick, the drill waits for the
follower to converge and then verifies OVER THE WIRE that the follower
and primary agree at the same watermark: identical violation
multisets, identical sampled whereabouts, identical engine state
digests — and that the follower refuses a write with a typed
NotPrimary redirect. Exits non-zero on any divergence, any watermark
regression, or convergence timeout.

options:
  --json           emit one machine-readable JSON object
  --events N       trace length in events                 [default 20000]
  --subjects N     simulated population size              [default 256]
  --shards N       engine shard count                     [default 4]
  --batch N        events per ingest request              [default 64]
  --help           this text
";

/// The `repro replicate --json` report (the `BENCH_replicate.json`
/// schema).
#[derive(serde::Serialize)]
struct ReplicateReport {
    experiment: &'static str,
    events: usize,
    subjects: usize,
    shards: usize,
    batch: usize,
    staleness_samples: usize,
    staleness_p50_events: u64,
    staleness_p90_events: u64,
    staleness_max_events: u64,
    watermark_floor_at_kill: u64,
    rebootstraps: u32,
    convergence_ms: u64,
    final_watermark: u64,
    watermark_monotone: bool,
    violations: usize,
    violations_match: bool,
    whereabouts_match: bool,
    state_digest_match: bool,
    write_refused_with_redirect: bool,
    metrics: ReplicateMetricsBlock,
}

/// The registry-sourced `metrics` block of [`ReplicateReport`].
/// `lag_events_after_converge` is the follower's wire-scraped
/// `repl_lag_events` gauge AFTER `wait_for_watermark` returned — the
/// drill requires exactly 0; `-1` marks an absent series. Fetch time
/// is raw histogram units (microseconds).
#[derive(serde::Serialize)]
struct ReplicateMetricsBlock {
    scrape_valid: bool,
    lag_events_after_converge: i64,
    fetch_p50_us: i64,
    state_transitions: u64,
}

/// Exit with a usage error for the replicate subcommand.
fn replicate_usage_error(message: &str) -> ! {
    eprintln!("{message}\n{REPLICATE_HELP}");
    std::process::exit(2);
}

/// Extension: read replicas — snapshot + WAL shipping with a
/// mid-stream follower kill and re-bootstrap.
fn replicate(args: &[String]) {
    use ltam_bench::violation_multiset;
    use ltam_engine::batch::Event;
    use ltam_serve::{
        bootstrap_follower, ClientError, ErrorCode, LtamClient, ReplicaConfig, Server,
        ServerConfig, ServerRole,
    };
    use ltam_sim::multi_shard_trace;
    use ltam_store::{DurableEngine, ScratchDir, StoreConfig};
    use ltam_time::Time;
    use std::time::{Duration, Instant};

    let mut json = false;
    let mut events = 20_000usize;
    let mut subjects = 256usize;
    let mut shards = 4usize;
    let mut batch = 64usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| replicate_usage_error(&format!("{name} needs a value")))
                .clone()
        };
        let parsed = |name: &str, raw: String| -> u64 {
            raw.parse()
                .unwrap_or_else(|_| replicate_usage_error(&format!("{name}: bad value {raw:?}")))
        };
        match a.as_str() {
            "--json" => json = true,
            "--events" => events = parsed("--events", value("--events")) as usize,
            "--subjects" => subjects = parsed("--subjects", value("--subjects")) as usize,
            "--shards" => shards = parsed("--shards", value("--shards")) as usize,
            "--batch" => batch = parsed("--batch", value("--batch")) as usize,
            "--help" | "-h" => {
                print!("{REPLICATE_HELP}");
                return;
            }
            other => replicate_usage_error(&format!("unknown replicate option {other:?}")),
        }
    }
    if events == 0 || subjects == 0 || shards == 0 || batch == 0 {
        replicate_usage_error("--events, --subjects, --shards and --batch must be >= 1");
    }

    let trace = multi_shard_trace(&ltam_bench::serve_workload(subjects, events));
    let n_events = trace.events.len();
    let span = trace.max_time();
    let final_tick = Event::Tick {
        now: Time(span.get() + 1),
    };

    // The in-process reference (same trace + tick, proven-equivalent
    // engine) — what BOTH primary and follower must agree with.
    let mut reference = trace.build_engine();
    for e in trace.events.iter().chain(std::iter::once(&final_tick)) {
        ltam_engine::batch::apply_to_engine(&mut reference, e);
    }
    let expected = violation_multiset(reference.violations().to_vec());

    // Primary: small segments on purpose — the follower must cross
    // segment hops, and snapshot rotation must prune under it at least
    // potentially. (The serve drill optimizes the opposite way.)
    let primary_dir = ScratchDir::new("repro-replicate-primary");
    let primary_store = StoreConfig {
        segment_bytes: 256 * 1024,
        snapshot_every: (n_events as u64 / 4).max(1),
        fsync: true,
        retention: None,
    };
    let (engine, _alerts) = DurableEngine::create(
        primary_dir.path(),
        trace.build_policy_core(),
        shards,
        primary_store,
    )
    .expect("create primary store");
    let primary = Server::start(engine, "127.0.0.1:0", ServerConfig::default())
        .expect("bind primary on loopback");
    let primary_addr = primary.local_addr().to_string();

    // Followers replay through their own group commit; their local
    // fsync cadence is their own durability choice, not the primary's.
    let follower_store = StoreConfig {
        segment_bytes: 256 * 1024,
        snapshot_every: 0, // manual; the drill store is scratch
        fsync: false,
        retention: None,
    };
    let replica_config = |floor: u64| ReplicaConfig {
        poll_interval: Duration::from_millis(3),
        watermark_floor: floor,
        ..ReplicaConfig::new(&primary_addr)
    };
    // A bootstrap can race the primary's snapshot rotation (the fetched
    // snapshot pruned mid-transfer): retry into a fresh directory.
    let bootstrap = |tag: &str| -> (ScratchDir, DurableEngine) {
        let mut last_err = None;
        for attempt in 0..3 {
            let dir = ScratchDir::new(&format!("repro-replicate-{tag}-{attempt}"));
            match bootstrap_follower(dir.path(), &primary_addr, follower_store) {
                Ok(engine) => return (dir, engine),
                Err(e) => last_err = Some(e),
            }
        }
        panic!("follower bootstrap failed 3 times: {last_err:?}");
    };

    // Phase 1: a quarter of the trace lands before any follower exists
    // — the bootstrap must carry real state, not an empty store.
    let mut loader = LtamClient::connect(&primary_addr).expect("loader client");
    let preload = n_events / 4;
    for chunk in trace.events[..preload].chunks(batch) {
        loader.ingest(chunk).expect("preload batch");
    }

    let (f1_dir, f1_engine) = bootstrap("f1");
    let follower1 = Server::start_follower(
        f1_engine,
        "127.0.0.1:0",
        ServerConfig::default(),
        replica_config(0),
    )
    .expect("bind follower 1");
    let f1_addr = follower1.local_addr().to_string();

    // Phase 2: loader thread streams the rest, lightly throttled so
    // staleness sampling sees a live stream rather than one burst.
    let stream_trace = trace.events[preload..].to_vec();
    let loader_thread = std::thread::spawn(move || {
        for chunk in stream_trace.chunks(batch) {
            loader.ingest(chunk).expect("streamed batch");
            std::thread::sleep(Duration::from_micros(500));
        }
    });

    let mut primary_probe = LtamClient::connect(&primary_addr).expect("primary probe");
    let mut f_probe = LtamClient::connect(&f1_addr).expect("follower probe");
    let mut lags: Vec<u64> = Vec::new();
    let mut last_watermark = 0u64;
    let mut watermark_monotone = true;
    let kill_at = (n_events as u64 * 3) / 5;
    loop {
        let p = primary_probe
            .status()
            .expect("primary status")
            .events_ingested;
        let w = f_probe.watermark().expect("follower watermark");
        if w < last_watermark {
            watermark_monotone = false;
        }
        last_watermark = w;
        lags.push(p.saturating_sub(w));
        if p >= kill_at {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // The kill: no shutdown, no parting snapshot — the follower simply
    // stops existing mid-stream. Its published watermark is the floor
    // its replacement must honor before serving a single read.
    let floor = f_probe.watermark().expect("watermark at kill");
    drop(f_probe);
    drop(follower1.abort().expect("kill follower 1"));
    drop(f1_dir);

    let (f2_dir, f2_engine) = bootstrap("f2");
    let follower2 = Server::start_follower(
        f2_engine,
        "127.0.0.1:0",
        ServerConfig::default(),
        replica_config(floor),
    )
    .expect("bind follower 2");
    let f2_addr = follower2.local_addr().to_string();
    let mut f_probe = LtamClient::connect(&f2_addr).expect("follower 2 probe");

    // The replacement publishes a watermark that never dips below the
    // dead follower's — monotone reads across the generation change.
    last_watermark = floor;
    loop {
        let p = primary_probe
            .status()
            .expect("primary status")
            .events_ingested;
        let w = f_probe.watermark().expect("follower 2 watermark");
        if w < last_watermark {
            watermark_monotone = false;
        }
        last_watermark = w;
        lags.push(p.saturating_sub(w));
        if p >= n_events as u64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    loader_thread.join().expect("loader thread");

    // Final deterministic overstay tick, then convergence.
    primary_probe.ingest(&[final_tick]).expect("final tick");
    let target = n_events as u64 + 1;
    let converge_start = Instant::now();
    let final_watermark = f_probe
        .wait_for_watermark(target, Duration::from_secs(30))
        .expect("follower converges to the final tick");
    let convergence_ms = converge_start.elapsed().as_millis() as u64;
    if final_watermark < last_watermark {
        watermark_monotone = false;
    }

    // The honesty battery: follower answers vs the in-process
    // reference AND vs the primary, at the same watermark.
    let got = violation_multiset(
        f_probe
            .violations_in(ltam_time::Interval::ALL)
            .expect("follower violation report"),
    );
    let violations_match = got == expected;
    let mut whereabouts_match = true;
    for i in 0..subjects.min(16) {
        let s = ltam_core::subject::SubjectId(i as u32);
        for t in [Time(span.get() / 3), Time(span.get() / 2), span] {
            let served = f_probe.whereabouts(s, t).expect("follower whereabouts");
            if served != reference.movements().whereabouts(s, t) {
                whereabouts_match = false;
            }
        }
    }
    let p_status = primary_probe.status().expect("primary final status");
    let f_status = f_probe.status().expect("follower final status");
    let state_digest_match = p_status.state_digest == f_status.state_digest
        && p_status.events_ingested == f_status.events_ingested;

    // Writes at the follower: refused loudly, with the typed redirect.
    let write_refused_with_redirect = matches!(
        f_probe.ingest(&[final_tick]),
        Err(ClientError::Server {
            code: ErrorCode::NotPrimary,
            role: Some(ServerRole::Follower),
            ref message,
        }) if message.contains(&primary_addr)
    );

    let roles_ok = p_status.role == ServerRole::Primary && f_status.role == ServerRole::Follower;

    // Scrape the follower over the wire: its `repl_lag_events` gauge is
    // refreshed from monotone atomics at every watermark publish, so
    // once `wait_for_watermark` has returned it must read EXACTLY 0 —
    // convergence as the metrics layer tells it, not just as the drill
    // measured it. (Both servers share this process's registry; the
    // scrape goes through the follower's own KIND_METRICS path anyway
    // to exercise the frame.)
    let f_scrape = f_probe.metrics().expect("follower metrics scrape");
    let (lag_scrape_valid, lag_after_converge) = match ltam_obs::validate(&f_scrape) {
        Ok(expo) => (
            true,
            expo.value("repl_lag_events", &[]).map_or(-1, |v| v as i64),
        ),
        Err(e) => {
            eprintln!("follower metrics scrape rejected by validator: {e}");
            (false, -1)
        }
    };
    let registry = ltam_obs::registry();
    let repl_metrics = ReplicateMetricsBlock {
        scrape_valid: lag_scrape_valid,
        lag_events_after_converge: lag_after_converge,
        fetch_p50_us: ltam_obs::histogram_snapshot(registry, "repl_fetch_seconds", &[])
            .filter(|h| h.count > 0)
            .map_or(-1, |h| h.percentile(50.0) as i64),
        state_transitions: ltam_obs::counter_family_sum(registry, "repl_state_transitions_total"),
    };

    drop(follower2.abort().expect("stop follower 2"));
    drop(f2_dir);
    drop(primary.abort().expect("stop primary"));

    lags.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lags.is_empty() {
            return 0;
        }
        let idx = ((lags.len() - 1) as f64 * p / 100.0).round() as usize;
        lags[idx]
    };
    let (p50, p90, max) = (pct(50.0), pct(90.0), *lags.last().unwrap_or(&0));

    if json {
        let report = ReplicateReport {
            experiment: "replicate",
            events: n_events,
            subjects,
            shards,
            batch,
            staleness_samples: lags.len(),
            staleness_p50_events: p50,
            staleness_p90_events: p90,
            staleness_max_events: max,
            watermark_floor_at_kill: floor,
            rebootstraps: 1,
            convergence_ms,
            final_watermark,
            watermark_monotone,
            violations: got.len(),
            violations_match,
            whereabouts_match,
            state_digest_match,
            write_refused_with_redirect,
            metrics: repl_metrics,
        };
        println!(
            "{}",
            serde_json::to_string(&report).expect("report serializes")
        );
    } else {
        banner("Extension: read replicas — kill & re-bootstrap drill");
        println!(
            "{n_events} events, {subjects} subjects, {shards} shards, batch {batch}; follower killed at primary seq ~{kill_at}, floor {floor}"
        );
        println!(
            "staleness lag over {} samples: p50 {p50} events, p90 {p90} events, max {max} events",
            lags.len()
        );
        println!(
            "convergence after final tick: {convergence_ms} ms to watermark {final_watermark}; monotone: {}",
            if watermark_monotone { "YES" } else { "VIOLATED" }
        );
        println!(
            "follower vs reference: violations {} ({} of them), whereabouts {}; follower vs primary state digest: {}",
            if violations_match { "MATCH" } else { "MISMATCH" },
            got.len(),
            if whereabouts_match { "MATCH" } else { "MISMATCH" },
            if state_digest_match { "MATCH" } else { "MISMATCH" }
        );
        println!(
            "write at follower: {}",
            if write_refused_with_redirect {
                "refused with NotPrimary redirect (correct)"
            } else {
                "NOT refused correctly"
            }
        );
        println!(
            "metrics: scrape {}; repl_lag_events after convergence {}; fetch p50 {} us; {} state transitions",
            if repl_metrics.scrape_valid { "VALID" } else { "INVALID" },
            repl_metrics.lag_events_after_converge,
            repl_metrics.fetch_p50_us,
            repl_metrics.state_transitions
        );
    }
    let mut failed = false;
    if !violations_match || !whereabouts_match || !state_digest_match {
        eprintln!("replicate drill FAILED: follower diverges from the primary/reference");
        failed = true;
    }
    if !lag_scrape_valid {
        eprintln!("replicate drill FAILED: follower exposition is malformed");
        failed = true;
    }
    if lag_after_converge != 0 {
        eprintln!(
            "replicate drill FAILED: scraped repl_lag_events is {lag_after_converge}, expected 0 after convergence"
        );
        failed = true;
    }
    if !watermark_monotone {
        eprintln!("replicate drill FAILED: follower watermark moved backward");
        failed = true;
    }
    if !write_refused_with_redirect {
        eprintln!("replicate drill FAILED: follower accepted (or mis-refused) a write");
        failed = true;
    }
    if !roles_ok {
        eprintln!("replicate drill FAILED: served roles are wrong");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

const AUTH_HELP: &str = "\
usage: repro auth [--json] [--events N] [--subjects N] [--shards N] [--batch N]

Extension drill: the policy-governed wire. Locks the server (auth
required), throws every frame kind at it unauthenticated, feeds the
trace through a minted ingest-scoped token, quarantines a low-trust
sensor, revokes the ingest token over the wire (the very next frame on
the live connection must die PermissionDenied), crashes and recovers
the store (the revocation must survive), and wire-verifies the served
history against an in-process reference engine. Exits non-zero if any
unauthenticated frame is serviced or a quarantined event reaches the
trusted history.

  --json          emit machine-readable JSON (the BENCH_auth.json schema)
  --events N      trace length (default 4000)
  --subjects N    moving subjects (default 64)
  --shards N      engine shards (default 2)
  --batch N       ingest batch size (default 64)
  --help          this text
";

/// The `repro auth --json` report (the `BENCH_auth.json` schema).
#[derive(serde::Serialize)]
struct AuthReport {
    experiment: &'static str,
    events: usize,
    subjects: usize,
    shards: usize,
    /// Unauthenticated frames refused (out of the full frame-kind matrix).
    unauthenticated_refused: usize,
    /// Unauthenticated frames the locked server actually serviced (MUST be 0).
    unauthenticated_serviced: usize,
    /// Every pre-handshake refusal was role-redacted.
    redaction_ok: bool,
    /// Events the ingest-scoped token fed into the trusted history.
    token_ingested: u64,
    /// Probe events the low-trust sensor submitted.
    quarantine_submitted: usize,
    /// Probe events held on the quarantine ledger.
    quarantine_held: usize,
    /// The ledger query returned exactly the held probes, tagged with
    /// their source and trust level.
    quarantine_query_match: bool,
    /// Contact tracing flags the quarantined sighting instead of
    /// mixing it into trusted contacts.
    quarantine_flagged_in_contacts: bool,
    /// A quarantined event leaked into trusted query answers (MUST be false).
    quarantine_leaked: bool,
    /// The revoked token's very next frame on its live connection died
    /// PermissionDenied.
    revocation_immediate: bool,
    /// The revoked secret stayed dead across crash + recovery.
    revocation_durable: bool,
    /// The auth-required switch survived crash + recovery.
    auth_required_survives: bool,
    /// Served violations match the in-process reference multiset.
    violations_match: bool,
    /// Sampled whereabouts match the in-process reference.
    whereabouts_match: bool,
}

/// Exit with a usage error for the auth subcommand.
fn auth_usage_error(message: &str) -> ! {
    eprintln!("{message}\n{AUTH_HELP}");
    std::process::exit(2);
}

/// Extension: the policy-governed wire — capability tokens, remote
/// admin RPCs, trust-based quarantine, and durable revocation.
fn auth(args: &[String]) {
    use ltam_bench::violation_multiset;
    use ltam_core::capability::{AdminOp, AdminOutcome, Scope};
    use ltam_core::subject::SubjectId;
    use ltam_engine::batch::Event;
    use ltam_serve::{ClientError, ErrorCode, IngestReply, LtamClient, Server, ServerConfig};
    use ltam_sim::multi_shard_trace;
    use ltam_store::{DurableEngine, ScratchDir, StoreConfig};
    use ltam_time::{Interval, Time};

    let mut json = false;
    let mut events = 4_000usize;
    let mut subjects = 64usize;
    let mut shards = 2usize;
    let mut batch = 64usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| auth_usage_error(&format!("{name} needs a value")))
                .clone()
        };
        let parsed = |name: &str, raw: String| -> u64 {
            raw.parse()
                .unwrap_or_else(|_| auth_usage_error(&format!("{name}: bad value {raw:?}")))
        };
        match a.as_str() {
            "--json" => json = true,
            "--events" => events = parsed("--events", value("--events")) as usize,
            "--subjects" => subjects = parsed("--subjects", value("--subjects")) as usize,
            "--shards" => shards = parsed("--shards", value("--shards")) as usize,
            "--batch" => batch = parsed("--batch", value("--batch")) as usize,
            "--help" | "-h" => {
                print!("{AUTH_HELP}");
                return;
            }
            other => auth_usage_error(&format!("unknown auth option {other:?}")),
        }
    }
    if events == 0 || subjects == 0 || shards == 0 || batch == 0 {
        auth_usage_error("--events, --subjects, --shards and --batch must be >= 1");
    }

    const ROOT_SECRET: &str = "repro-root-secret";
    const SENSOR_SECRET: &str = "repro-sensor-secret";
    const LOW_TRUST_SECRET: &str = "repro-low-trust-secret";

    let trace = multi_shard_trace(&ltam_bench::serve_workload(subjects, events));
    let n_events = trace.events.len();
    let span = trace.max_time();
    let final_tick = Event::Tick {
        now: Time(span.get() + 1),
    };

    // The in-process reference: the trusted trace and nothing else —
    // in particular, none of the quarantined probes.
    let mut reference = trace.build_engine();
    for e in trace.events.iter().chain(std::iter::once(&final_tick)) {
        ltam_engine::batch::apply_to_engine(&mut reference, e);
    }
    let expected = violation_multiset(reference.violations().to_vec());

    let dir = ScratchDir::new("repro-auth");
    let store = StoreConfig {
        segment_bytes: 256 * 1024,
        snapshot_every: 0,
        fsync: true,
        retention: None,
    };
    let (engine, _alerts) =
        DurableEngine::create(dir.path(), trace.build_policy_core(), shards, store)
            .expect("create store");
    let config = ServerConfig {
        root_token: Some(ROOT_SECRET.to_string()),
        ..ServerConfig::default()
    };
    let server = Server::start(engine, "127.0.0.1:0", config.clone()).expect("bind on loopback");
    let addr = server.local_addr().to_string();

    // Lock the wire over the wire.
    let mut root = LtamClient::connect(&addr).expect("root client");
    root.hello(ROOT_SECRET).expect("root handshake");
    root.admin(AdminOp::SetAuthRequired { required: true })
        .expect("lock the wire");

    // Phase 1: the unauthenticated matrix. Every frame kind, no
    // handshake — each must be refused, and each refusal must be
    // role-redacted.
    let probe_subject = SubjectId(subjects as u32 + 7);
    let probe_location = trace
        .events
        .iter()
        .find_map(|e| match e {
            Event::Enter { location, .. } => Some(*location),
            _ => None,
        })
        .expect("trace contains an Enter event");
    let mut anon = LtamClient::connect(&addr).expect("anonymous client");
    let mut unauthenticated_refused = 0usize;
    let mut unauthenticated_serviced = 0usize;
    let mut redaction_ok = true;
    let mut tally = |name: &str, refused: Option<bool>| match refused {
        Some(redacted) => {
            unauthenticated_refused += 1;
            if !redacted {
                eprintln!("auth drill: unauthenticated {name} refusal leaked the server role");
                redaction_ok = false;
            }
        }
        None => {
            eprintln!("auth drill: unauthenticated {name} frame was SERVICED");
            unauthenticated_serviced += 1;
        }
    };
    // A refusal is only counted when it is the auth refusal; anything
    // else (including success) counts as serviced.
    fn auth_refusal<T>(r: Result<T, ClientError>) -> Option<bool> {
        match r {
            Err(ClientError::Server {
                code: ErrorCode::Unauthenticated,
                role,
                ..
            }) => Some(role.is_none()),
            _ => None,
        }
    }
    tally(
        "ingest",
        auth_refusal(anon.ingest(&[Event::Enter {
            time: Time(1),
            subject: probe_subject,
            location: probe_location,
        }])),
    );
    tally(
        "check",
        auth_refusal(anon.check_access(Time(1), probe_subject, probe_location)),
    );
    tally(
        "query",
        auth_refusal(anon.whereabouts(probe_subject, Time(1))),
    );
    tally("metrics", auth_refusal(anon.metrics()));
    tally("repl", auth_refusal(anon.repl_manifest()));
    tally(
        "admin",
        auth_refusal(anon.admin(AdminOp::SetTrustThreshold { threshold: 0 })),
    );
    drop(anon);

    // Phase 2: a minted ingest-scoped token feeds the whole trace.
    let sensor_subject = SubjectId(subjects as u32 + 1);
    let sensor_id = match root
        .admin(AdminOp::MintToken {
            subject: sensor_subject,
            scopes: vec![Scope::Ingest { locations: None }],
            validity: Interval::ALL,
            secret: SENSOR_SECRET.to_string(),
        })
        .expect("mint sensor token")
    {
        AdminOutcome::TokenMinted { id } => id,
        other => panic!("unexpected mint outcome {other:?}"),
    };
    let mut sensor = LtamClient::connect(&addr).expect("sensor client");
    sensor.hello(SENSOR_SECRET).expect("sensor handshake");
    let mut token_ingested = 0u64;
    for chunk in trace.events.chunks(batch) {
        token_ingested += sensor
            .ingest(chunk)
            .expect("token-authenticated batch")
            .processed as u64;
    }
    token_ingested += sensor.ingest(&[final_tick]).expect("final tick").processed as u64;

    // Phase 3: trust-based quarantine. Raise the threshold, mint a
    // token for a sensor that sits below it, and watch its events land
    // on the ledger — and ONLY the ledger.
    root.admin(AdminOp::SetTrustThreshold { threshold: 1 })
        .expect("raise the trust threshold");
    root.admin(AdminOp::MintToken {
        subject: probe_subject,
        scopes: vec![Scope::Ingest { locations: None }],
        validity: Interval::ALL,
        secret: LOW_TRUST_SECRET.to_string(),
    })
    .expect("mint low-trust token");
    let mut low = LtamClient::connect(&addr).expect("low-trust client");
    low.hello(LOW_TRUST_SECRET).expect("low-trust handshake");
    let probe_times = [span.get() + 10, span.get() + 11, span.get() + 12];
    let probes: Vec<Event> = probe_times
        .iter()
        .map(|&t| Event::Enter {
            time: Time(t),
            subject: probe_subject,
            location: probe_location,
        })
        .collect();
    let mut quarantine_held = 0usize;
    for probe in &probes {
        match low
            .ingest_flagged(std::slice::from_ref(probe))
            .expect("low-trust ingest answers")
        {
            IngestReply::Quarantined { held } => quarantine_held += held,
            IngestReply::Ingested(_) => {
                eprintln!("auth drill: low-trust event reached the trusted ingest path");
            }
        }
    }
    let held = root
        .quarantined(Some(probe_subject), Interval::ALL)
        .expect("quarantine triage query");
    let quarantine_query_match = held.len() == probes.len()
        && held
            .iter()
            .zip(&probes)
            .all(|(q, e)| q.event == *e && q.source == probe_subject && q.level < 1);
    // The leak check, wire-verified: the probe subject must be nowhere
    // in the trusted history, at any probed chronon.
    let mut quarantine_leaked = false;
    for &t in &probe_times {
        if root
            .whereabouts(probe_subject, Time(t))
            .expect("trusted whereabouts")
            .is_some()
        {
            quarantine_leaked = true;
        }
    }
    // ...while contact tracing *flags* the held sighting.
    let (_, flagged) = root
        .contacts_flagged(probe_subject, Interval::ALL)
        .expect("flagged contact tracing");
    let quarantine_flagged_in_contacts = flagged.iter().any(|q| q.source == probe_subject);

    // Phase 4: revocation over the wire. The sensor's connection is
    // live and half-way through its day; the very next frame dies.
    root.admin(AdminOp::RevokeToken { id: sensor_id })
        .expect("revoke sensor token");
    let revocation_immediate = matches!(
        sensor.ingest(&[final_tick]),
        Err(ClientError::Server {
            code: ErrorCode::PermissionDenied,
            ..
        })
    );
    if !revocation_immediate {
        eprintln!("auth drill: revoked token's next frame was not refused PermissionDenied");
    }

    // Wire-verify the served history against the reference before the
    // crash: the trusted answers must owe nothing to the quarantine.
    let got = violation_multiset(root.violations_in(Interval::ALL).expect("violation report"));
    let violations_match = got == expected;
    let mut whereabouts_match = true;
    for i in 0..subjects.min(16) {
        let s = SubjectId(i as u32);
        for t in [Time(span.get() / 3), Time(span.get() / 2), span] {
            if root.whereabouts(s, t).expect("served whereabouts")
                != reference.movements().whereabouts(s, t)
            {
                whereabouts_match = false;
            }
        }
    }

    // Phase 5: crash + recovery. No orderly shutdown beyond the WAL's
    // own durability; the revocation and the lock must both survive.
    let engine = server.abort().expect("abort server");
    drop(engine);
    let (engine, _alerts, _report) =
        DurableEngine::open_with_shards(dir.path(), store, shards).expect("recover store");
    let server = Server::start(engine, "127.0.0.1:0", config).expect("rebind after recovery");
    let addr = server.local_addr().to_string();
    let mut revived = LtamClient::connect(&addr).expect("post-recovery client");
    let revocation_durable = matches!(
        revived.hello(SENSOR_SECRET),
        Err(ClientError::Server {
            code: ErrorCode::Unauthenticated,
            ..
        })
    );
    if !revocation_durable {
        eprintln!("auth drill: revoked secret authenticated after crash + recovery");
    }
    let mut root = LtamClient::connect(&addr).expect("root client after recovery");
    root.hello(ROOT_SECRET).expect("root recovery handshake");
    let status = root.status().expect("post-recovery status");
    let auth_required_survives = status.auth_required;
    let quarantine_survived = status.quarantined_events == quarantine_held;

    drop(server.abort().expect("stop server"));

    if json {
        let report = AuthReport {
            experiment: "auth",
            events: n_events,
            subjects,
            shards,
            unauthenticated_refused,
            unauthenticated_serviced,
            redaction_ok,
            token_ingested,
            quarantine_submitted: probes.len(),
            quarantine_held,
            quarantine_query_match,
            quarantine_flagged_in_contacts,
            quarantine_leaked,
            revocation_immediate,
            revocation_durable,
            auth_required_survives,
            violations_match,
            whereabouts_match,
        };
        println!(
            "{}",
            serde_json::to_string(&report).expect("report serializes")
        );
    } else {
        banner("Extension: policy-governed wire — token, trust & revocation drill");
        println!(
            "{n_events} events, {subjects} subjects, {shards} shards; wire locked via root admin RPC"
        );
        println!(
            "unauthenticated frame matrix: {unauthenticated_refused}/6 refused, {unauthenticated_serviced} serviced; redaction {}",
            if redaction_ok { "OK" } else { "LEAKED" }
        );
        println!("ingest-scoped token fed {token_ingested} events into the trusted history");
        println!(
            "low-trust sensor: {}/{} probes quarantined; ledger query {}; flagged in contacts: {}; leaked into trusted history: {}",
            quarantine_held,
            probes.len(),
            if quarantine_query_match { "MATCH" } else { "MISMATCH" },
            if quarantine_flagged_in_contacts { "YES" } else { "NO" },
            if quarantine_leaked { "YES (BUG)" } else { "no" }
        );
        println!(
            "revocation: next frame on live connection {}; survives crash+recovery: {}; auth lock survives: {}",
            if revocation_immediate { "refused PermissionDenied" } else { "NOT refused" },
            if revocation_durable { "YES" } else { "NO" },
            if auth_required_survives { "YES" } else { "NO" }
        );
        println!(
            "served vs reference: violations {} ({} of them), whereabouts {}",
            if violations_match {
                "MATCH"
            } else {
                "MISMATCH"
            },
            got.len(),
            if whereabouts_match {
                "MATCH"
            } else {
                "MISMATCH"
            }
        );
    }

    let mut failed = false;
    if unauthenticated_serviced != 0 {
        eprintln!("auth drill FAILED: a locked server serviced an unauthenticated frame");
        failed = true;
    }
    if !redaction_ok {
        eprintln!("auth drill FAILED: a pre-handshake refusal leaked the server role");
        failed = true;
    }
    if quarantine_leaked || quarantine_held != probes.len() {
        eprintln!("auth drill FAILED: quarantined events reached (or skipped) the trusted history");
        failed = true;
    }
    if !quarantine_query_match || !quarantine_flagged_in_contacts {
        eprintln!("auth drill FAILED: the quarantine ledger is not honestly queryable");
        failed = true;
    }
    if !quarantine_survived {
        eprintln!("auth drill FAILED: the quarantine ledger did not survive recovery");
        failed = true;
    }
    if !revocation_immediate || !revocation_durable || !auth_required_survives {
        eprintln!("auth drill FAILED: revocation or the auth lock did not hold");
        failed = true;
    }
    if !violations_match || !whereabouts_match {
        eprintln!("auth drill FAILED: served answers diverge from the in-process reference");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

const SITUATIONS_HELP: &str = "\
usage: repro situations [--json] [--staff N] [--responders N] [--shards N]

Extension drill: situation-aware enforcement over the wire. On the
paper's NTU campus, an admin declares an emergency mid-shift
(KIND_SITUATION frames, Admin-gated): registered responders' denials
become audit-flagged override grants carrying the incident id, the
declaration auto-expires on the event-time clock, a later lockdown
default-denies everything except a pinned guard authorization, and a
separation-of-duty constraint refuses a tainted entry in every mode.
All situation ops are durable WAL records: a follower tails them
in-stream (policy_epoch bumps, enforcement_epoch still — it must never
park NeedsBootstrap) and converges to the primary's state digest; a
crash + recovery must restore the declared mode, pins and constraints.
Exits non-zero if any override lacks its incident id, any rewrite
leaks past its mode, the follower re-bootstraps, or recovery loses the
declaration.

  --json          emit machine-readable JSON (the BENCH_situations.json schema)
  --staff N       authorized staff subjects (default 8, min 2)
  --responders N  emergency responders without authorizations (default 4)
  --shards N      engine shards (default 2)
  --help          this text
";

/// The `repro situations --json` report (the `BENCH_situations.json`
/// schema).
#[derive(serde::Serialize)]
struct SituationsReport {
    experiment: &'static str,
    staff: usize,
    responders: usize,
    shards: usize,
    /// An ingest-scoped token's KIND_SITUATION frame was refused
    /// PermissionDenied (the Admin gate).
    scoped_token_refused: bool,
    /// Every situation op bumped policy_epoch by exactly one...
    policy_epoch_bumps: u64,
    /// ...and none of them moved enforcement_epoch (the replication
    /// barrier stayed down).
    enforcement_epoch_moved: bool,
    /// Responder denials rewritten into override grants while the
    /// emergency was live.
    overrides_granted: usize,
    /// Every audited override decision carries the declared incident id
    /// (checked against the engine's audit trail after shutdown).
    override_audit_complete: bool,
    /// A non-responder stayed denied during the emergency.
    bystander_still_denied: bool,
    /// The same responder was denied again once the event-time clock
    /// passed the declaration's `until` (auto-expiry, no operator op).
    override_expired_denied: bool,
    /// Lockdown refused an ordinarily granted staff request.
    lockdown_refused: bool,
    /// The pinned guard authorization kept granting under lockdown.
    pinned_grant_survives_lockdown: bool,
    /// Separation-of-duty refused the tainted subject...
    sod_refused: bool,
    /// ...and admitted the untainted one.
    sod_clean_subject_granted: bool,
    /// The follower converged to the primary's watermark with the
    /// situation records in-stream.
    follower_converged: bool,
    /// Follower and primary agree: violation multisets and state
    /// digests at the matched watermark, and both epochs.
    follower_state_match: bool,
    /// The follower never entered NeedsBootstrap while tailing the
    /// situation ops (delta of the state-transition counter).
    follower_rebootstraps: u64,
    /// Crash + recovery restored the declared mode, the pin and the
    /// installed constraint, at the pre-crash policy epoch.
    recovery_restores_declaration: bool,
    /// Post-recovery wire decisions still honor the recovered lockdown.
    recovered_decisions_hold: bool,
    metrics: SituationsMetricsBlock,
}

/// The registry-sourced `metrics` block of [`SituationsReport`].
/// Counter values are deltas over the drill (primary + follower: the
/// follower replays the same judged stream in this process, so each
/// rewrite counts exactly twice). `-1` marks an absent series.
#[derive(serde::Serialize, Clone, Copy)]
struct SituationsMetricsBlock {
    scrape_valid: bool,
    /// `situate_mode` gauge at scrape time (2 = lockdown).
    mode_gauge: i64,
    overrides_total: i64,
    override_expired_total: i64,
    lockdown_refusals_total: i64,
    constraint_refusals_total: i64,
    /// `store_policy_epoch` gauge vs the wire-reported status value.
    policy_epoch_gauge_matches_status: bool,
}

/// Exit with a usage error for the situations subcommand.
fn situations_usage_error(message: &str) -> ! {
    eprintln!("{message}\n{SITUATIONS_HELP}");
    std::process::exit(2);
}

/// Extension: situation-aware enforcement — emergency overrides,
/// lockdown, workflow constraints, replicated and recovered.
fn situations(args: &[String]) {
    use ltam_bench::violation_multiset;
    use ltam_core::capability::{AdminOp, AdminOutcome, Scope};
    use ltam_core::model::{Authorization, EntryLimit};
    use ltam_core::subject::SubjectId;
    use ltam_engine::batch::{Event, PolicyCore};
    use ltam_serve::{
        bootstrap_follower, ClientError, ErrorCode, LtamClient, ReplicaConfig, Server, ServerConfig,
    };
    use ltam_situate::{
        IncidentId, SituationMode, SituationOp, SituationOutcome, WorkflowConstraint,
    };
    use ltam_store::{DurableEngine, ScratchDir, StoreConfig};
    use ltam_time::Time;
    use std::time::Duration;

    let mut json = false;
    let mut staff = 8usize;
    let mut responders = 4usize;
    let mut shards = 2usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| situations_usage_error(&format!("{name} needs a value")))
                .clone()
        };
        let parsed = |name: &str, raw: String| -> u64 {
            raw.parse()
                .unwrap_or_else(|_| situations_usage_error(&format!("{name}: bad value {raw:?}")))
        };
        match a.as_str() {
            "--json" => json = true,
            "--staff" => staff = parsed("--staff", value("--staff")) as usize,
            "--responders" => responders = parsed("--responders", value("--responders")) as usize,
            "--shards" => shards = parsed("--shards", value("--shards")) as usize,
            "--help" | "-h" => {
                print!("{SITUATIONS_HELP}");
                return;
            }
            other => situations_usage_error(&format!("unknown situations option {other:?}")),
        }
    }
    if staff < 2 || responders == 0 || shards == 0 {
        situations_usage_error("--staff must be >= 2, --responders and --shards >= 1");
    }

    const ROOT_SECRET: &str = "repro-situations-root";
    const SENSOR_SECRET: &str = "repro-situations-sensor";
    const INCIDENT: u64 = 7;

    // Counter baselines: the registry is process-global ("repro all"
    // runs other drills first) and the follower below replays the same
    // judged stream, so every rewrite is counted once per engine.
    let registry = ltam_obs::registry();
    let base = |name: &str| ltam_obs::counter_value(registry, name, &[]).unwrap_or(0);
    let base_overrides = base("situate_overrides_total");
    let base_expired = base("situate_override_expired_total");
    let base_lockdown = base("situate_lockdown_refusals_total");
    let base_constraint = base("situate_constraint_refusals_total");
    let base_parked = ltam_obs::counter_value(
        registry,
        "repl_state_transitions_total",
        &[("state", "needs_bootstrap")],
    )
    .unwrap_or(0);

    // The world: the paper's NTU campus. Staff hold unbounded
    // authorizations for the general office, the corridors and the
    // CAIS lab; the guard holds the (soon pinned) general-office
    // authorization; responders and the bystander hold nothing at all.
    let ntu = ntu_campus();
    let (office, lab) = (ntu.sce_go, ntu.cais);
    let corridors = [ntu.sce_a, ntu.sce_b];
    let staff_id = |i: usize| SubjectId(i as u32);
    let medic_id = |i: usize| SubjectId((staff + i) as u32);
    let bystander = SubjectId((staff + responders) as u32);
    let guard = SubjectId((staff + responders + 1) as u32);
    let mut core = PolicyCore::new(ntu.model);
    for i in 0..staff {
        for l in [office, lab, corridors[0], corridors[1]] {
            core.add_authorization(
                Authorization::new(
                    ltam_time::Interval::ALL,
                    ltam_time::Interval::ALL,
                    staff_id(i),
                    l,
                    EntryLimit::Unbounded,
                )
                .expect("valid staff authorization"),
            );
        }
    }
    let guard_auth = core.add_authorization(
        Authorization::new(
            ltam_time::Interval::ALL,
            ltam_time::Interval::ALL,
            guard,
            office,
            EntryLimit::Unbounded,
        )
        .expect("valid guard authorization"),
    );

    let dir = ScratchDir::new("repro-situations");
    let store = StoreConfig {
        segment_bytes: 256 * 1024,
        snapshot_every: 0,
        fsync: true,
        retention: None,
    };
    let (engine, _alerts) =
        DurableEngine::create(dir.path(), core, shards, store).expect("create store");
    let config = ServerConfig {
        root_token: Some(ROOT_SECRET.to_string()),
        ..ServerConfig::default()
    };
    let server = Server::start(engine, "127.0.0.1:0", config.clone()).expect("bind on loopback");
    let addr = server.local_addr().to_string();
    let mut root = LtamClient::connect(&addr).expect("root client");
    root.hello(ROOT_SECRET).expect("root handshake");

    // Baseline shift: every staff member requests, enters and leaves
    // the general office — all granted, no violations, real movement
    // history for the workflow constraint to consult later (and nobody
    // left inside, so later entries stay consistent).
    let baseline: Vec<Event> = (0..staff)
        .flat_map(|i| {
            let t = Time(1 + i as u64);
            [
                Event::Request {
                    time: t,
                    subject: staff_id(i),
                    location: office,
                },
                Event::Enter {
                    time: t,
                    subject: staff_id(i),
                    location: office,
                },
                Event::Exit {
                    time: t,
                    subject: staff_id(i),
                    location: office,
                },
            ]
        })
        .collect();
    root.ingest(&baseline).expect("baseline shift");

    // The Admin gate: an ingest-scoped token may feed events but its
    // KIND_SITUATION frame dies PermissionDenied.
    match root
        .admin(AdminOp::MintToken {
            subject: guard,
            scopes: vec![Scope::Ingest { locations: None }],
            validity: ltam_time::Interval::ALL,
            secret: SENSOR_SECRET.to_string(),
        })
        .expect("mint ingest token")
    {
        AdminOutcome::TokenMinted { .. } => {}
        other => panic!("unexpected mint outcome {other:?}"),
    }
    let mut sensor = LtamClient::connect(&addr).expect("sensor client");
    sensor.hello(SENSOR_SECRET).expect("sensor handshake");
    let scoped_token_refused = matches!(
        sensor.situation(SituationOp::Declare(SituationMode::Normal)),
        Err(ClientError::Server {
            code: ErrorCode::PermissionDenied,
            ..
        })
    );
    drop(sensor);

    // A follower starts tailing BEFORE any situation is declared: every
    // situation record must reach it in-stream, through the replicated
    // WAL, without tripping a re-bootstrap.
    let follower_store = StoreConfig {
        segment_bytes: 256 * 1024,
        snapshot_every: 0,
        fsync: false,
        retention: None,
    };
    let f_dir = ScratchDir::new("repro-situations-follower");
    let f_engine =
        bootstrap_follower(f_dir.path(), &addr, follower_store).expect("bootstrap follower");
    let follower = Server::start_follower(
        f_engine,
        "127.0.0.1:0",
        ServerConfig::default(),
        ReplicaConfig {
            poll_interval: Duration::from_millis(3),
            ..ReplicaConfig::new(&addr)
        },
    )
    .expect("bind follower");
    let mut f_probe =
        LtamClient::connect(&follower.local_addr().to_string()).expect("follower probe");

    let epoch_before = root.status().expect("status before situations");
    let mut situation_ops = 0u64;
    let mut op = |root: &mut LtamClient, op: SituationOp| -> SituationOutcome {
        situation_ops += 1;
        root.situation(op).expect("situation op over the wire")
    };

    // Phase 1 — emergency. Responders registered, incident declared
    // with an expiry on the event-time clock; their denials become
    // override grants, the bystander's does not.
    for i in 0..responders {
        op(&mut root, SituationOp::AddResponder(medic_id(i)));
    }
    op(
        &mut root,
        SituationOp::Declare(SituationMode::Emergency {
            incident: IncidentId(INCIDENT),
            until: Time(100),
        }),
    );
    let mut overrides_granted = 0usize;
    for i in 0..responders {
        if root
            .check_access(Time(50), medic_id(i), lab)
            .expect("responder check")
        {
            overrides_granted += 1;
        }
    }
    let bystander_still_denied = !root
        .check_access(Time(50), bystander, lab)
        .expect("bystander check");

    // Phase 2 — auto-expiry: the same responder, one chronon past
    // `until`. Nobody cleared anything; the event-time clock did.
    let override_expired_denied = !root
        .check_access(Time(101), medic_id(0), lab)
        .expect("post-expiry check");

    // Phase 3 — lockdown with a pinned exception.
    op(&mut root, SituationOp::Declare(SituationMode::Lockdown));
    op(&mut root, SituationOp::Pin(guard_auth));
    let lockdown_refused = !root
        .check_access(Time(120), staff_id(0), office)
        .expect("staff check under lockdown");
    let pinned_grant_survives_lockdown = root
        .check_access(Time(120), guard, office)
        .expect("guard check under lockdown");
    // An unrequested entry during the lockdown: a violation both the
    // primary and the follower must record identically.
    root.ingest(&[Event::Enter {
        time: Time(125),
        subject: staff_id(1),
        location: lab,
    }])
    .expect("unauthorized entry");

    // Phase 4 — separation of duty, binding in every mode: whoever
    // opened the general office this window cannot also enter the lab.
    op(&mut root, SituationOp::Declare(SituationMode::Normal));
    match op(
        &mut root,
        SituationOp::AddConstraint(WorkflowConstraint::SeparationOfDuty {
            first: office,
            second: lab,
            window: 100,
        }),
    ) {
        SituationOutcome::ConstraintAdded { .. } => {}
        other => panic!("unexpected constraint outcome {other:?}"),
    }
    root.ingest(&[
        Event::Request {
            time: Time(130),
            subject: staff_id(0),
            location: office,
        },
        Event::Enter {
            time: Time(130),
            subject: staff_id(0),
            location: office,
        },
        Event::Exit {
            time: Time(131),
            subject: staff_id(0),
            location: office,
        },
    ])
    .expect("tainting entry");
    let sod_refused = !root
        .check_access(Time(150), staff_id(0), lab)
        .expect("tainted check");
    let sod_clean_subject_granted = root
        .check_access(Time(150), staff_id(1), lab)
        .expect("untainted check");

    // Phase 5 — the declaration the crash must not lose.
    op(&mut root, SituationOp::Declare(SituationMode::Lockdown));

    let status = root.status().expect("status after situations");
    let policy_epoch_bumps = status.policy_epoch - epoch_before.policy_epoch;
    let enforcement_epoch_moved = status.enforcement_epoch != epoch_before.enforcement_epoch;

    // Phase 6 — the follower: situation records consumed WAL sequence
    // numbers, so converging to the primary's applied count means it
    // replayed them in-stream, at the same positions.
    let follower_converged = f_probe
        .wait_for_watermark(status.events_ingested, Duration::from_secs(30))
        .is_ok();
    let p_violations = violation_multiset(
        root.violations_in(ltam_time::Interval::ALL)
            .expect("primary violations"),
    );
    let f_violations = violation_multiset(
        f_probe
            .violations_in(ltam_time::Interval::ALL)
            .expect("follower violations"),
    );
    let f_status = f_probe.status().expect("follower status");
    let follower_state_match = follower_converged
        && p_violations == f_violations
        && status.state_digest == f_status.state_digest
        && status.policy_epoch == f_status.policy_epoch
        && status.enforcement_epoch == f_status.enforcement_epoch;
    let follower_rebootstraps = ltam_obs::counter_value(
        registry,
        "repl_state_transitions_total",
        &[("state", "needs_bootstrap")],
    )
    .unwrap_or(0)
        - base_parked;

    // Metrics, scraped over the wire AFTER convergence: the follower
    // replayed the same judged stream in this process, so each rewrite
    // counted exactly twice.
    let scrape = root.metrics().expect("metrics scrape");
    let scrape_valid = match ltam_obs::validate(&scrape) {
        Ok(_) => true,
        Err(e) => {
            eprintln!("situations drill: metrics exposition rejected: {e}");
            false
        }
    };
    let delta = |name: &str, base: u64| -> i64 {
        ltam_obs::counter_value(registry, name, &[]).map_or(-1, |v| (v - base) as i64)
    };
    let metrics = SituationsMetricsBlock {
        scrape_valid,
        mode_gauge: ltam_obs::gauge_value(registry, "situate_mode", &[]).unwrap_or(-1),
        overrides_total: delta("situate_overrides_total", base_overrides),
        override_expired_total: delta("situate_override_expired_total", base_expired),
        lockdown_refusals_total: delta("situate_lockdown_refusals_total", base_lockdown),
        constraint_refusals_total: delta("situate_constraint_refusals_total", base_constraint),
        policy_epoch_gauge_matches_status: ltam_obs::gauge_value(
            registry,
            "store_policy_epoch",
            &[],
        ) == Some(status.policy_epoch as i64),
    };

    drop(f_probe);
    drop(follower.abort().expect("stop follower"));
    drop(f_dir);

    // Phase 7 — audit completeness, read from the engine itself: every
    // audited override decision must carry the declared incident, and
    // there must be exactly as many as the wire granted.
    let engine = server.abort().expect("abort server");
    let mut audited_overrides: Vec<(SubjectId, u64)> = Vec::new();
    {
        let sharded = engine.engine();
        for s in 0..sharded.shard_count() {
            sharded.read_shard(s, |st| {
                for r in st.audit() {
                    if let Decision::GrantedOverride { incident } = r.decision {
                        audited_overrides.push((r.request.subject, incident));
                    }
                }
            });
        }
    }
    let override_audit_complete = audited_overrides.len() == overrides_granted
        && audited_overrides
            .iter()
            .all(|&(s, i)| i == INCIDENT && (0..responders).any(|m| medic_id(m) == s));
    let pre_crash_epoch = engine.policy_epoch();
    drop(engine);

    // Phase 8 — crash + recovery: the declared lockdown, the pin and
    // the constraint all come back, at the pre-crash policy epoch.
    let (engine, _alerts, _report) =
        DurableEngine::open_with_shards(dir.path(), store, shards).expect("recover store");
    let recovered = engine.engine().policy();
    let recovery_restores_declaration = recovered.situation().mode() == SituationMode::Lockdown
        && recovered.situation().is_pinned(guard_auth)
        && recovered.situation().constraints().count() == 1
        && engine.policy_epoch() == pre_crash_epoch;
    drop(recovered);
    let server = Server::start(engine, "127.0.0.1:0", config).expect("rebind after recovery");
    let addr = server.local_addr().to_string();
    let mut root = LtamClient::connect(&addr).expect("post-recovery client");
    root.hello(ROOT_SECRET).expect("post-recovery handshake");
    let recovered_decisions_hold = !root
        .check_access(Time(200), staff_id(0), office)
        .expect("staff check after recovery")
        && root
            .check_access(Time(200), guard, office)
            .expect("guard check after recovery");
    drop(server.abort().expect("stop server"));

    if json {
        let report = SituationsReport {
            experiment: "situations",
            staff,
            responders,
            shards,
            scoped_token_refused,
            policy_epoch_bumps,
            enforcement_epoch_moved,
            overrides_granted,
            override_audit_complete,
            bystander_still_denied,
            override_expired_denied,
            lockdown_refused,
            pinned_grant_survives_lockdown,
            sod_refused,
            sod_clean_subject_granted,
            follower_converged,
            follower_state_match,
            follower_rebootstraps,
            recovery_restores_declaration,
            recovered_decisions_hold,
            metrics,
        };
        println!(
            "{}",
            serde_json::to_string(&report).expect("report serializes")
        );
    } else {
        banner("Extension: situation-aware enforcement drill");
        println!(
            "{staff} staff, {responders} responders, {shards} shards; {situation_ops} situation ops declared over the wire"
        );
        println!(
            "admin gate: ingest-scoped KIND_SITUATION frame {}",
            if scoped_token_refused {
                "refused PermissionDenied"
            } else {
                "NOT refused (BUG)"
            }
        );
        println!(
            "epochs: policy +{policy_epoch_bumps} (expected {situation_ops} situation ops + 0), enforcement {}",
            if enforcement_epoch_moved { "MOVED (BUG)" } else { "untouched" }
        );
        println!(
            "emergency I{INCIDENT}: {overrides_granted}/{responders} responder denials overridden; audit complete: {}; bystander denied: {}",
            if override_audit_complete { "YES" } else { "NO" },
            if bystander_still_denied { "YES" } else { "NO" }
        );
        println!(
            "auto-expiry at t>until: responder denied again: {}",
            if override_expired_denied { "YES" } else { "NO" }
        );
        println!(
            "lockdown: staff refused: {}; pinned guard grant survives: {}",
            if lockdown_refused { "YES" } else { "NO" },
            if pinned_grant_survives_lockdown {
                "YES"
            } else {
                "NO"
            }
        );
        println!(
            "separation of duty: tainted refused: {}; untainted granted: {}",
            if sod_refused { "YES" } else { "NO" },
            if sod_clean_subject_granted {
                "YES"
            } else {
                "NO"
            }
        );
        println!(
            "follower: converged: {}; state match (violations, digest, epochs): {}; re-bootstraps: {follower_rebootstraps}",
            if follower_converged { "YES" } else { "NO" },
            if follower_state_match { "YES" } else { "NO" }
        );
        println!(
            "crash + recovery: declaration restored: {}; recovered wire decisions hold: {}",
            if recovery_restores_declaration {
                "YES"
            } else {
                "NO"
            },
            if recovered_decisions_hold {
                "YES"
            } else {
                "NO"
            }
        );
        println!(
            "metrics: scrape {}; mode gauge {}; overrides {} / expired {} / lockdown {} / constraint {} (x2: primary + follower); epoch gauge matches status: {}",
            if metrics.scrape_valid { "VALID" } else { "INVALID" },
            metrics.mode_gauge,
            metrics.overrides_total,
            metrics.override_expired_total,
            metrics.lockdown_refusals_total,
            metrics.constraint_refusals_total,
            if metrics.policy_epoch_gauge_matches_status { "YES" } else { "NO" }
        );
    }

    let mut failed = false;
    if !scoped_token_refused {
        eprintln!("situations drill FAILED: a non-admin token declared a situation");
        failed = true;
    }
    if policy_epoch_bumps != situation_ops || enforcement_epoch_moved {
        eprintln!(
            "situations drill FAILED: epochs moved wrong (policy +{policy_epoch_bumps} for {situation_ops} ops, enforcement moved: {enforcement_epoch_moved})"
        );
        failed = true;
    }
    if overrides_granted != responders || !override_audit_complete || !bystander_still_denied {
        eprintln!(
            "situations drill FAILED: overrides leaked, went missing, or lost their incident id"
        );
        failed = true;
    }
    if !override_expired_denied {
        eprintln!("situations drill FAILED: the emergency did not auto-expire on the event clock");
        failed = true;
    }
    if !lockdown_refused || !pinned_grant_survives_lockdown {
        eprintln!("situations drill FAILED: lockdown default-deny or the pinned exception broke");
        failed = true;
    }
    if !sod_refused || !sod_clean_subject_granted {
        eprintln!("situations drill FAILED: separation of duty misfired");
        failed = true;
    }
    if !follower_converged || !follower_state_match || follower_rebootstraps != 0 {
        eprintln!("situations drill FAILED: the follower diverged or re-bootstrapped on a situation record");
        failed = true;
    }
    if !recovery_restores_declaration || !recovered_decisions_hold {
        eprintln!("situations drill FAILED: crash + recovery lost the declaration");
        failed = true;
    }
    if !metrics.scrape_valid
        || metrics.mode_gauge != 2
        || metrics.overrides_total != 2 * responders as i64
        || metrics.override_expired_total != 2
        || metrics.lockdown_refusals_total != 2
        || metrics.constraint_refusals_total != 2
        || !metrics.policy_epoch_gauge_matches_status
    {
        eprintln!("situations drill FAILED: the situation metrics do not tell the same story");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
