//! Durability-layer costs: WAL append throughput and recovery latency.
//!
//! * `wal_append` — raw segmented-log appends (codec + CRC + buffered
//!   write, fsync off so the bench measures the store code, not the
//!   device) for 10k-event batches.
//! * `durable_ingest` — the full durable path (WAL append then sharded
//!   enforcement) against plain `ShardedEngine::ingest`, i.e. what
//!   durability costs per event end to end.
//! * `recovery` — `DurableEngine::open` on a prepared store: snapshot
//!   load + WAL-tail replay of half the trace.
//!
//! `repro durability` reports the same drill with fsync on and a torn
//! WAL tail.

use criterion::{criterion_group, criterion_main, Criterion};
use ltam_bench::throughput_workload;
use ltam_sim::{multi_shard_trace, TraceWorld};
use ltam_store::{DurableEngine, ScratchDir, StoreConfig, Wal, WalConfig};
use std::time::Duration;

const SHARDS: usize = 4;

fn bench_trace() -> TraceWorld {
    multi_shard_trace(&throughput_workload(128, 10_000))
}

fn store_config() -> StoreConfig {
    StoreConfig {
        segment_bytes: 256 * 1024,
        snapshot_every: 0,
        fsync: false,
        retention: None,
    }
}

fn wal_append(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("durability");
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("wal_append_10k", |b| {
        b.iter_batched(
            || ScratchDir::new("bench-append"),
            |dir| {
                let config = WalConfig {
                    segment_bytes: 256 * 1024,
                    fsync: false,
                };
                let (mut wal, _) = Wal::open(dir.path(), config).expect("open WAL");
                for chunk in trace.events.chunks(512) {
                    wal.append_batch(chunk).expect("append");
                }
                wal.next_seq()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("durable_ingest_10k", |b| {
        b.iter_batched(
            || {
                let dir = ScratchDir::new("bench-durable");
                let (durable, _alerts) = DurableEngine::create(
                    dir.path(),
                    trace.build_policy_core(),
                    SHARDS,
                    store_config(),
                )
                .expect("create store");
                (dir, durable)
            },
            |(_dir, mut durable)| {
                for chunk in trace.events.chunks(512) {
                    durable.ingest(chunk).expect("ingest");
                }
                durable.applied()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("volatile_ingest_10k", |b| {
        b.iter_batched(
            || trace.build_sharded(SHARDS).0,
            |engine| {
                for chunk in trace.events.chunks(512) {
                    engine.ingest(chunk);
                }
                engine.violation_count()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn recovery(c: &mut Criterion) {
    let trace = bench_trace();
    // Prepare one store: snapshot at half the trace, WAL tail for the
    // rest — so recovery = snapshot load + 5k-event replay.
    let base = ScratchDir::new("bench-recovery-base");
    {
        let (mut durable, _alerts) = DurableEngine::create(
            base.path(),
            trace.build_policy_core(),
            SHARDS,
            store_config(),
        )
        .expect("create store");
        let half = trace.events.len() / 2;
        durable.ingest(&trace.events[..half]).expect("first half");
        durable.snapshot().expect("snapshot");
        durable.ingest(&trace.events[half..]).expect("second half");
    }
    let mut group = c.benchmark_group("durability");
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("recover_snapshot_plus_5k_tail", |b| {
        b.iter_batched(
            || {
                let dir = ScratchDir::new("bench-recovery");
                ltam_store::copy_flat_dir(base.path(), dir.path()).expect("copy store");
                dir
            },
            |dir| {
                let (durable, _alerts, report) =
                    DurableEngine::open(dir.path(), store_config()).expect("recover");
                assert_eq!(report.replayed, trace.events.len() - trace.events.len() / 2);
                durable.applied()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = wal_append, recovery
}
criterion_main!(benches);
