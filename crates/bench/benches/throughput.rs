//! Sharded batch ingestion vs the global-lock engine, at 1–8 shards.
//!
//! Both paths process the same pre-materialized multi-shard trace
//! (`ltam_sim::multi_shard_trace`). The global-lock path partitions the
//! trace by subject across T sensor threads that all contend on one
//! `SharedEngine` write lock — the Figure 3 deployment before this
//! refactor. The sharded path hands the whole batch to
//! `ShardedEngine::ingest`, which fans groups out to per-shard worker
//! threads over crossbeam channels.
//!
//! The shape to check: at 1 shard the two are comparable (sharding pays
//! a small channel/merge overhead); from 4 shards up batch ingestion
//! pulls ahead because card swipes for different subjects stop
//! serializing against each other.
//!
//! `repro throughput` reports the same comparison as events/sec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltam_bench::{drive_shared, partition_events, throughput_workload};
use ltam_sim::{multi_shard_trace, TraceWorld};
use std::time::Duration;

fn bench_trace() -> TraceWorld {
    multi_shard_trace(&throughput_workload(256, 20_000))
}

fn ingestion(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("throughput");
    for &shards in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("global_lock", shards),
            &shards,
            |b, &threads| {
                b.iter_batched(
                    || {
                        (
                            trace.build_shared().0,
                            partition_events(&trace.events, threads),
                        )
                    },
                    |(shared, groups)| {
                        std::thread::scope(|scope| {
                            for g in &groups {
                                let shared = shared.clone();
                                scope.spawn(move || drive_shared(&shared, g));
                            }
                        });
                        shared.violation_count()
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &shards,
            |b, &shards| {
                b.iter_batched(
                    || trace.build_sharded(shards).0,
                    |engine| {
                        let outcome = engine.ingest(&trace.events);
                        outcome.violations.len()
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = ingestion
}
criterion_main!(benches);
