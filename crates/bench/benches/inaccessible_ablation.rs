//! Ablation: Algorithm 1's fixpoint vs the naive §6 baseline
//! (route enumeration + per-route authorization chain).
//!
//! The shape to check: the fixpoint stays near-linear in graph size while
//! the naive enumeration blows up combinatorially — the crossover arrives
//! within the first few sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltam_core::inaccessible::{find_inaccessible, find_inaccessible_naive};
use ltam_sim::scaling_instance;
use std::hint::black_box;
use std::time::Duration;

fn fixpoint_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("inaccessible");
    for &n in &[4usize, 6, 8, 10, 12] {
        let (world, auths) = scaling_instance(n, 3, 2, 7);
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &n, |b, _| {
            b.iter(|| black_box(find_inaccessible(&world.graph, &auths)))
        });
        group.bench_with_input(BenchmarkId::new("naive_routes", n), &n, |b, _| {
            b.iter(|| {
                black_box(find_inaccessible_naive(
                    &world.graph,
                    &auths,
                    world.graph.len(),
                    100_000,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = fixpoint_vs_naive
}
criterion_main!(benches);
