//! Route search over the NTU campus (Figure 2) and generated buildings:
//! BFS shortest routes, bounded all-routes enumeration (the §4
//! `all_route_from` operator), and route authorization (§6 chain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltam_core::duration::authorize_route;
use ltam_core::model::{Authorization, EntryLimit};
use ltam_core::subject::SubjectId;
use ltam_graph::examples::ntu_campus;
use ltam_graph::{route, EffectiveGraph};
use ltam_sim::grid_building;
use ltam_time::Interval;
use std::hint::black_box;
use std::time::Duration;

fn shortest(c: &mut Criterion) {
    let mut group = c.benchmark_group("routes/shortest");
    let ntu = ntu_campus();
    let g = EffectiveGraph::build(&ntu.model);
    group.bench_function("ntu_eee_dean_to_cais", |b| {
        b.iter(|| black_box(route::shortest_route(&g, ntu.eee_dean, ntu.cais)))
    });
    for &side in &[8usize, 16, 32] {
        let world = grid_building(side, side);
        let src = world.graph.global_entries()[0];
        let dst = world.graph.locations().last().expect("non-empty grid");
        group.bench_with_input(BenchmarkId::new("grid_corner", side), &side, |b, _| {
            b.iter(|| black_box(route::shortest_route(&world.graph, src, dst)))
        });
    }
    group.finish();
}

fn enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("routes/all_routes");
    let ntu = ntu_campus();
    let g = EffectiveGraph::build(&ntu.model);
    group.bench_function("ntu_go_to_cais", |b| {
        b.iter(|| black_box(route::all_routes(&g, ntu.sce_go, ntu.cais, 64, 4096)))
    });
    let world = grid_building(4, 4);
    let src = world.graph.global_entries()[0];
    let dst = world.graph.locations().last().expect("non-empty grid");
    group.bench_function("grid4x4_corner_bounded", |b| {
        b.iter(|| black_box(route::all_routes(&world.graph, src, dst, 10, 1000)))
    });
    group.finish();
}

fn authorization_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("routes/authorize");
    let world = grid_building(16, 16);
    let src = world.graph.global_entries()[0];
    let dst = world.graph.locations().last().expect("non-empty grid");
    let path = route::shortest_route(&world.graph, src, dst).expect("grid is connected");
    let auths: std::collections::BTreeMap<_, Vec<Authorization>> = world
        .graph
        .locations()
        .map(|l| {
            (
                l,
                vec![Authorization::new(
                    Interval::ALL,
                    Interval::ALL,
                    SubjectId(0),
                    l,
                    EntryLimit::Unbounded,
                )
                .expect("valid")],
            )
        })
        .collect();
    group.bench_function("grid16x16_diagonal", |b| {
        b.iter(|| {
            black_box(authorize_route(path.locations(), Interval::ALL, |l| {
                auths.get(&l).map(Vec::as_slice).unwrap_or(&[])
            }))
        })
    });
    group.finish();
}

fn planner(c: &mut Criterion) {
    use ltam_core::planner::{earliest_visit, earliest_visit_all};
    use ltam_sim::scaling_instance;
    use ltam_time::Time;
    let mut group = c.benchmark_group("routes/planner");
    for &n in &[32usize, 128, 512] {
        let (world, auths) = scaling_instance(n, 4, 2, 11);
        let target = world.graph.locations().last().expect("non-empty graph");
        group.bench_with_input(BenchmarkId::new("earliest_visit", n), &n, |b, _| {
            b.iter(|| black_box(earliest_visit(&world.graph, &auths, target, Time(0))))
        });
        group.bench_with_input(BenchmarkId::new("earliest_visit_all", n), &n, |b, _| {
            b.iter(|| black_box(earliest_visit_all(&world.graph, &auths, Time(0))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = shortest, enumeration, authorization_chain, planner
}
criterion_main!(benches);
