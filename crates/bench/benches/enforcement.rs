//! Figure 3 architecture throughput: request → enter → exit cycles through
//! the LTAM engine vs the card-reader baseline, at varying authorization
//! database sizes.
//!
//! The shape to check: both are fast; LTAM pays a small constant for
//! movement monitoring (pending grants, ledger, violation scan), which is
//! the price of catching what the baseline cannot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltam_core::model::{Authorization, EntryLimit};
use ltam_core::subject::SubjectId;
use ltam_engine::baseline::{CardReaderEngine, Enforcement};
use ltam_engine::engine::AccessControlEngine;
use ltam_sim::grid_building;
use ltam_time::{Interval, Time};
use std::hint::black_box;
use std::time::Duration;

fn open_auth(s: SubjectId, l: ltam_graph::LocationId) -> Authorization {
    Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded)
        .expect("open windows are valid")
}

fn request_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("enforcement/cycle");
    for &subjects in &[1usize, 16, 64] {
        let world = grid_building(8, 8);
        let target = world.graph.global_entries()[0];

        let mut ltam = AccessControlEngine::new(world.model.clone());
        let mut reader = CardReaderEngine::new(world.model.clone());
        for k in 0..subjects as u32 {
            ltam.profiles_mut().add_user(format!("u{k}"), "sim");
            for l in world.graph.locations() {
                ltam.add_authorization(open_auth(SubjectId(k), l));
                reader.add_authorization(open_auth(SubjectId(k), l));
            }
        }

        let mut t = 0u64;
        group.bench_with_input(BenchmarkId::new("ltam", subjects), &subjects, |b, &n| {
            b.iter(|| {
                let s = SubjectId((t % n as u64) as u32);
                let now = Time(t);
                let d = ltam.request_enter(now, s, target);
                if d.is_granted() {
                    ltam.observe_enter(now, s, target);
                    ltam.observe_exit(now, s, target);
                }
                ltam.tick(now);
                t += 1;
                black_box(d)
            })
        });
        let mut t2 = 0u64;
        group.bench_with_input(
            BenchmarkId::new("card_reader", subjects),
            &subjects,
            |b, &n| {
                b.iter(|| {
                    let s = SubjectId((t2 % n as u64) as u32);
                    let now = Time(t2);
                    let d = reader.request_enter(now, s, target);
                    if d.is_granted() {
                        reader.observe_enter(now, s, target);
                        reader.observe_exit(now, s, target);
                    }
                    reader.tick(now);
                    t2 += 1;
                    black_box(d)
                })
            },
        );
    }
    group.finish();
}

fn decision_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("enforcement/decision");
    for &db_size in &[10usize, 100, 1000] {
        let world = grid_building(8, 8);
        let locs: Vec<_> = world.graph.locations().collect();
        let mut engine = AccessControlEngine::new(world.model.clone());
        engine.profiles_mut().add_user("u0", "sim");
        for k in 0..db_size {
            engine.add_authorization(open_auth(SubjectId(0), locs[k % locs.len()]));
        }
        let target = locs[0];
        group.bench_with_input(BenchmarkId::from_parameter(db_size), &db_size, |b, _| {
            b.iter(|| black_box(engine.request_enter(Time(5), SubjectId(0), target)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = request_cycle, decision_only
}
criterion_main!(benches);
