//! Ablation: the authorization database's interval-tree index vs a linear
//! scan, for the stabbing queries behind Definition 7 and administrator
//! time-slice queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltam_time::{Interval, IntervalTree, Time};
use std::hint::black_box;
use std::time::Duration;

fn make_intervals(n: usize) -> Vec<Interval> {
    // Deterministic xorshift; windows of width ≤ 100 over a horizon of 10·n.
    let mut x = 0x9E37_79B9_u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..n)
        .map(|_| {
            let a = next() % (10 * n as u64);
            Interval::lit(a, a + next() % 100)
        })
        .collect()
}

fn stabbing(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_index/stab");
    for &n in &[100usize, 1_000, 10_000] {
        let intervals = make_intervals(n);
        let mut tree = IntervalTree::new();
        for (k, &iv) in intervals.iter().enumerate() {
            tree.insert(iv, k);
        }
        let probe = Time(5 * n as u64);
        group.bench_with_input(BenchmarkId::new("tree", n), &n, |b, _| {
            b.iter(|| black_box(tree.stab(probe)))
        });
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            b.iter(|| {
                let hits: Vec<usize> = intervals
                    .iter()
                    .enumerate()
                    .filter(|(_, iv)| iv.contains(probe))
                    .map(|(k, _)| k)
                    .collect();
                black_box(hits)
            })
        });
    }
    group.finish();
}

fn overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_index/overlap");
    for &n in &[1_000usize, 10_000] {
        let intervals = make_intervals(n);
        let mut tree = IntervalTree::new();
        for (k, &iv) in intervals.iter().enumerate() {
            tree.insert(iv, k);
        }
        let query = Interval::lit(4 * n as u64, 4 * n as u64 + 50);
        group.bench_with_input(BenchmarkId::new("tree", n), &n, |b, _| {
            b.iter(|| black_box(tree.overlapping(query)))
        });
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            b.iter(|| {
                let hits: Vec<usize> = intervals
                    .iter()
                    .enumerate()
                    .filter(|(_, iv)| iv.overlaps(query))
                    .map(|(k, _)| k)
                    .collect();
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = stabbing, overlap
}
criterion_main!(benches);
