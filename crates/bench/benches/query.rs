//! Query-engine throughput: parsing and end-to-end evaluation of each
//! query form over a populated engine.

use criterion::{criterion_group, criterion_main, Criterion};
use ltam_core::model::{Authorization, EntryLimit};
use ltam_core::subject::SubjectId;
use ltam_engine::engine::AccessControlEngine;
use ltam_engine::query;
use ltam_sim::{grid_building, rng, run_population, Behavior, Walker};
use ltam_time::Interval;
use std::hint::black_box;
use std::time::Duration;

fn populated_engine() -> AccessControlEngine {
    let world = grid_building(6, 6);
    let mut engine = AccessControlEngine::new(world.model.clone());
    let subjects: Vec<SubjectId> = (0..8u32).map(SubjectId).collect();
    for (i, &s) in subjects.iter().enumerate() {
        engine.profiles_mut().add_user(format!("user{i}"), "sim");
        for l in world.graph.locations() {
            engine.add_authorization(
                Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded)
                    .expect("valid"),
            );
        }
    }
    let mut walkers: Vec<Walker> = subjects
        .iter()
        .map(|&s| Walker::new(s, Behavior::Compliant { max_stay: 3 }))
        .collect();
    let mut r = rng(42);
    run_population(&mut walkers, &world.graph, &mut engine, 200, &mut r);
    engine
}

fn parse_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/parse");
    for (name, q) in [
        ("accessible", "ACCESSIBLE FOR user0"),
        ("can_enter", "CAN user0 ENTER R3_3 AT 100"),
        ("contacts", "CONTACTS OF user0 DURING [0, 200]"),
        ("violations", "VIOLATIONS FOR user0 DURING [0, inf]"),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(query::parse(q))));
    }
    group.finish();
}

fn evaluate(c: &mut Criterion) {
    let engine = populated_engine();
    let mut group = c.benchmark_group("query/eval");
    for (name, q) in [
        ("accessible", "ACCESSIBLE FOR user0"),
        ("can_enter", "CAN user0 ENTER R3_3 AT 100"),
        ("who_in", "WHO IN R0_0 DURING [0, 200]"),
        ("where_is", "WHERE user0 AT 100"),
        ("contacts", "CONTACTS OF user0 DURING [0, 200]"),
        ("violations", "VIOLATIONS"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(engine.query(q).expect("query evaluates")))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = parse_only, evaluate
}
criterion_main!(benches);
