//! §4 rule-derivation throughput: evaluating `Supervisor_Of` and
//! `all_route_from` rules over growing authorization databases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltam_core::model::{Authorization, EntryLimit};
use ltam_core::rules::{LocationOp, OpTuple, Rule, StaticProfiles, SubjectOp};
use ltam_core::subject::SubjectId;
use ltam_core::{AuthorizationDb, RuleEngine};
use ltam_graph::examples::ntu_campus;
use ltam_graph::EffectiveGraph;
use ltam_time::{Interval, Time};
use std::hint::black_box;
use std::time::Duration;

fn derivation_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("rules/apply_all");
    let ntu = ntu_campus();
    let graph = EffectiveGraph::build(&ntu.model);
    for &n_rules in &[1usize, 10, 100] {
        // n_rules subjects, each with a base authorization on CAIS and a
        // supervisor; one Supervisor_Of rule per base.
        let mut db = AuthorizationDb::new();
        let mut profiles = StaticProfiles::default();
        let mut engine = RuleEngine::new();
        for k in 0..n_rules as u32 {
            let subject = SubjectId(k);
            let supervisor = SubjectId(k + n_rules as u32);
            profiles.supervisors.insert(subject, supervisor);
            let base = db.insert(
                Authorization::new(
                    Interval::lit(5, 20),
                    Interval::lit(15, 50),
                    subject,
                    ntu.cais,
                    EntryLimit::Finite(2),
                )
                .expect("valid"),
            );
            engine.add_rule(Rule {
                valid_from: Time(7),
                base,
                ops: OpTuple {
                    subject_op: SubjectOp::SupervisorOf,
                    ..OpTuple::default()
                },
            });
        }
        group.bench_with_input(BenchmarkId::new("supervisor", n_rules), &n_rules, |b, _| {
            b.iter(|| {
                let mut fresh = AuthorizationDb::import(db.export());
                black_box(engine.apply_all(&mut fresh, &profiles, &graph))
            })
        });
    }
    group.finish();
}

fn route_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("rules/all_route_from");
    let ntu = ntu_campus();
    let graph = EffectiveGraph::build(&ntu.model);
    let mut db = AuthorizationDb::new();
    let base = db.insert(
        Authorization::new(
            Interval::lit(5, 20),
            Interval::lit(15, 50),
            SubjectId(0),
            ntu.cais,
            EntryLimit::Finite(2),
        )
        .expect("valid"),
    );
    let profiles = StaticProfiles::default();
    let engine = RuleEngine::new();
    let rule = Rule {
        valid_from: Time(7),
        base,
        ops: OpTuple {
            location_op: LocationOp::AllRouteFrom { source: ntu.sce_go },
            ..OpTuple::default()
        },
    };
    group.bench_function("ntu_sce_go_to_cais", |b| {
        b.iter(|| {
            black_box(
                engine
                    .derive(&rule, &db, &profiles, &graph)
                    .expect("derives"),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = derivation_pass, route_expansion
}
criterion_main!(benches);
