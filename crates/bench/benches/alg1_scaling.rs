//! §6 complexity claim: Algorithm 1 is `O(N_L² · N_d · N_a)`.
//!
//! Three sweeps hold two parameters fixed and scale the third:
//! graph size `N_L`, maximum degree `N_d`, and authorizations per
//! location `N_a`. The *shape* to check: superlinear (≈quadratic) growth
//! in `N_L`, roughly linear growth in `N_d` and `N_a`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltam_core::inaccessible::find_inaccessible;
use ltam_sim::scaling_instance;
use std::hint::black_box;
use std::time::Duration;

fn sweep_locations(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1/N_L");
    for &n in &[16usize, 32, 64, 128, 256] {
        let (world, auths) = scaling_instance(n, 4, 2, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(find_inaccessible(&world.graph, &auths)))
        });
    }
    group.finish();
}

fn sweep_degree(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1/N_d");
    for &d in &[2usize, 4, 8, 16] {
        let (world, auths) = scaling_instance(96, d, 2, 42);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| black_box(find_inaccessible(&world.graph, &auths)))
        });
    }
    group.finish();
}

fn sweep_auths(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1/N_a");
    for &a in &[1usize, 2, 4, 8] {
        let (world, auths) = scaling_instance(96, 4, a, 42);
        group.bench_with_input(BenchmarkId::from_parameter(a), &a, |b, _| {
            b.iter(|| black_box(find_inaccessible(&world.graph, &auths)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = sweep_locations, sweep_degree, sweep_auths
}
criterion_main!(benches);
