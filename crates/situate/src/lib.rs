//! # ltam-situate — the situation overlay on LTAM enforcement
//!
//! LTAM's authorizations (Yu & Lim, SDM 2004) are static
//! `(subject, location, interval)` tuples, but the paper's own hospital
//! and campus scenarios change wholesale when an incident is declared:
//! who may go where under a fire alarm or an active lockdown is not the
//! same question as on a quiet Tuesday. This crate supplies the
//! *situation axis* the paper leaves open, following the temporal
//! framework's 6-tuple situation model (NORMAL / EMERGENCY / LOCKDOWN
//! with audited, ticket-bound emergency overrides) and the workflow
//! constraints of *Security Constraints in Temporal Role-Based
//! Access-Controlled Workflows*:
//!
//! * [`SituationMode`] — the declared mode. `Normal` leaves the base
//!   decision untouched; `Emergency` lets registered *responders*
//!   bypass denials (every override is flagged with the authorizing
//!   [`IncidentId`] and auto-expires on the monitoring clock);
//!   `Lockdown` inverts default-allow into default-deny except for
//!   explicitly *pinned* authorizations.
//! * [`WorkflowConstraint`] — temporal separation-of-duty,
//!   binding-of-duty and ordered-step constraints evaluated inline on
//!   the enforcement path against the subject's own movement history.
//!   Constraints bind in **every** mode: an emergency override can
//!   bypass a missing authorization, never a safety constraint.
//! * [`SituationPolicy`] — the epoch-swappable overlay state an
//!   enforcement policy core carries, edited by durable
//!   [`SituationOp`]s exactly like the serving tier's admin records.
//! * [`judge`] — the pure decision rewrite: base decision in, situated
//!   decision out, plus a [`SituationEffect`] the caller can count.
//!
//! Everything here is deterministic in the event time `t` — never the
//! wall clock — so a replica replaying the same event stream under the
//! same declared situation reaches byte-identical decisions.

#![warn(missing_docs)]

use ltam_core::db::AuthId;
use ltam_core::decision::{Decision, DenyReason};
use ltam_core::subject::SubjectId;
use ltam_graph::LocationId;
use ltam_time::Time;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The incident ticket authorizing an emergency declaration. Every
/// override decision taken under the emergency carries this id into the
/// audit trail, so each bypass is attributable to the declaration that
/// allowed it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct IncidentId(pub u64);

impl fmt::Display for IncidentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

/// Identifier of an installed [`WorkflowConstraint`] (dense, assigned
/// by [`SituationPolicy::apply`], never reissued).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConstraintId(pub u32);

impl fmt::Display for ConstraintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// The declared situation. Declarations replace each other wholesale —
/// declaring `Normal` clears an emergency or lockdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SituationMode {
    /// No situation: base LTAM decisions stand untouched.
    #[default]
    Normal,
    /// A declared emergency: responders' denials are rewritten into
    /// override grants flagged with `incident`, until the monitoring
    /// clock passes `until` (the declaration then lapses on its own —
    /// an operator who forgets to clear it cannot leave the bypass
    /// open forever).
    Emergency {
        /// The authorizing incident ticket, stamped on every override.
        incident: IncidentId,
        /// Last chronon (inclusive) the declaration is live on the
        /// monitoring clock.
        until: Time,
    },
    /// Default-deny: every grant is refused unless its authorization
    /// is explicitly pinned. Denials keep their base reason.
    Lockdown,
}

impl fmt::Display for SituationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SituationMode::Normal => write!(f, "normal"),
            SituationMode::Emergency { incident, until } => {
                write!(f, "emergency({incident}, until {until})")
            }
            SituationMode::Lockdown => write!(f, "lockdown"),
        }
    }
}

/// The mode actually in force at a given time: a declared
/// [`SituationMode::Emergency`] whose `until` has passed behaves as
/// `Normal` (auto-expiry), without anyone editing the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectiveMode {
    /// Base decisions stand.
    Normal,
    /// Overrides live, attributable to this incident.
    Emergency(IncidentId),
    /// Default-deny in force.
    Lockdown,
}

/// A temporal workflow constraint, evaluated at decision time against
/// the requesting subject's own movement history. `window` is in
/// chronons, looking back from the request time (an entry at `t - w`
/// is still inside a window of `w`).
///
/// All three variants are per-subject by construction — they relate a
/// subject's request to *that subject's* past entries — so a sharded
/// engine can evaluate them entirely shard-locally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkflowConstraint {
    /// The subject who entered `first` may not enter `second` within
    /// `window` chronons — the pharmacist who unlocked the pharmacy
    /// cannot also sign out controlled stock in the same shift.
    /// Directional: entering `second` never blocks `first`.
    SeparationOfDuty {
        /// The tainting step.
        first: LocationId,
        /// The refused step.
        second: LocationId,
        /// Look-back window, in chronons.
        window: u64,
    },
    /// The subject may enter `dependent` only having themselves entered
    /// `prerequisite` within `window` chronons — whoever signs out
    /// stock must be the one who checked in at the duty station first.
    BindingOfDuty {
        /// The step that must have happened.
        prerequisite: LocationId,
        /// The step it unlocks.
        dependent: LocationId,
        /// Look-back window, in chronons.
        window: u64,
    },
    /// Each listed step (after the first) requires the subject to have
    /// entered the previous step within `window` chronons. Locations
    /// not listed are unconstrained.
    OrderedSteps {
        /// The steps, in required order.
        steps: Vec<LocationId>,
        /// Per-step look-back window, in chronons.
        window: u64,
    },
}

fn window_start(t: Time, window: u64) -> Time {
    Time(t.get().saturating_sub(window))
}

impl WorkflowConstraint {
    /// Would entering `location` at `t` satisfy this constraint?
    ///
    /// `entered(l, since)` must answer "did the requesting subject
    /// physically enter `l` at some chronon in `[since, t]`" — the
    /// enforcement layer closes this over its movement timeline.
    pub fn admits(
        &self,
        location: LocationId,
        t: Time,
        entered: &dyn Fn(LocationId, Time) -> bool,
    ) -> bool {
        match self {
            WorkflowConstraint::SeparationOfDuty {
                first,
                second,
                window,
            } => location != *second || !entered(*first, window_start(t, *window)),
            WorkflowConstraint::BindingOfDuty {
                prerequisite,
                dependent,
                window,
            } => location != *dependent || entered(*prerequisite, window_start(t, *window)),
            WorkflowConstraint::OrderedSteps { steps, window } => {
                match steps.iter().position(|&s| s == location) {
                    None | Some(0) => true,
                    Some(i) => entered(steps[i - 1], window_start(t, *window)),
                }
            }
        }
    }
}

/// A durable situation edit — the situation counterpart of the serving
/// tier's `AdminOp`: WAL-logged, snapshotted immediately, replicated to
/// followers in-stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SituationOp {
    /// Replace the declared mode (declaring [`SituationMode::Normal`]
    /// clears an emergency or lockdown).
    Declare(SituationMode),
    /// Register an emergency responder (their denials are overridden
    /// while an emergency is live).
    AddResponder(SubjectId),
    /// Remove a responder.
    RemoveResponder(SubjectId),
    /// Pin an authorization: it keeps granting under lockdown.
    Pin(AuthId),
    /// Unpin an authorization.
    Unpin(AuthId),
    /// Install a workflow constraint; the outcome carries its id.
    AddConstraint(WorkflowConstraint),
    /// Remove an installed constraint by id.
    RemoveConstraint(ConstraintId),
}

/// What a [`SituationOp`] did (returned over the wire to the declaring
/// admin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SituationOutcome {
    /// The mode now in force.
    Declared {
        /// The declared mode.
        mode: SituationMode,
    },
    /// Responder registered (`false`: already registered).
    ResponderAdded {
        /// Whether the set changed.
        added: bool,
    },
    /// Responder removed (`false`: was not registered).
    ResponderRemoved {
        /// Whether the subject was registered.
        existed: bool,
    },
    /// Authorization pinned (`false`: already pinned).
    Pinned {
        /// Whether the set changed.
        added: bool,
    },
    /// Authorization unpinned (`false`: was not pinned).
    Unpinned {
        /// Whether the authorization was pinned.
        existed: bool,
    },
    /// Constraint installed under this id.
    ConstraintAdded {
        /// The new constraint's id.
        id: ConstraintId,
    },
    /// Constraint removed (`false`: id unknown).
    ConstraintRemoved {
        /// Whether the id was installed.
        existed: bool,
    },
}

/// The epoch-swappable situation overlay a policy core carries: the
/// declared mode, the responder and pinned sets, and the installed
/// workflow constraints. All collections are ordered so equal policies
/// serialize byte-identically (snapshot determinism).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SituationPolicy {
    mode: SituationMode,
    responders: BTreeSet<SubjectId>,
    pinned: BTreeSet<AuthId>,
    constraints: BTreeMap<u32, WorkflowConstraint>,
    next_constraint: u32,
}

impl SituationPolicy {
    /// A fresh overlay: mode `Normal`, nothing registered.
    pub fn new() -> SituationPolicy {
        SituationPolicy::default()
    }

    /// The declared (not necessarily effective) mode.
    pub fn mode(&self) -> SituationMode {
        self.mode
    }

    /// The mode in force at `t`: a declared emergency past its `until`
    /// has lapsed and behaves as `Normal`.
    pub fn effective(&self, t: Time) -> EffectiveMode {
        match self.mode {
            SituationMode::Normal => EffectiveMode::Normal,
            SituationMode::Emergency { incident, until } => {
                if t <= until {
                    EffectiveMode::Emergency(incident)
                } else {
                    EffectiveMode::Normal
                }
            }
            SituationMode::Lockdown => EffectiveMode::Lockdown,
        }
    }

    /// True when an emergency is declared but has auto-expired at `t`
    /// (the enforcement layer counts denials that would have been
    /// overridden a chronon earlier).
    pub fn lapsed_emergency(&self, t: Time) -> bool {
        matches!(self.mode, SituationMode::Emergency { until, .. } if t > until)
    }

    /// Is `subject` a registered emergency responder?
    pub fn is_responder(&self, subject: SubjectId) -> bool {
        self.responders.contains(&subject)
    }

    /// Does `auth` keep granting under lockdown?
    pub fn is_pinned(&self, auth: AuthId) -> bool {
        self.pinned.contains(&auth)
    }

    /// The registered responders, ordered.
    pub fn responders(&self) -> impl Iterator<Item = SubjectId> + '_ {
        self.responders.iter().copied()
    }

    /// The pinned authorizations, ordered.
    pub fn pinned(&self) -> impl Iterator<Item = AuthId> + '_ {
        self.pinned.iter().copied()
    }

    /// The installed constraints, ordered by id.
    pub fn constraints(&self) -> impl Iterator<Item = (ConstraintId, &WorkflowConstraint)> + '_ {
        self.constraints
            .iter()
            .map(|(&id, c)| (ConstraintId(id), c))
    }

    /// True when the overlay cannot change any decision: mode `Normal`
    /// (declared, so no expiry bookkeeping either) and no constraints.
    /// The enforcement hot path skips [`judge`] entirely then.
    pub fn is_inert(&self) -> bool {
        self.mode == SituationMode::Normal && self.constraints.is_empty()
    }

    /// The first installed constraint refusing entry to `location` at
    /// `t`, if any (ids are checked in order, so refusals are
    /// deterministic).
    pub fn refused_by_constraint(
        &self,
        location: LocationId,
        t: Time,
        entered: &dyn Fn(LocationId, Time) -> bool,
    ) -> Option<ConstraintId> {
        self.constraints
            .iter()
            .find(|(_, c)| !c.admits(location, t, entered))
            .map(|(&id, _)| ConstraintId(id))
    }

    /// May a previously issued grant under `auth` still admit entry at
    /// `t`? Lockdown voids unpinned grants — including those issued
    /// *before* the lockdown was declared.
    pub fn admits_entry_under(&self, auth: AuthId, t: Time) -> bool {
        !matches!(self.effective(t), EffectiveMode::Lockdown) || self.is_pinned(auth)
    }

    /// Is an override grant issued under `incident` still live at `t`?
    /// Overrides die with their emergency: expiry or a new declaration
    /// voids them at the door.
    pub fn override_live(&self, incident: IncidentId, t: Time) -> bool {
        matches!(self.effective(t), EffectiveMode::Emergency(i) if i == incident)
    }

    /// Apply a durable situation edit.
    pub fn apply(&mut self, op: &SituationOp) -> SituationOutcome {
        match op {
            SituationOp::Declare(mode) => {
                self.mode = *mode;
                SituationOutcome::Declared { mode: *mode }
            }
            SituationOp::AddResponder(s) => SituationOutcome::ResponderAdded {
                added: self.responders.insert(*s),
            },
            SituationOp::RemoveResponder(s) => SituationOutcome::ResponderRemoved {
                existed: self.responders.remove(s),
            },
            SituationOp::Pin(a) => SituationOutcome::Pinned {
                added: self.pinned.insert(*a),
            },
            SituationOp::Unpin(a) => SituationOutcome::Unpinned {
                existed: self.pinned.remove(a),
            },
            SituationOp::AddConstraint(c) => {
                let id = self.next_constraint;
                self.next_constraint += 1;
                self.constraints.insert(id, c.clone());
                SituationOutcome::ConstraintAdded {
                    id: ConstraintId(id),
                }
            }
            SituationOp::RemoveConstraint(id) => SituationOutcome::ConstraintRemoved {
                existed: self.constraints.remove(&id.0).is_some(),
            },
        }
    }

    /// The declared mode as a metrics gauge value: 0 normal,
    /// 1 emergency, 2 lockdown.
    pub fn mode_gauge(&self) -> i64 {
        match self.mode {
            SituationMode::Normal => 0,
            SituationMode::Emergency { .. } => 1,
            SituationMode::Lockdown => 2,
        }
    }
}

/// What [`judge`] did to the base decision — the enforcement layer
/// turns these into metrics counters and the audit trail carries the
/// rewritten decision itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SituationEffect {
    /// Base decision passed through untouched.
    None,
    /// A denial was rewritten into an override grant under this
    /// incident.
    Overridden(IncidentId),
    /// A responder's denial stood because the declared emergency had
    /// auto-expired at the event time.
    OverrideExpired,
    /// A base grant was refused because lockdown default-denies
    /// unpinned authorizations.
    LockdownRefused,
    /// A workflow constraint refused the entry.
    ConstraintRefused(ConstraintId),
}

/// Rewrite a base LTAM decision under the situation overlay.
///
/// Deterministic in `t` (never the wall clock) and pure: the sharded
/// engine calls this per request under one policy epoch, so a batch
/// evaluates entirely under one declared situation.
///
/// The order of business is fixed:
///
/// 1. **Workflow constraints** bind in every mode and for everyone —
///    an emergency override bypasses a missing authorization, never a
///    safety constraint.
/// 2. The **effective mode** (auto-expiry applied) then rewrites the
///    survivors: emergencies override responders' denials, lockdown
///    refuses unpinned grants, normal passes through.
pub fn judge(
    policy: &SituationPolicy,
    subject: SubjectId,
    location: LocationId,
    t: Time,
    base: Decision,
    entered: &dyn Fn(LocationId, Time) -> bool,
) -> (Decision, SituationEffect) {
    if let Some(id) = policy.refused_by_constraint(location, t, entered) {
        return (
            Decision::Denied {
                reason: DenyReason::WorkflowConstraint,
            },
            SituationEffect::ConstraintRefused(id),
        );
    }
    match policy.effective(t) {
        EffectiveMode::Normal => {
            if !base.is_granted() && policy.lapsed_emergency(t) && policy.is_responder(subject) {
                (base, SituationEffect::OverrideExpired)
            } else {
                (base, SituationEffect::None)
            }
        }
        EffectiveMode::Emergency(incident) => {
            if base.is_granted() {
                (base, SituationEffect::None)
            } else if policy.is_responder(subject) {
                (
                    Decision::GrantedOverride {
                        incident: incident.0,
                    },
                    SituationEffect::Overridden(incident),
                )
            } else {
                (base, SituationEffect::None)
            }
        }
        EffectiveMode::Lockdown => match base {
            Decision::Granted { auth } if policy.is_pinned(auth) => (base, SituationEffect::None),
            Decision::Granted { .. } | Decision::GrantedOverride { .. } => (
                Decision::Denied {
                    reason: DenyReason::Lockdown,
                },
                SituationEffect::LockdownRefused,
            ),
            denied => (denied, SituationEffect::None),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALICE: SubjectId = SubjectId(0);
    const MEDIC: SubjectId = SubjectId(9);
    const WARD: LocationId = LocationId(1);
    const PHARMACY: LocationId = LocationId(2);
    const STOCKROOM: LocationId = LocationId(3);

    const NO_HISTORY: &dyn Fn(LocationId, Time) -> bool = &|_, _| false;

    fn granted() -> Decision {
        Decision::Granted { auth: AuthId(0) }
    }

    fn denied() -> Decision {
        Decision::Denied {
            reason: DenyReason::NoAuthorization,
        }
    }

    fn emergency(policy: &mut SituationPolicy, incident: u64, until: u64) {
        policy.apply(&SituationOp::Declare(SituationMode::Emergency {
            incident: IncidentId(incident),
            until: Time(until),
        }));
    }

    #[test]
    fn normal_mode_passes_decisions_through() {
        let policy = SituationPolicy::new();
        assert!(policy.is_inert());
        for base in [granted(), denied()] {
            let (d, e) = judge(&policy, ALICE, WARD, Time(10), base, NO_HISTORY);
            assert_eq!(d, base);
            assert_eq!(e, SituationEffect::None);
        }
    }

    #[test]
    fn emergency_overrides_responder_denials_and_flags_the_incident() {
        let mut policy = SituationPolicy::new();
        policy.apply(&SituationOp::AddResponder(MEDIC));
        emergency(&mut policy, 42, 100);
        // A responder's denial becomes an override carrying incident 42.
        let (d, e) = judge(&policy, MEDIC, WARD, Time(50), denied(), NO_HISTORY);
        assert_eq!(d, Decision::GrantedOverride { incident: 42 });
        assert_eq!(e, SituationEffect::Overridden(IncidentId(42)));
        // Non-responders stay denied; base grants pass untouched.
        let (d, e) = judge(&policy, ALICE, WARD, Time(50), denied(), NO_HISTORY);
        assert_eq!(d, denied());
        assert_eq!(e, SituationEffect::None);
        let (d, _) = judge(&policy, MEDIC, WARD, Time(50), granted(), NO_HISTORY);
        assert_eq!(d, granted());
    }

    #[test]
    fn emergency_auto_expires_on_the_event_clock() {
        let mut policy = SituationPolicy::new();
        policy.apply(&SituationOp::AddResponder(MEDIC));
        emergency(&mut policy, 7, 100);
        assert_eq!(
            policy.effective(Time(100)),
            EffectiveMode::Emergency(IncidentId(7))
        );
        assert_eq!(policy.effective(Time(101)), EffectiveMode::Normal);
        // Past `until`, the responder's denial stands and the expiry is
        // surfaced for counting.
        let (d, e) = judge(&policy, MEDIC, WARD, Time(101), denied(), NO_HISTORY);
        assert_eq!(d, denied());
        assert_eq!(e, SituationEffect::OverrideExpired);
        // The override grant itself also dies at the door.
        assert!(policy.override_live(IncidentId(7), Time(100)));
        assert!(!policy.override_live(IncidentId(7), Time(101)));
    }

    #[test]
    fn lockdown_default_denies_except_pinned() {
        let mut policy = SituationPolicy::new();
        policy.apply(&SituationOp::Pin(AuthId(5)));
        policy.apply(&SituationOp::Declare(SituationMode::Lockdown));
        let (d, e) = judge(&policy, ALICE, WARD, Time(10), granted(), NO_HISTORY);
        assert_eq!(
            d,
            Decision::Denied {
                reason: DenyReason::Lockdown
            }
        );
        assert_eq!(e, SituationEffect::LockdownRefused);
        let pinned = Decision::Granted { auth: AuthId(5) };
        let (d, e) = judge(&policy, ALICE, WARD, Time(10), pinned, NO_HISTORY);
        assert_eq!(d, pinned);
        assert_eq!(e, SituationEffect::None);
        // Denials keep their base reason — lockdown only refuses grants.
        let (d, _) = judge(&policy, ALICE, WARD, Time(10), denied(), NO_HISTORY);
        assert_eq!(d, denied());
        // Pre-lockdown grants are voided at the door unless pinned.
        assert!(!policy.admits_entry_under(AuthId(0), Time(10)));
        assert!(policy.admits_entry_under(AuthId(5), Time(10)));
    }

    #[test]
    fn separation_of_duty_refuses_the_second_step() {
        let mut policy = SituationPolicy::new();
        let SituationOutcome::ConstraintAdded { id } = policy.apply(&SituationOp::AddConstraint(
            WorkflowConstraint::SeparationOfDuty {
                first: PHARMACY,
                second: STOCKROOM,
                window: 20,
            },
        )) else {
            panic!("expected ConstraintAdded");
        };
        // Alice unlocked the pharmacy at t=30.
        let entered = |l: LocationId, since: Time| l == PHARMACY && since <= Time(30);
        let (d, e) = judge(&policy, ALICE, STOCKROOM, Time(40), granted(), &entered);
        assert_eq!(
            d,
            Decision::Denied {
                reason: DenyReason::WorkflowConstraint
            }
        );
        assert_eq!(e, SituationEffect::ConstraintRefused(id));
        // Outside the window (t=51: window start 31 > 30) the grant stands.
        let (d, _) = judge(&policy, ALICE, STOCKROOM, Time(51), granted(), &entered);
        assert_eq!(d, granted());
        // The constraint is directional: pharmacy entry is never blocked.
        let (d, _) = judge(&policy, ALICE, PHARMACY, Time(40), granted(), &entered);
        assert_eq!(d, granted());
    }

    #[test]
    fn constraints_bind_even_during_an_emergency() {
        let mut policy = SituationPolicy::new();
        policy.apply(&SituationOp::AddResponder(MEDIC));
        emergency(&mut policy, 1, 1000);
        policy.apply(&SituationOp::AddConstraint(
            WorkflowConstraint::SeparationOfDuty {
                first: PHARMACY,
                second: STOCKROOM,
                window: 20,
            },
        ));
        let entered = |l: LocationId, since: Time| l == PHARMACY && since <= Time(30);
        // Even a responder under a live emergency cannot break SoD.
        let (d, e) = judge(&policy, MEDIC, STOCKROOM, Time(40), denied(), &entered);
        assert!(!d.is_granted());
        assert!(matches!(e, SituationEffect::ConstraintRefused(_)));
    }

    #[test]
    fn binding_of_duty_requires_the_prerequisite() {
        let mut policy = SituationPolicy::new();
        policy.apply(&SituationOp::AddConstraint(
            WorkflowConstraint::BindingOfDuty {
                prerequisite: WARD,
                dependent: PHARMACY,
                window: 50,
            },
        ));
        let (d, _) = judge(&policy, ALICE, PHARMACY, Time(60), granted(), NO_HISTORY);
        assert!(!d.is_granted());
        let entered = |l: LocationId, since: Time| l == WARD && since <= Time(40);
        let (d, _) = judge(&policy, ALICE, PHARMACY, Time(60), granted(), &entered);
        assert_eq!(d, granted());
    }

    #[test]
    fn ordered_steps_enforce_the_chain() {
        let mut policy = SituationPolicy::new();
        policy.apply(&SituationOp::AddConstraint(
            WorkflowConstraint::OrderedSteps {
                steps: vec![WARD, PHARMACY, STOCKROOM],
                window: 100,
            },
        ));
        // Step 0 is always admissible; later steps need their
        // predecessor; unlisted locations are unconstrained.
        let (d, _) = judge(&policy, ALICE, WARD, Time(10), granted(), NO_HISTORY);
        assert_eq!(d, granted());
        let (d, _) = judge(&policy, ALICE, STOCKROOM, Time(10), granted(), NO_HISTORY);
        assert!(!d.is_granted());
        let entered = |l: LocationId, _: Time| l == PHARMACY;
        let (d, _) = judge(&policy, ALICE, STOCKROOM, Time(10), granted(), &entered);
        assert_eq!(d, granted());
        let (d, _) = judge(
            &policy,
            ALICE,
            LocationId(99),
            Time(10),
            granted(),
            NO_HISTORY,
        );
        assert_eq!(d, granted());
    }

    #[test]
    fn ops_round_trip_and_report_outcomes() {
        let mut policy = SituationPolicy::new();
        assert_eq!(
            policy.apply(&SituationOp::AddResponder(MEDIC)),
            SituationOutcome::ResponderAdded { added: true }
        );
        assert_eq!(
            policy.apply(&SituationOp::AddResponder(MEDIC)),
            SituationOutcome::ResponderAdded { added: false }
        );
        assert_eq!(
            policy.apply(&SituationOp::RemoveResponder(ALICE)),
            SituationOutcome::ResponderRemoved { existed: false }
        );
        assert_eq!(
            policy.apply(&SituationOp::Pin(AuthId(3))),
            SituationOutcome::Pinned { added: true }
        );
        assert_eq!(
            policy.apply(&SituationOp::Unpin(AuthId(3))),
            SituationOutcome::Unpinned { existed: true }
        );
        let SituationOutcome::ConstraintAdded { id } = policy.apply(&SituationOp::AddConstraint(
            WorkflowConstraint::SeparationOfDuty {
                first: WARD,
                second: PHARMACY,
                window: 5,
            },
        )) else {
            panic!("expected ConstraintAdded");
        };
        assert_eq!(id, ConstraintId(0));
        assert_eq!(
            policy.apply(&SituationOp::RemoveConstraint(id)),
            SituationOutcome::ConstraintRemoved { existed: true }
        );
        // Ids are never reissued.
        let SituationOutcome::ConstraintAdded { id } = policy.apply(&SituationOp::AddConstraint(
            WorkflowConstraint::BindingOfDuty {
                prerequisite: WARD,
                dependent: PHARMACY,
                window: 5,
            },
        )) else {
            panic!("expected ConstraintAdded");
        };
        assert_eq!(id, ConstraintId(1));
    }

    #[test]
    fn policy_serde_round_trips() {
        let mut policy = SituationPolicy::new();
        policy.apply(&SituationOp::AddResponder(MEDIC));
        policy.apply(&SituationOp::Pin(AuthId(2)));
        policy.apply(&SituationOp::AddConstraint(
            WorkflowConstraint::OrderedSteps {
                steps: vec![WARD, PHARMACY],
                window: 10,
            },
        ));
        emergency(&mut policy, 9, 77);
        let json = serde_json::to_string(&policy).unwrap();
        let back: SituationPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, policy);
        // Ops serialize too (they ride the WAL and the wire).
        let op = SituationOp::Declare(SituationMode::Lockdown);
        let back: SituationOp = serde_json::from_str(&serde_json::to_string(&op).unwrap()).unwrap();
        assert_eq!(back, op);
    }

    #[test]
    fn mode_gauge_values() {
        let mut policy = SituationPolicy::new();
        assert_eq!(policy.mode_gauge(), 0);
        emergency(&mut policy, 1, 10);
        assert_eq!(policy.mode_gauge(), 1);
        policy.apply(&SituationOp::Declare(SituationMode::Lockdown));
        assert_eq!(policy.mode_gauge(), 2);
    }
}
