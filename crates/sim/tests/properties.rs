//! Property-based tests for the simulation substrate.

use ltam_core::model::{Authorization, EntryLimit};
use ltam_core::subject::SubjectId;
use ltam_engine::baseline::Enforcement;
use ltam_engine::engine::AccessControlEngine;
use ltam_engine::violation::Violation;
use ltam_sim::{
    grid_building, random_graph, rng, run_population, scaling_instance, AuthWorkload, Behavior,
    Walker,
};
use ltam_time::Interval;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated worlds are always structurally valid and fully reachable
    /// from their entries.
    #[test]
    fn generated_worlds_are_connected(n in 1usize..40, d in 2usize..8, seed in any::<u64>()) {
        let mut r = rng(seed);
        let world = random_graph(n, d, &mut r);
        prop_assert!(world.model.validate().is_ok());
        let entry = world.graph.global_entries()[0];
        let mut seen = vec![entry];
        let mut stack = vec![entry];
        while let Some(l) = stack.pop() {
            for &nb in world.graph.neighbors(l) {
                if !seen.contains(&nb) {
                    seen.push(nb);
                    stack.push(nb);
                }
            }
        }
        prop_assert_eq!(seen.len(), world.graph.len());
    }

    /// Workload generation is deterministic in the seed and produces only
    /// Definition-4-valid windows (validated at construction).
    #[test]
    fn workloads_are_deterministic(seed in any::<u64>(), a in 1usize..4) {
        let (w1, auths1) = scaling_instance(20, 3, a, seed);
        let (w2, auths2) = scaling_instance(20, 3, a, seed);
        prop_assert_eq!(w1.graph, w2.graph);
        prop_assert_eq!(auths1, auths2);
    }

    /// Whatever the seed, compliant walkers with open authorizations never
    /// produce violations.
    #[test]
    fn compliant_populations_are_clean(seed in any::<u64>(), walkers in 1usize..5) {
        let world = grid_building(3, 3);
        let mut engine = AccessControlEngine::new(world.model.clone());
        let subjects: Vec<SubjectId> = (0..walkers as u32).map(SubjectId).collect();
        for (i, &s) in subjects.iter().enumerate() {
            engine.profiles_mut().add_user(format!("u{i}"), "sim");
            for l in world.graph.locations() {
                engine.add_authorization(
                    Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded)
                        .unwrap(),
                );
            }
        }
        let mut pop: Vec<Walker> = subjects
            .iter()
            .map(|&s| Walker::new(s, Behavior::Compliant { max_stay: 3 }))
            .collect();
        let mut r = rng(seed);
        run_population(&mut pop, &world.graph, &mut engine, 120, &mut r);
        prop_assert!(
            engine.violations().is_empty(),
            "violations: {:?}",
            engine.violations()
        );
    }

    /// Tailgaters are flagged on every entry, whatever the seed; flagged
    /// entries equal physical entries exactly.
    #[test]
    fn tailgater_detection_is_exact(seed in any::<u64>()) {
        let world = grid_building(3, 3);
        let mallory = SubjectId(0);
        let mut engine = AccessControlEngine::new(world.model.clone());
        engine.profiles_mut().add_user("Mallory", "?");
        let mut pop = vec![Walker::new(mallory, Behavior::Tailgater)];
        let mut r = rng(seed);
        run_population(&mut pop, &world.graph, &mut engine, 80, &mut r);
        let entries = engine
            .movements()
            .log()
            .iter()
            .filter(|e| e.kind == ltam_engine::movement::MovementKind::Enter)
            .count();
        let flagged = engine
            .violations()
            .iter()
            .filter(|v| matches!(v, Violation::UnauthorizedEntry { .. }))
            .count();
        prop_assert_eq!(entries, flagged);
    }

    /// The workload honors its coverage and count parameters.
    #[test]
    fn workload_shape(seed in any::<u64>(), per in 1usize..5) {
        let world = grid_building(4, 4);
        let mut r = rng(seed);
        let wl = AuthWorkload {
            coverage: 1.0,
            auths_per_location: per,
            ..AuthWorkload::default()
        };
        let auths = wl.generate(&world, SubjectId(0), &mut r);
        prop_assert_eq!(auths.len(), world.graph.len());
        prop_assert!(auths.values().all(|v| v.len() == per));
    }

    /// The card-reader baseline and LTAM agree on pure request decisions
    /// (the §1 difference is movement visibility, not Definition 7).
    #[test]
    fn baseline_agrees_on_request_decisions(seed in any::<u64>()) {
        use ltam_engine::baseline::CardReaderEngine;
        use ltam_time::Time;
        let world = grid_building(3, 3);
        let s = SubjectId(0);
        let mut ltam = AccessControlEngine::new(world.model.clone());
        ltam.profiles_mut().add_user("S", "sim");
        let mut reader = CardReaderEngine::new(world.model.clone());
        let mut r = rng(seed);
        use rand::Rng;
        let locs: Vec<_> = world.graph.locations().collect();
        for &l in &locs {
            if r.gen_bool(0.6) {
                let a = Authorization::new(
                    Interval::lit(0, 50),
                    Interval::lit(0, 80),
                    s,
                    l,
                    EntryLimit::Unbounded,
                )
                .unwrap();
                ltam.add_authorization(a);
                reader.add_authorization(a);
            }
        }
        for t in 0..60u64 {
            let l = locs[(t as usize) % locs.len()];
            let a = Enforcement::request_enter(&mut ltam, Time(t), s, l);
            let b = Enforcement::request_enter(&mut reader, Time(t), s, l);
            prop_assert_eq!(a.is_granted(), b.is_granted(), "divergence at t={}", t);
        }
    }
}
