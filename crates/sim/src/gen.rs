//! Synthetic building and workload generators.
//!
//! The paper's evaluation is a worked example; to exercise the complexity
//! claim of §6 (`O(N_L² · N_d · N_a)`) and the enforcement architecture at
//! scale we generate:
//!
//! * **grid buildings** — rooms in a w×h grid with 4-neighbor corridors,
//! * **tree buildings** — floors of rooms hanging off a spine (lobby per
//!   floor), mirroring office towers,
//! * **campuses** — multilevel models with several buildings connected at
//!   the top level (the NTU shape, scaled),
//! * **random connected graphs** — spanning tree plus chords with a target
//!   degree, for the scaling sweeps,
//! * **authorization workloads** — per-location windows with configurable
//!   coverage, width and entry limits.
//!
//! All randomness flows from a caller-supplied [`StdRng`] seed.

use ltam_core::inaccessible::AuthsByLocation;
use ltam_core::model::{Authorization, EntryLimit};
use ltam_core::subject::SubjectId;
use ltam_graph::{EffectiveGraph, LocationId, LocationModel};
use ltam_time::Interval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated world: the model, its flat graph, and the primitives.
#[derive(Debug, Clone)]
pub struct World {
    /// The hierarchy.
    pub model: LocationModel,
    /// The flattened graph.
    pub graph: EffectiveGraph,
}

impl World {
    fn from_model(model: LocationModel) -> World {
        model.validate().expect("generated model is well-formed");
        let graph = EffectiveGraph::build(&model);
        World { model, graph }
    }
}

/// A `w × h` grid of rooms; room `(0, 0)` is the entry.
pub fn grid_building(w: usize, h: usize) -> World {
    assert!(w >= 1 && h >= 1, "grid must be non-empty");
    let mut m = LocationModel::new("Grid");
    let mut ids = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            ids.push(
                m.add_primitive(m.root(), format!("R{x}_{y}"))
                    .expect("fresh name"),
            );
        }
    }
    for y in 0..h {
        for x in 0..w {
            let at = ids[y * w + x];
            if x + 1 < w {
                m.add_edge(at, ids[y * w + x + 1]).expect("siblings");
            }
            if y + 1 < h {
                m.add_edge(at, ids[(y + 1) * w + x]).expect("siblings");
            }
        }
    }
    m.set_entry(ids[0]).expect("valid id");
    World::from_model(m)
}

/// `floors` floors of `rooms` rooms each, linked by a lobby spine; the
/// ground lobby is the entry.
pub fn tree_building(floors: usize, rooms: usize) -> World {
    assert!(floors >= 1, "need at least one floor");
    let mut m = LocationModel::new("Tower");
    let mut prev_lobby = None;
    for f in 0..floors {
        let lobby = m
            .add_primitive(m.root(), format!("F{f}.Lobby"))
            .expect("fresh name");
        if let Some(p) = prev_lobby {
            m.add_edge(lobby, p).expect("siblings");
        } else {
            m.set_entry(lobby).expect("valid id");
        }
        for r in 0..rooms {
            let room = m
                .add_primitive(m.root(), format!("F{f}.R{r}"))
                .expect("fresh name");
            m.add_edge(room, lobby).expect("siblings");
        }
        prev_lobby = Some(lobby);
    }
    World::from_model(m)
}

/// A campus of `buildings` composite buildings with `rooms_per` rooms each,
/// connected in a ring at the top level; every building's lobby is its
/// entry, and building 0 is the campus entry.
pub fn campus(buildings: usize, rooms_per: usize) -> World {
    assert!(buildings >= 1, "need at least one building");
    let mut m = LocationModel::new("Campus");
    let mut comps = Vec::with_capacity(buildings);
    for b in 0..buildings {
        let comp = m
            .add_composite(m.root(), format!("B{b}"))
            .expect("fresh name");
        let lobby = m
            .add_primitive(comp, format!("B{b}.Lobby"))
            .expect("fresh name");
        m.set_entry(lobby).expect("valid id");
        let mut prev = lobby;
        for r in 0..rooms_per {
            let room = m
                .add_primitive(comp, format!("B{b}.R{r}"))
                .expect("fresh name");
            m.add_edge(room, prev).expect("siblings");
            prev = room;
        }
        comps.push(comp);
    }
    for i in 0..buildings {
        if buildings > 1 {
            m.add_edge(comps[i], comps[(i + 1) % buildings])
                .expect("siblings");
        }
    }
    m.set_entry(comps[0]).expect("valid id");
    World::from_model(m)
}

/// A connected random graph with `n` locations and approximately `degree`
/// average degree; location 0 is the entry.
pub fn random_graph(n: usize, degree: usize, rng: &mut StdRng) -> World {
    assert!(n >= 1, "need at least one location");
    let mut m = LocationModel::new("Rand");
    let ids: Vec<LocationId> = (0..n)
        .map(|i| {
            m.add_primitive(m.root(), format!("v{i}"))
                .expect("fresh name")
        })
        .collect();
    for i in 1..n {
        let p = rng.gen_range(0..i);
        m.add_edge(ids[i], ids[p]).expect("siblings");
    }
    // Spanning tree contributes average degree ~2; add chords up to target.
    let extra = n.saturating_mul(degree.saturating_sub(2)) / 2;
    for _ in 0..extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            m.add_edge(ids[a], ids[b]).expect("siblings");
        }
    }
    m.set_entry(ids[0]).expect("valid id");
    World::from_model(m)
}

/// Authorization workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct AuthWorkload {
    /// Fraction of locations receiving authorizations (entries always do).
    pub coverage: f64,
    /// Authorizations per covered location (`N_a`).
    pub auths_per_location: usize,
    /// Largest entry-window start time.
    pub horizon: u64,
    /// Maximum entry-window width.
    pub max_window: u64,
    /// Maximum extra width of the exit window beyond the entry window.
    pub max_exit_slack: u64,
    /// Entry limit for each authorization.
    pub limit: EntryLimit,
}

impl Default for AuthWorkload {
    fn default() -> Self {
        AuthWorkload {
            coverage: 1.0,
            auths_per_location: 2,
            horizon: 1_000,
            max_window: 200,
            max_exit_slack: 100,
            limit: EntryLimit::Unbounded,
        }
    }
}

impl AuthWorkload {
    /// Generate the per-location authorizations of one subject.
    pub fn generate(&self, world: &World, subject: SubjectId, rng: &mut StdRng) -> AuthsByLocation {
        let mut out = AuthsByLocation::new();
        let entries = world.graph.global_entries().to_vec();
        for l in world.graph.locations() {
            let covered = entries.contains(&l) || rng.gen_bool(self.coverage.clamp(0.0, 1.0));
            if !covered {
                continue;
            }
            let mut v = Vec::with_capacity(self.auths_per_location);
            for _ in 0..self.auths_per_location {
                let tis = rng.gen_range(0..=self.horizon);
                let tie = tis + rng.gen_range(0..=self.max_window);
                let tos = rng.gen_range(tis..=tie);
                let toe = tie + rng.gen_range(0..=self.max_exit_slack);
                v.push(
                    Authorization::new(
                        Interval::closed(tis, tie).expect("tis <= tie"),
                        Interval::closed(tos, toe).expect("tos <= toe"),
                        subject,
                        l,
                        self.limit,
                    )
                    .expect("workload windows satisfy Definition 4"),
                );
            }
            out.insert(l, v);
        }
        out
    }
}

/// Deterministic rng from a seed (convenience).
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A full scaling instance for the §6 complexity sweeps.
pub fn scaling_instance(
    n_locations: usize,
    degree: usize,
    auths_per_location: usize,
    seed: u64,
) -> (World, AuthsByLocation) {
    let mut r = rng(seed);
    let world = random_graph(n_locations, degree, &mut r);
    let workload = AuthWorkload {
        auths_per_location,
        ..AuthWorkload::default()
    };
    let auths = workload.generate(&world, SubjectId(0), &mut r);
    (world, auths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_building_shape() {
        let w = grid_building(4, 3);
        assert_eq!(w.graph.len(), 12);
        // Interior rooms have degree 4.
        assert_eq!(w.graph.max_degree(), 4);
        // 2*w*h - w - h edges.
        assert_eq!(w.graph.edge_count(), 2 * 4 * 3 - 4 - 3);
        assert_eq!(w.graph.global_entries().len(), 1);
    }

    #[test]
    fn tree_building_shape() {
        let w = tree_building(3, 5);
        assert_eq!(w.graph.len(), 3 * 6);
        // rooms + spine edges.
        assert_eq!(w.graph.edge_count(), 3 * 5 + 2);
    }

    #[test]
    fn campus_is_multilevel() {
        let w = campus(4, 3);
        assert_eq!(w.graph.len(), 4 * 4);
        // Lobby-to-lobby bridges from the ring.
        let lobby0 = w.model.id("B0.Lobby").unwrap();
        let lobby1 = w.model.id("B1.Lobby").unwrap();
        assert!(w.graph.adjacent(lobby0, lobby1));
        let r0 = w.model.id("B0.R0").unwrap();
        let r1 = w.model.id("B1.R0").unwrap();
        assert!(!w.graph.adjacent(r0, r1));
    }

    #[test]
    fn single_building_campus_has_no_ring() {
        let w = campus(1, 2);
        assert_eq!(w.graph.len(), 3);
    }

    #[test]
    fn random_graph_is_connected_and_deterministic() {
        let mut r1 = rng(42);
        let mut r2 = rng(42);
        let a = random_graph(30, 4, &mut r1);
        let b = random_graph(30, 4, &mut r2);
        assert_eq!(a.graph, b.graph);
        // Connectivity is validated by World::from_model already; check
        // reachability from the entry for good measure.
        let entry = a.graph.global_entries()[0];
        let mut seen = vec![entry];
        let mut stack = vec![entry];
        while let Some(l) = stack.pop() {
            for &nb in a.graph.neighbors(l) {
                if !seen.contains(&nb) {
                    seen.push(nb);
                    stack.push(nb);
                }
            }
        }
        assert_eq!(seen.len(), a.graph.len());
    }

    #[test]
    fn workload_respects_parameters() {
        let w = grid_building(5, 5);
        let mut r = rng(7);
        let wl = AuthWorkload {
            coverage: 1.0,
            auths_per_location: 3,
            ..AuthWorkload::default()
        };
        let auths = wl.generate(&w, SubjectId(0), &mut r);
        assert_eq!(auths.len(), 25);
        assert!(auths.values().all(|v| v.len() == 3));
        // Definition 4 holds by construction; sanity-check one row.
        let any = auths.values().next().unwrap()[0];
        assert!(any.exit_window().start() >= any.entry_window().start());
    }

    #[test]
    fn workload_coverage_zero_still_covers_entries() {
        let w = grid_building(3, 3);
        let mut r = rng(9);
        let wl = AuthWorkload {
            coverage: 0.0,
            ..AuthWorkload::default()
        };
        let auths = wl.generate(&w, SubjectId(0), &mut r);
        let entry = w.graph.global_entries()[0];
        assert!(auths.contains_key(&entry));
        assert_eq!(auths.len(), 1);
    }

    #[test]
    fn scaling_instance_is_reproducible() {
        let (w1, a1) = scaling_instance(40, 4, 2, 123);
        let (w2, a2) = scaling_instance(40, 4, 2, 123);
        assert_eq!(w1.graph, w2.graph);
        assert_eq!(a1, a2);
    }
}
