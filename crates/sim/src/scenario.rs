//! Scenario library: end-to-end stories from the paper's introduction.
//!
//! * [`tailgating_differential`] — §1's motivating threat: a group enters
//!   on one person's authorization. LTAM's continuous monitoring flags
//!   every unauthorized body; the card-reader baseline sees nothing.
//! * [`sars_contact_tracing`] — the Singapore SARS deployment: trace
//!   everyone co-located with a diagnosed patient and produce the
//!   quarantine list from the movements database.
//! * [`overstay_detection`] — exit-window enforcement: subjects who stay
//!   past their exit windows raise alerts (and only they do).

use crate::gen::{grid_building, rng};
use crate::walker::{run_population, Behavior, Walker};
use ltam_core::model::{Authorization, EntryLimit};
use ltam_core::subject::SubjectId;
use ltam_engine::baseline::{CardReaderEngine, Enforcement};
use ltam_engine::engine::AccessControlEngine;
use ltam_engine::violation::Violation;
use ltam_time::{Interval, Time};

/// Outcome of the tailgating differential.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailgatingOutcome {
    /// Unauthorized group members following the leader.
    pub tailgaters: usize,
    /// Unauthorized entries LTAM detected.
    pub ltam_detected: usize,
    /// Unauthorized entries the card-reader baseline detected (always 0).
    pub baseline_detected: usize,
}

/// One authorized leader swipes in; `tailgaters` unauthorized people follow
/// through every door. Both engines observe identical movement streams.
pub fn tailgating_differential(tailgaters: usize, ticks: u64, seed: u64) -> TailgatingOutcome {
    let world = grid_building(4, 4);
    let leader = SubjectId(0);
    let followers: Vec<SubjectId> = (1..=tailgaters as u32).map(SubjectId).collect();

    let mut ltam = AccessControlEngine::new(world.model.clone());
    ltam.profiles_mut().add_user("Leader", "staff");
    for (i, _) in followers.iter().enumerate() {
        ltam.profiles_mut().add_user(format!("Tail{i}"), "?");
    }
    let mut reader = CardReaderEngine::new(world.model.clone());
    for l in world.graph.locations() {
        let auth = Authorization::new(
            Interval::ALL,
            Interval::ALL,
            leader,
            l,
            EntryLimit::Unbounded,
        )
        .expect("open windows are valid");
        ltam.add_authorization(auth);
        reader.add_authorization(auth);
    }

    let run = |engine: &mut dyn Enforcement, seed: u64| {
        let mut walkers: Vec<Walker> =
            vec![Walker::new(leader, Behavior::Compliant { max_stay: 3 })];
        walkers.extend(
            followers
                .iter()
                .map(|&s| Walker::new(s, Behavior::Tailgater)),
        );
        let mut r = rng(seed);
        run_population(&mut walkers, &world.graph, engine, ticks, &mut r);
    };
    run(&mut ltam, seed);
    run(&mut reader, seed);

    let count_unauthorized = |vs: &[Violation]| {
        vs.iter()
            .filter(|v| matches!(v, Violation::UnauthorizedEntry { .. }))
            .count()
    };
    TailgatingOutcome {
        tailgaters,
        ltam_detected: count_unauthorized(ltam.violations()),
        baseline_detected: count_unauthorized(reader.detected_violations()),
    }
}

/// Outcome of the contact-tracing scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContactTracingOutcome {
    /// Staff members simulated (excluding the patient).
    pub staff: usize,
    /// Subjects co-located with the patient during the exposure window.
    pub quarantine: Vec<SubjectId>,
    /// Total co-location records found.
    pub contact_records: usize,
}

/// A hospital ward: one infectious patient and `staff` staff walk for
/// `ticks`; afterwards the movements database answers "who shared a room
/// with the patient during the exposure window?" — the RFID/SARS use case
/// of §1.
pub fn sars_contact_tracing(staff: usize, ticks: u64, seed: u64) -> ContactTracingOutcome {
    let world = grid_building(4, 3);
    let patient = SubjectId(0);
    let staff_ids: Vec<SubjectId> = (1..=staff as u32).map(SubjectId).collect();

    let mut engine = AccessControlEngine::new(world.model.clone());
    engine.profiles_mut().add_user("Patient", "patient");
    for (i, _) in staff_ids.iter().enumerate() {
        engine.profiles_mut().add_user(format!("Staff{i}"), "staff");
    }
    for l in world.graph.locations() {
        for &s in std::iter::once(&patient).chain(&staff_ids) {
            engine.add_authorization(
                Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded)
                    .expect("open windows are valid"),
            );
        }
    }

    let mut walkers: Vec<Walker> = vec![Walker::new(patient, Behavior::Compliant { max_stay: 5 })];
    walkers.extend(
        staff_ids
            .iter()
            .map(|&s| Walker::new(s, Behavior::Compliant { max_stay: 4 })),
    );
    let mut r = rng(seed);
    run_population(&mut walkers, &world.graph, &mut engine, ticks, &mut r);

    let exposure = Interval::closed(Time::ZERO, Time(ticks)).expect("exposure window");
    let contacts = engine.movements().contacts(patient, exposure);
    let mut quarantine: Vec<SubjectId> = contacts.iter().map(|c| c.other).collect();
    quarantine.sort_unstable();
    quarantine.dedup();
    ContactTracingOutcome {
        staff,
        quarantine,
        contact_records: contacts.len(),
    }
}

/// Outcome of the overstay scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverstayOutcome {
    /// Subjects that deliberately overstay.
    pub overstayers: usize,
    /// Distinct subjects flagged with an overstay violation.
    pub flagged: usize,
    /// Compliant subjects wrongly flagged (should be 0).
    pub false_positives: usize,
}

/// `overstayers` subjects sit past their exit windows while `compliant`
/// subjects come and go properly; the engine's clock scan must flag exactly
/// the former.
pub fn overstay_detection(overstayers: usize, compliant: usize, seed: u64) -> OverstayOutcome {
    let world = grid_building(3, 3);
    let mut engine = AccessControlEngine::new(world.model.clone());
    let bad: Vec<SubjectId> = (0..overstayers as u32).map(SubjectId).collect();
    let good: Vec<SubjectId> = (overstayers as u32..(overstayers + compliant) as u32)
        .map(SubjectId)
        .collect();
    for (i, _) in bad.iter().chain(&good).enumerate() {
        engine.profiles_mut().add_user(format!("u{i}"), "sim");
    }
    // Everyone must be out by t=30. Compliant subjects stop being admitted
    // at t=25 so a full voluntary stay still ends inside the exit window;
    // overstayers can enter right up to the close.
    for l in world.graph.locations() {
        for &s in &bad {
            engine.add_authorization(
                Authorization::new(
                    Interval::lit(0, 30),
                    Interval::lit(0, 30),
                    s,
                    l,
                    EntryLimit::Unbounded,
                )
                .expect("valid windows"),
            );
        }
        for &s in &good {
            engine.add_authorization(
                Authorization::new(
                    Interval::lit(0, 25),
                    Interval::lit(0, 30),
                    s,
                    l,
                    EntryLimit::Unbounded,
                )
                .expect("valid windows"),
            );
        }
    }
    let mut walkers: Vec<Walker> = bad
        .iter()
        .map(|&s| Walker::new(s, Behavior::Overstayer))
        .chain(
            good.iter()
                .map(|&s| Walker::new(s, Behavior::Compliant { max_stay: 2 })),
        )
        .collect();
    let mut r = rng(seed);
    // Run past the window close so overstays become visible; compliant
    // walkers stop being admitted after t=30 (their requests deny).
    run_population(&mut walkers, &world.graph, &mut engine, 60, &mut r);

    let mut flagged: Vec<SubjectId> = engine
        .violations()
        .iter()
        .filter_map(|v| match v {
            Violation::Overstay { subject, .. } => Some(*subject),
            _ => None,
        })
        .collect();
    flagged.sort_unstable();
    flagged.dedup();
    let false_positives = flagged.iter().filter(|s| good.contains(s)).count();
    OverstayOutcome {
        overstayers,
        flagged: flagged.len(),
        false_positives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tailgating_ltam_catches_baseline_misses() {
        let out = tailgating_differential(3, 60, 11);
        assert!(out.ltam_detected > 0, "no tailgating detected: {out:?}");
        assert_eq!(out.baseline_detected, 0);
    }

    #[test]
    fn tailgating_detection_scales_with_group_size() {
        let small = tailgating_differential(1, 60, 12);
        let large = tailgating_differential(6, 60, 12);
        assert!(large.ltam_detected > small.ltam_detected);
    }

    #[test]
    fn contact_tracing_finds_colocated_staff() {
        let out = sars_contact_tracing(6, 120, 13);
        assert!(!out.quarantine.is_empty(), "no contacts found: {out:?}");
        assert!(out.quarantine.len() <= out.staff);
        assert!(out.contact_records >= out.quarantine.len());
        // The patient never appears in their own quarantine list.
        assert!(!out.quarantine.contains(&SubjectId(0)));
    }

    #[test]
    fn contact_tracing_is_deterministic() {
        assert_eq!(
            sars_contact_tracing(4, 80, 14),
            sars_contact_tracing(4, 80, 14)
        );
    }

    #[test]
    fn overstay_flags_exactly_the_overstayers() {
        let out = overstay_detection(3, 5, 15);
        assert_eq!(out.flagged, 3, "{out:?}");
        assert_eq!(out.false_positives, 0);
    }

    #[test]
    fn no_overstayers_no_flags() {
        let out = overstay_detection(0, 5, 16);
        assert_eq!(out.flagged, 0);
    }
}
