//! # ltam-sim — simulation substrate for LTAM
//!
//! The paper evaluates LTAM on worked examples over an RFID-instrumented
//! campus it did not have to build; this crate supplies the synthetic
//! equivalents:
//!
//! * [`gen`] — building generators (grids, towers, multilevel campuses,
//!   random connected graphs) and authorization workloads for the §6
//!   scaling sweeps,
//! * [`walker`] — movement simulation with compliant, tailgating and
//!   overstaying behaviours, driven against any
//!   [`ltam_engine::baseline::Enforcement`] engine,
//! * [`rfid`] — a simulated positioning pipeline: noisy `(x, y)` tag
//!   readings resolved through [`ltam_geo`] boundaries into enter/exit
//!   events,
//! * [`scenario`] — end-to-end stories from §1: the tailgating
//!   differential against the card-reader baseline, SARS contact tracing,
//!   and overstay detection.
//!
//! All generators and scenarios are deterministic given a seed.

#![warn(missing_docs)]

pub mod gen;
pub mod rfid;
pub mod scenario;
pub mod trace;
pub mod walker;

pub use gen::{
    campus, grid_building, random_graph, rng, scaling_instance, tree_building, AuthWorkload, World,
};
pub use rfid::{grid_floor_plan, noisy_walk, TagReading, TrackingPipeline};
pub use scenario::{
    overstay_detection, sars_contact_tracing, tailgating_differential, ContactTracingOutcome,
    OverstayOutcome, TailgatingOutcome,
};
pub use trace::{multi_shard_trace, read_events_wal, TraceConfig, TraceWorld};
pub use walker::{run_population, Behavior, Walker};
