//! High-volume event-trace generation for the sharded enforcement layer.
//!
//! The walkers in [`crate::walker`] drive an engine *interactively* (the
//! next step depends on the last decision). For throughput work we want
//! the opposite: a **pre-materialized trace** — a `Vec<Event>` that can
//! be replayed into any engine, batched, sharded, or single-threaded —
//! so that every implementation processes byte-identical input and their
//! violation sets can be compared as multisets.
//!
//! [`multi_shard_trace`] generates such traces deterministically from a
//! seed: a population of subjects (compliant / tailgating / overstaying,
//! in configurable proportions) performs request → enter → exit cycles
//! over a grid world, with periodic monitoring-clock ticks. Subjects'
//! events are interleaved round-robin with per-subject monotone
//! timestamps, mirroring how readings from many doors arrive at the
//! Figure 3 engine.

use crate::gen::{grid_building, rng, World};
use ltam_core::model::{Authorization, EntryLimit};
use ltam_core::subject::SubjectId;
use ltam_engine::batch::{Event, PolicyCore, ShardedEngine};
use ltam_engine::engine::AccessControlEngine;
use ltam_engine::shared::SharedEngine;
use ltam_engine::violation::Alert;
use ltam_graph::LocationId;
use ltam_time::{Interval, Time};
use rand::rngs::StdRng;
use rand::Rng;

/// Parameters for [`multi_shard_trace`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Simulated population size.
    pub subjects: usize,
    /// Approximate number of events to generate (the trace stops at the
    /// first cycle boundary past this count).
    pub events: usize,
    /// Side length of the square grid world.
    pub grid: usize,
    /// Insert a `Tick` after every this many events (0 disables ticks).
    pub tick_every: usize,
    /// Fraction of subjects with no authorizations at all — every entry
    /// they make is a tailgating violation.
    pub tailgater_fraction: f64,
    /// Fraction of (authorized) subjects that ignore their exit windows:
    /// they leave late, tripping exit-window or overstay detection.
    pub overstayer_fraction: f64,
    /// RNG seed; equal configs generate equal traces.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            subjects: 64,
            events: 10_000,
            grid: 8,
            tick_every: 64,
            tailgater_fraction: 0.1,
            overstayer_fraction: 0.1,
            seed: 42,
        }
    }
}

/// A generated trace plus everything needed to enforce it.
#[derive(Debug, Clone)]
pub struct TraceWorld {
    /// The location layout the trace plays out in.
    pub world: World,
    /// The authorizations granted to the population.
    pub authorizations: Vec<Authorization>,
    /// The event trace, in arrival order.
    pub events: Vec<Event>,
}

impl TraceWorld {
    /// Build a single-lock [`SharedEngine`] loaded with this trace's
    /// authorizations (the global-lock baseline).
    pub fn build_shared(&self) -> (SharedEngine, crossbeam::channel::Receiver<Alert>) {
        SharedEngine::new(self.build_engine())
    }

    /// Build a plain single-threaded engine loaded with this trace's
    /// authorizations (the reference semantics).
    pub fn build_engine(&self) -> AccessControlEngine {
        let mut engine = AccessControlEngine::new(self.world.model.clone());
        for auth in &self.authorizations {
            engine.add_authorization(*auth);
        }
        engine
    }

    /// Build a [`ShardedEngine`] with `shards` shards loaded with this
    /// trace's authorizations.
    pub fn build_sharded(
        &self,
        shards: usize,
    ) -> (ShardedEngine, crossbeam::channel::Receiver<Alert>) {
        ShardedEngine::new(self.build_policy_core(), shards)
    }

    /// Build the trace's [`PolicyCore`] (for [`ltam_store::DurableEngine`]
    /// and other engine shapes).
    pub fn build_policy_core(&self) -> PolicyCore {
        let mut core = PolicyCore::new(self.world.model.clone());
        for auth in &self.authorizations {
            core.add_authorization(*auth);
        }
        core
    }

    /// The largest timestamp in the trace — the monitoring-clock value
    /// a retention horizon is naturally anchored to (`Time::ZERO` for
    /// an empty trace).
    pub fn max_time(&self) -> Time {
        self.events
            .iter()
            .map(Event::time)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Partition the trace into `clients` per-connection replay
    /// streams for the serving tier's load generator: each subject's
    /// events land in exactly one stream, in trace order — the
    /// invariant enforcement needs — while cross-subject interleaving
    /// is surrendered to the network. Broadcast events (`Tick`) go to
    /// stream 0; because concurrent replay cannot preserve a tick's
    /// global position, traces meant for violation-multiset comparison
    /// against a serial run should be generated with `tick_every: 0`
    /// (and, if overstay coverage is wanted, followed by one final tick
    /// after every stream has drained — see `repro serve`).
    pub fn client_streams(&self, clients: usize) -> Vec<Vec<Event>> {
        assert!(clients >= 1, "need at least one client stream");
        let mut streams = vec![Vec::new(); clients];
        for e in &self.events {
            match e.subject() {
                Some(s) => streams[ltam_engine::batch::shard_of(s, clients)].push(*e),
                None => streams[0].push(*e),
            }
        }
        streams
    }

    /// Persist this trace's event stream as an `ltam-store` WAL fixture
    /// under `dir` — the on-disk input for durability tests, corruption
    /// drills, and recovery benchmarks. Returns the number of records
    /// written. Pair with [`read_events_wal`]; the world and
    /// authorizations regenerate deterministically from the same
    /// [`TraceConfig`].
    pub fn write_events_wal(
        &self,
        dir: &std::path::Path,
        segment_bytes: u64,
    ) -> std::io::Result<u64> {
        let config = ltam_store::WalConfig {
            segment_bytes,
            fsync: false, // fixtures are rewritable artifacts, not live logs
        };
        let (mut wal, recovered) = ltam_store::Wal::open(dir, config)?;
        if !recovered.events.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("{} already holds a WAL fixture", dir.display()),
            ));
        }
        for chunk in self.events.chunks(1024) {
            wal.append_batch(chunk)?;
        }
        Ok(wal.next_seq())
    }
}

/// Load the event stream of a WAL fixture written by
/// [`TraceWorld::write_events_wal`] (tolerating — and repairing — a torn
/// or corrupted tail, like any WAL open).
pub fn read_events_wal(dir: &std::path::Path) -> std::io::Result<Vec<Event>> {
    let (_, recovered) = ltam_store::Wal::open(dir, ltam_store::WalConfig::default())?;
    Ok(recovered.events.into_iter().map(|(_, e)| e).collect())
}

/// Where one simulated subject is in its request → enter → exit cycle.
#[derive(Debug, Clone, Copy)]
enum Phase {
    Outside,
    Requested(LocationId),
    Inside(LocationId),
}

#[derive(Debug, Clone, Copy)]
struct Actor {
    subject: SubjectId,
    clock: u64,
    phase: Phase,
    authorized: bool,
    overstayer: bool,
}

/// Generate a deterministic high-volume trace (see the module docs).
///
/// The population mixes the behaviours the paper cares about, so a
/// realistic slice of every violation kind shows up: unauthorized
/// entries from the tailgating cohort, exit-window breaches and
/// overstays from the overstaying cohort, and plenty of clean traffic.
pub fn multi_shard_trace(cfg: &TraceConfig) -> TraceWorld {
    assert!(cfg.subjects >= 1, "need at least one subject");
    let world = grid_building(cfg.grid.max(1), cfg.grid.max(1));
    let locations: Vec<LocationId> = world.graph.locations().collect();
    let mut r = rng(cfg.seed);

    // Compliant subjects hold long-lived badges (windows far beyond the
    // trace horizon). Overstayers hold *expiring* badges: entries stop
    // being admitted after `deadline` and exits past `deadline + slack`
    // breach the exit window — staying inside across a tick raises an
    // overstay. Tailgaters hold nothing.
    let mut authorizations = Vec::new();
    let mut actors = Vec::with_capacity(cfg.subjects);
    let n_tailgaters = (cfg.subjects as f64 * cfg.tailgater_fraction).round() as usize;
    const LONG_HORIZON: u64 = u64::MAX / 4;
    for i in 0..cfg.subjects {
        let subject = SubjectId(i as u32);
        let authorized = i >= n_tailgaters;
        let overstayer = authorized && r.gen_bool(cfg.overstayer_fraction.clamp(0.0, 1.0));
        if authorized {
            for &l in &locations {
                let (entry_end, exit_end) = if overstayer {
                    let deadline = 100 + r.gen_range(0..100u64);
                    (deadline, deadline + 20)
                } else {
                    (LONG_HORIZON, LONG_HORIZON + 60)
                };
                authorizations.push(
                    Authorization::new(
                        Interval::lit(0, entry_end),
                        Interval::lit(0, exit_end),
                        subject,
                        l,
                        EntryLimit::Unbounded,
                    )
                    .expect("windows satisfy Definition 4"),
                );
            }
        }
        actors.push(Actor {
            subject,
            clock: 0,
            phase: Phase::Outside,
            authorized,
            overstayer,
        });
    }

    let mut events = Vec::with_capacity(cfg.events + cfg.subjects * 4);
    while events.len() < cfg.events {
        let a = &mut actors[r.gen_range(0..cfg.subjects)];
        step_actor(a, &locations, &mut r, &mut events);
        if cfg.tick_every > 0 && events.len() % cfg.tick_every == 0 {
            // The monitoring clock runs ahead of every subject's local
            // clock so overstay scans see closed exit windows.
            let now = actors.iter().map(|a| a.clock).max().unwrap_or(0) + 1;
            events.push(Event::Tick { now: Time(now) });
        }
    }

    TraceWorld {
        world,
        authorizations,
        events,
    }
}

fn step_actor(a: &mut Actor, locations: &[LocationId], r: &mut StdRng, events: &mut Vec<Event>) {
    match a.phase {
        Phase::Outside => {
            let target = locations[r.gen_range(0..locations.len())];
            a.clock += r.gen_range(1..4u64);
            if a.authorized {
                events.push(Event::Request {
                    time: Time(a.clock),
                    subject: a.subject,
                    location: target,
                });
                a.phase = Phase::Requested(target);
            } else {
                // Tailgaters skip the reader entirely.
                events.push(Event::Enter {
                    time: Time(a.clock),
                    subject: a.subject,
                    location: target,
                });
                a.phase = Phase::Inside(target);
            }
        }
        Phase::Requested(target) => {
            // Enter within the grant TTL most of the time; occasionally
            // dawdle past it (a lapsed grant → unauthorized entry).
            a.clock += if r.gen_bool(0.9) {
                r.gen_range(0..4u64)
            } else {
                8
            };
            events.push(Event::Enter {
                time: Time(a.clock),
                subject: a.subject,
                location: target,
            });
            a.phase = Phase::Inside(target);
        }
        Phase::Inside(here) => {
            // Compliant subjects leave within their exit deadline (the
            // earliest deadline is 40); overstayers linger far beyond.
            let dwell = if a.overstayer {
                90 + r.gen_range(0..30u64)
            } else {
                r.gen_range(2..20u64)
            };
            a.clock += dwell;
            events.push(Event::Exit {
                time: Time(a.clock),
                subject: a.subject,
                location: here,
            });
            a.phase = Phase::Outside;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltam_engine::batch::apply_to_engine;
    use ltam_engine::violation::Violation;

    #[test]
    fn traces_are_deterministic() {
        let cfg = TraceConfig {
            events: 500,
            ..TraceConfig::default()
        };
        let a = multi_shard_trace(&cfg);
        let b = multi_shard_trace(&cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.authorizations, b.authorizations);
        assert!(a.events.len() >= 500);
    }

    #[test]
    fn traces_exercise_the_violation_taxonomy() {
        let trace = multi_shard_trace(&TraceConfig {
            subjects: 32,
            events: 4_000,
            ..TraceConfig::default()
        });
        let mut engine = trace.build_engine();
        for e in &trace.events {
            apply_to_engine(&mut engine, e);
        }
        let vs = engine.violations();
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::UnauthorizedEntry { .. })),
            "no tailgating in trace"
        );
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::ExitOutsideWindow { .. })
                    || matches!(v, Violation::Overstay { .. })),
            "no exit-window or overstay violations in trace"
        );
        // Clean traffic exists too: some entries were granted and used.
        assert!(engine.ledger().total_entries() > 0);
    }

    #[test]
    fn wal_fixture_round_trips_the_trace() {
        let trace = multi_shard_trace(&TraceConfig {
            subjects: 16,
            events: 1_500,
            ..TraceConfig::default()
        });
        let dir = ltam_store::ScratchDir::new("sim-fixture");
        let written = trace.write_events_wal(dir.path(), 16 * 1024).unwrap();
        assert_eq!(written, trace.events.len() as u64);
        assert_eq!(read_events_wal(dir.path()).unwrap(), trace.events);
        // A fixture refuses to overwrite itself.
        assert!(trace.write_events_wal(dir.path(), 16 * 1024).is_err());
    }

    #[test]
    fn client_streams_partition_by_subject_in_order() {
        let trace = multi_shard_trace(&TraceConfig {
            subjects: 24,
            events: 2_000,
            ..TraceConfig::default()
        });
        let streams = trace.client_streams(3);
        assert_eq!(streams.len(), 3);
        let scattered: usize = streams.iter().map(Vec::len).sum();
        assert_eq!(scattered, trace.events.len(), "every event lands once");
        // Each subject lives in exactly one stream, in original order.
        let mut owner: std::collections::HashMap<SubjectId, usize> = Default::default();
        for (i, stream) in streams.iter().enumerate() {
            let mut last: std::collections::HashMap<SubjectId, Time> = Default::default();
            for e in stream {
                if let Some(s) = e.subject() {
                    assert_eq!(*owner.entry(s).or_insert(i), i, "{s} split across streams");
                    if let Some(&prev) = last.get(&s) {
                        assert!(e.time() >= prev, "order broken for {s}");
                    }
                    last.insert(s, e.time());
                }
            }
        }
        assert!(owner.len() > 3, "multiple subjects per stream");
    }

    #[test]
    fn max_time_tracks_the_latest_event() {
        let trace = multi_shard_trace(&TraceConfig {
            subjects: 8,
            events: 500,
            ..TraceConfig::default()
        });
        let expected = trace.events.iter().map(|e| e.time()).max().unwrap();
        assert_eq!(trace.max_time(), expected);
        assert!(trace.max_time() > Time(0));
    }

    #[test]
    fn per_subject_times_are_monotone() {
        let trace = multi_shard_trace(&TraceConfig {
            subjects: 16,
            events: 2_000,
            ..TraceConfig::default()
        });
        let mut last: std::collections::HashMap<SubjectId, Time> = Default::default();
        for e in &trace.events {
            if let Some(s) = e.subject() {
                if let Some(&prev) = last.get(&s) {
                    assert!(e.time() >= prev, "time regression for {s}");
                }
                last.insert(s, e.time());
            }
        }
    }
}
