//! Simulated RFID/positioning pipeline.
//!
//! The paper assumes "the ability of user tracking" from RFID and other
//! positioning infrastructure (§1) and physical boundaries mapping
//! coordinates to semantic locations (§3.1). Real tag readers are
//! substituted by a synthetic pipeline exercising the same code path:
//!
//! 1. a floor plan assigns each grid room a rectangular boundary,
//! 2. a tag emits noisy `(x, y)` readings as its carrier walks,
//! 3. readings resolve to primitive locations via the spatial index,
//! 4. location changes become enter/exit events for the engine.

use crate::gen::World;
use ltam_core::subject::SubjectId;
use ltam_engine::baseline::Enforcement;
use ltam_geo::{BoundaryMap, GridIndex, Point, Rect};
use ltam_graph::LocationId;
use ltam_time::Time;
use rand::rngs::StdRng;
use rand::Rng;

/// Floor-plan geometry for a [`crate::gen::grid_building`] world: room
/// `Rx_y` occupies the square `[x·size, (x+1)·size] × [y·size, (y+1)·size]`.
pub fn grid_floor_plan(world: &World, w: usize, h: usize, size: f64) -> BoundaryMap {
    let mut map = BoundaryMap::new();
    for y in 0..h {
        for x in 0..w {
            let id = world
                .model
                .id(&format!("R{x}_{y}"))
                .expect("grid room exists");
            let x0 = x as f64 * size;
            let y0 = y as f64 * size;
            map.insert_rect(id, Rect::lit(x0, y0, x0 + size, y0 + size))
                .expect("grid cells are valid rects");
        }
    }
    map
}

/// One positioning reading from a tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagReading {
    /// Reading time.
    pub time: Time,
    /// The tagged subject.
    pub subject: SubjectId,
    /// Sensed position (already noisy).
    pub position: Point,
}

/// Converts a stream of tag readings into enter/exit events.
///
/// Readings that resolve to no boundary (out of range, noise pushed the
/// point outside the site) are dropped; a location change emits an exit
/// from the previous location and an entry into the new one.
#[derive(Debug)]
pub struct TrackingPipeline {
    index: GridIndex,
    current: std::collections::HashMap<SubjectId, LocationId>,
    /// Readings that resolved to a location.
    pub resolved: u64,
    /// Readings dropped as unresolvable.
    pub dropped: u64,
}

impl TrackingPipeline {
    /// Build over a boundary map.
    pub fn new(map: &BoundaryMap, cells_per_axis: usize) -> TrackingPipeline {
        TrackingPipeline {
            index: map.build_index(cells_per_axis),
            current: std::collections::HashMap::new(),
            resolved: 0,
            dropped: 0,
        }
    }

    /// Feed one reading; emits movement events into the engine.
    pub fn feed(&mut self, reading: TagReading, engine: &mut dyn Enforcement) {
        let Some(loc) = self.index.locate(reading.position) else {
            self.dropped += 1;
            return;
        };
        self.resolved += 1;
        let prev = self.current.get(&reading.subject).copied();
        if prev == Some(loc) {
            return; // still in the same room
        }
        if let Some(p) = prev {
            engine.observe_exit(reading.time, reading.subject, p);
        }
        engine.observe_enter(reading.time, reading.subject, loc);
        self.current.insert(reading.subject, loc);
    }

    /// Where the pipeline believes a subject is.
    pub fn tracked_location(&self, subject: SubjectId) -> Option<LocationId> {
        self.current.get(&subject).copied()
    }
}

/// Generate a noisy walk through the rooms of a grid floor plan: the tag
/// moves room-center to room-center along a path, emitting `per_room`
/// readings per room with Gaussian-ish jitter of `noise` units.
pub fn noisy_walk(
    subject: SubjectId,
    path: &[(usize, usize)],
    size: f64,
    per_room: usize,
    noise: f64,
    start: Time,
    rng: &mut StdRng,
) -> Vec<TagReading> {
    let mut out = Vec::with_capacity(path.len() * per_room);
    let mut t = start;
    for &(x, y) in path {
        let cx = (x as f64 + 0.5) * size;
        let cy = (y as f64 + 0.5) * size;
        for _ in 0..per_room {
            // Sum of two uniforms: cheap, bounded, centered jitter.
            let jx = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * noise;
            let jy = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * noise;
            out.push(TagReading {
                time: t,
                subject,
                position: Point::new(cx + jx, cy + jy),
            });
            t = t.saturating_add(1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{grid_building, rng};
    use ltam_core::model::{Authorization, EntryLimit};
    use ltam_engine::engine::AccessControlEngine;
    use ltam_time::Interval;

    fn tracked_world() -> (World, BoundaryMap) {
        let world = grid_building(3, 3);
        let plan = grid_floor_plan(&world, 3, 3, 10.0);
        (world, plan)
    }

    #[test]
    fn clean_walk_tracks_rooms_in_order() {
        let (world, plan) = tracked_world();
        let alice = SubjectId(0);
        let mut engine = AccessControlEngine::new(world.model.clone());
        engine.profiles_mut().add_user("Alice", "sim");
        for l in world.graph.locations() {
            engine.add_authorization(
                Authorization::new(
                    Interval::ALL,
                    Interval::ALL,
                    alice,
                    l,
                    EntryLimit::Unbounded,
                )
                .unwrap(),
            );
        }
        let mut pipe = TrackingPipeline::new(&plan, 8);
        let mut r = rng(5);
        // Walk the top row with zero noise.
        let readings = noisy_walk(
            alice,
            &[(0, 0), (1, 0), (2, 0)],
            10.0,
            4,
            0.0,
            Time(0),
            &mut r,
        );
        for reading in readings {
            pipe.feed(reading, &mut engine);
        }
        assert_eq!(pipe.dropped, 0);
        assert_eq!(pipe.resolved, 12);
        assert_eq!(
            pipe.tracked_location(alice),
            Some(world.model.id("R2_0").unwrap())
        );
        // The movements DB saw enter/exit pairs for the path.
        let log = engine.movements().log();
        assert_eq!(log.len(), 5); // enter, exit+enter, exit+enter
    }

    #[test]
    fn out_of_site_readings_are_dropped() {
        let (_, plan) = tracked_world();
        let mut pipe = TrackingPipeline::new(&plan, 8);
        let world = grid_building(3, 3);
        let mut engine = AccessControlEngine::new(world.model);
        pipe.feed(
            TagReading {
                time: Time(0),
                subject: SubjectId(0),
                position: Point::new(-50.0, -50.0),
            },
            &mut engine,
        );
        assert_eq!(pipe.dropped, 1);
        assert_eq!(pipe.resolved, 0);
    }

    #[test]
    fn moderate_noise_still_tracks_most_readings() {
        let (world, plan) = tracked_world();
        let alice = SubjectId(0);
        let mut engine = AccessControlEngine::new(world.model.clone());
        let mut pipe = TrackingPipeline::new(&plan, 8);
        let mut r = rng(6);
        let readings = noisy_walk(
            alice,
            &[(0, 0), (1, 0), (1, 1), (2, 1)],
            10.0,
            10,
            2.0,
            Time(0),
            &mut r,
        );
        let total = readings.len() as u64;
        for reading in readings {
            pipe.feed(reading, &mut engine);
        }
        assert_eq!(pipe.resolved + pipe.dropped, total);
        assert!(
            pipe.resolved as f64 / total as f64 > 0.9,
            "too many dropped readings"
        );
    }
}
