//! Movement simulation against an enforcement engine.
//!
//! Walkers move along effective-graph edges one step per tick, producing
//! the access requests and enter/exit events the enforcement engine
//! consumes. Behaviours model the populations the paper cares about:
//!
//! * [`Behavior::Compliant`] — requests access, enters only when granted,
//!   leaves promptly;
//! * [`Behavior::Tailgater`] — never requests, walks wherever the graph
//!   allows (§1's group-following threat);
//! * [`Behavior::Overstayer`] — requests and enters properly but ignores
//!   exit windows, triggering overstay alerts.

use ltam_core::subject::SubjectId;
use ltam_engine::baseline::Enforcement;
use ltam_graph::{EffectiveGraph, LocationId};
use ltam_time::Time;
use rand::rngs::StdRng;
use rand::Rng;

/// How a simulated person behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Requests before entering; leaves after at most `max_stay` ticks.
    Compliant {
        /// Longest voluntary stay.
        max_stay: u64,
    },
    /// Enters without requesting (following someone through the door).
    Tailgater,
    /// Requests and enters, then stays forever.
    Overstayer,
}

/// A simulated person.
#[derive(Debug, Clone)]
pub struct Walker {
    /// The subject.
    pub subject: SubjectId,
    /// Behaviour.
    pub behavior: Behavior,
    at: Option<(LocationId, Time)>,
    denied_streak: u32,
}

impl Walker {
    /// A walker starting outside the infrastructure.
    pub fn new(subject: SubjectId, behavior: Behavior) -> Walker {
        Walker {
            subject,
            behavior,
            at: None,
            denied_streak: 0,
        }
    }

    /// Current location, if inside.
    pub fn location(&self) -> Option<LocationId> {
        self.at.map(|(l, _)| l)
    }

    /// Consecutive denials experienced (compliant walkers back off).
    pub fn denied_streak(&self) -> u32 {
        self.denied_streak
    }

    /// Advance one tick: maybe move, emitting events into `engine`.
    pub fn step(
        &mut self,
        now: Time,
        graph: &EffectiveGraph,
        engine: &mut dyn Enforcement,
        rng: &mut StdRng,
    ) {
        match self.at {
            None => {
                // Outside: try one of the global entries.
                let entries = graph.global_entries();
                if entries.is_empty() {
                    return;
                }
                let target = entries[rng.gen_range(0..entries.len())];
                self.try_enter(now, target, engine);
            }
            Some((here, since)) => {
                let must_move = match self.behavior {
                    Behavior::Compliant { max_stay } => {
                        now.get().saturating_sub(since.get()) >= max_stay
                    }
                    Behavior::Tailgater => rng.gen_bool(0.5),
                    Behavior::Overstayer => false,
                };
                if !must_move && rng.gen_bool(0.5) {
                    return; // linger
                }
                if matches!(self.behavior, Behavior::Overstayer) {
                    return; // never leaves
                }
                // Leave, then try a neighbor (or exit the site entirely).
                engine.observe_exit(now, self.subject, here);
                self.at = None;
                let nbs = graph.neighbors(here);
                if nbs.is_empty() || rng.gen_bool(0.2) {
                    return; // walked out of the building
                }
                let target = nbs[rng.gen_range(0..nbs.len())];
                self.try_enter(now, target, engine);
            }
        }
    }

    fn try_enter(&mut self, now: Time, target: LocationId, engine: &mut dyn Enforcement) {
        match self.behavior {
            Behavior::Compliant { .. } | Behavior::Overstayer => {
                if engine.request_enter(now, self.subject, target).is_granted() {
                    engine.observe_enter(now, self.subject, target);
                    self.at = Some((target, now));
                    self.denied_streak = 0;
                } else {
                    self.denied_streak += 1;
                }
            }
            Behavior::Tailgater => {
                engine.observe_enter(now, self.subject, target);
                self.at = Some((target, now));
            }
        }
    }
}

/// Drive a population of walkers for `ticks` steps.
pub fn run_population(
    walkers: &mut [Walker],
    graph: &EffectiveGraph,
    engine: &mut dyn Enforcement,
    ticks: u64,
    rng: &mut StdRng,
) {
    for t in 0..ticks {
        let now = Time(t);
        for w in walkers.iter_mut() {
            w.step(now, graph, engine, rng);
        }
        engine.tick(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{grid_building, rng};
    use ltam_core::model::{Authorization, EntryLimit};
    use ltam_engine::engine::AccessControlEngine;
    use ltam_engine::violation::Violation;
    use ltam_time::Interval;

    fn open_engine(world: &crate::gen::World, subjects: &[SubjectId]) -> AccessControlEngine {
        let mut e = AccessControlEngine::new(world.model.clone());
        for (i, &s) in subjects.iter().enumerate() {
            e.profiles_mut().add_user(format!("u{i}"), "sim");
            for l in world.graph.locations() {
                e.add_authorization(
                    Authorization::new(Interval::ALL, Interval::ALL, s, l, EntryLimit::Unbounded)
                        .unwrap(),
                );
            }
        }
        e
    }

    #[test]
    fn compliant_walker_never_violates() {
        let world = grid_building(4, 4);
        let alice = SubjectId(0);
        let mut engine = open_engine(&world, &[alice]);
        let mut walkers = vec![Walker::new(alice, Behavior::Compliant { max_stay: 3 })];
        let mut r = rng(1);
        run_population(&mut walkers, &world.graph, &mut engine, 200, &mut r);
        assert!(
            engine.violations().is_empty(),
            "compliant walker violated: {:?}",
            engine.violations()
        );
        assert!(!engine.movements().is_empty());
    }

    #[test]
    fn tailgater_is_flagged_every_entry() {
        let world = grid_building(3, 3);
        let mallory = SubjectId(0);
        // No authorizations at all.
        let mut engine = AccessControlEngine::new(world.model.clone());
        engine.profiles_mut().add_user("Mallory", "?");
        let mut walkers = vec![Walker::new(mallory, Behavior::Tailgater)];
        let mut r = rng(2);
        run_population(&mut walkers, &world.graph, &mut engine, 100, &mut r);
        let entries = engine
            .movements()
            .log()
            .iter()
            .filter(|e| e.kind == ltam_engine::movement::MovementKind::Enter)
            .count();
        let unauthorized = engine
            .violations()
            .iter()
            .filter(|v| matches!(v, Violation::UnauthorizedEntry { .. }))
            .count();
        assert!(entries > 0);
        assert_eq!(entries, unauthorized);
    }

    #[test]
    fn overstayer_triggers_overstay_alert() {
        let world = grid_building(2, 2);
        let bob = SubjectId(0);
        let mut engine = AccessControlEngine::new(world.model.clone());
        engine.profiles_mut().add_user("Bob", "sim");
        // Tight exit windows: must leave by t=10.
        for l in world.graph.locations() {
            engine.add_authorization(
                Authorization::new(
                    Interval::lit(0, 10),
                    Interval::lit(0, 10),
                    bob,
                    l,
                    EntryLimit::Unbounded,
                )
                .unwrap(),
            );
        }
        let mut walkers = vec![Walker::new(bob, Behavior::Overstayer)];
        let mut r = rng(3);
        run_population(&mut walkers, &world.graph, &mut engine, 50, &mut r);
        assert!(engine
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::Overstay { .. })));
    }

    #[test]
    fn denied_walker_backs_off_counter() {
        let world = grid_building(2, 2);
        let alice = SubjectId(0);
        let mut engine = AccessControlEngine::new(world.model.clone()); // no auths
        engine.profiles_mut().add_user("Alice", "sim");
        let mut w = Walker::new(alice, Behavior::Compliant { max_stay: 3 });
        let mut r = rng(4);
        for t in 0..10 {
            w.step(Time(t), &world.graph, &mut engine, &mut r);
        }
        assert!(w.denied_streak() > 0);
        assert_eq!(w.location(), None);
    }
}
